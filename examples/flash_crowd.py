#!/usr/bin/env python3
"""Flash-crowd survival: watch a retry storm form, then defuse it.

One open-loop cell per defense stack, all offered the *same* arrival
schedule — a steady Poisson base rate that multiplies 10x for a few
seconds (the flash crowd).  The undefended client is the classic
anti-pattern: one in-flight operation per arrival, uncapped retries.
The full stack wraps the same binding in the resilient client tier —
circuit breaker, Finagle-style retry budget, per-tenant rate limiter,
queue-based load leveling, and a TTL'd cache-aside front — composed
with the server-side tail defenses (propagated deadlines, bounded
handler queues).

Because arrivals are open-loop, offered load is an *input*: collapse
reads as goodput falling away from the offered rate, and the refusal
columns say where the missing requests went.  Latency is measured from
intended arrival (coordinated omission fixed), so queueing delay is
charged to the stack that caused it.

The full campaign (db x scenario x stack, parallel, cached) is
``repro-bench surge``; this example is the two-stack close-up.

Run:  python examples/flash_crowd.py
"""

from repro.core.report import render_table
from repro.core.sweep import SurgeScale, surge_sweep

#: Small enough to finish in about a minute, large enough that the
#: spike overwhelms the cluster's disk-bound capacity.
SCALE = SurgeScale(record_count=2_000, n_nodes=6, base_rate=400.0,
                   max_arrivals=8_000, n_users=50_000, n_tenants=4,
                   spike_at_s=2.0, spike_factor=10.0, spike_duration_s=3.0,
                   leveling_workers=32, leveling_queue=128)


def main() -> None:
    print(f"arrivals: poisson {SCALE.base_rate:g}/s, x{SCALE.spike_factor:g} "
          f"spike at t={SCALE.spike_at_s:g}s for {SCALE.spike_duration_s:g}s; "
          f"op timeout {SCALE.op_timeout_s * 1e3:g} ms, "
          f"{SCALE.retries} retries")
    print()
    sweep = surge_sweep("cassandra", SCALE,
                        modes=("undefended", "full"),
                        scenarios=("flash_crowd",))
    rows = []
    for mode, summary in sweep["flash_crowd"].items():
        tier = summary["clienttier"]
        by_type = summary["errors_by_type"]
        cache = tier.get("cache")
        rows.append([
            mode,
            f"{summary['offered_per_s']:.0f}",
            f"{summary['goodput']:.0f}",
            f"{summary['p99_ms']:.0f}",
            f"{summary['p999_ms']:.0f}",
            str(tier["retry"]["retried"]),
            str(by_type.get("LoadShed", 0)),
            str(by_type.get("BreakerOpen", 0)),
            f"{cache['hit_rate']:.2f}" if cache else "-",
        ])
    print(render_table(
        ["stack", "offered/s", "goodput/s", "p99 ms", "p99.9 ms",
         "retried", "shed", "breaker", "cache hr"],
        rows,
        title="Flash crowd: naive client vs full defense stack"))
    print()
    undefended = sweep["flash_crowd"]["undefended"]
    full = sweep["flash_crowd"]["full"]
    amplification = (undefended["clienttier"]["retry"]["retried"]
                     / max(1, undefended["offered"]))
    print(f"undefended: retries re-offered {amplification:.1f}x the "
          f"arrival count — the retry storm that turns a transient "
          f"spike into a metastable overload")
    print(f"full stack: {full['goodput'] / undefended['goodput']:.1f}x "
          f"the undefended goodput through the same spike; max read "
          f"staleness {full['consistency']['max_staleness_lag_s']:.2f}s "
          f"(cache TTL {SCALE.cache_ttl_s:g}s)")


if __name__ == "__main__":
    main()
