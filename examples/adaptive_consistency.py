#!/usr/bin/env python3
"""Adaptive consistency: watch a policy walk the CL ladder mid-run.

One calibrated cell per policy (read-mostly, RF = 3, a replica crash
early in the run, hinted handoff throttled), driven through the same
``ExperimentConfig``/``ExperimentSession`` path as every sweep.  For the
two adaptive policies the per-window CL decision timeline is printed
next to the latency timeline, so you can see the controller escalate
when the crash makes weak reads risky and step back down once the
latency half of the SLO takes over.

The full campaign (policy x offered-load ramp, parallel, cached) is
``repro-bench adaptive``; this example is the single-cell close-up.

Run:  python examples/adaptive_consistency.py
"""

from repro.core import ExperimentSession
from repro.core.report import render_adaptive_timeline, render_table
from repro.core.sweep import (ADAPTIVE_POLICIES, QUICK_ADAPTIVE_SCALE,
                              adaptive_cells)


def run_policy(policy: str):
    cell = adaptive_cells((policy,), QUICK_ADAPTIVE_SCALE)[0]
    session = ExperimentSession(cell.config)
    session.load()
    run = cell.runs[0]
    return session.run_cell(
        operation_count=run.operation_count,
        target_throughput=run.target_throughput,
        inject_faults=True, check_consistency=True, adaptive=policy)


def main() -> None:
    scale = QUICK_ADAPTIVE_SCALE
    print(f"SLO: p95 <= {scale.p95_ms:g} ms, staleness <= "
          f"{scale.staleness_s:g} s, risk rate <= {scale.risk_rate:g}; "
          f"crash at {scale.fault_at_s:g}s for {scale.fault_duration_s:g}s")
    print()
    rows = []
    timelines = []
    for policy in ADAPTIVE_POLICIES:
        result = run_policy(policy)
        decisions = result.decisions
        consistency = result.consistency
        reads = max(1, consistency["reads"])
        by_kind = consistency["violations_by_kind"]
        rows.append([
            policy,
            f"{decisions['read_p95_ms']:.1f}",
            f"{by_kind['read_your_writes'] / reads:.4f}",
            f"{consistency['max_staleness_lag_s']:.2f}",
            str(decisions["policy_counters"].get("escalations", 0)),
        ])
        if policy in ("stepwise", "staleness-bound"):
            timelines.append((policy, decisions))
    print(render_table(
        ["policy", "read p95 ms", "RYW rate", "max lag s", "escalations"],
        rows,
        title="Per-request CL control under a latency/staleness SLO"))
    for policy, decisions in timelines:
        print()
        print(render_adaptive_timeline(policy, decisions))


if __name__ == "__main__":
    main()
