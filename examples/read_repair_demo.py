#!/usr/bin/env python3
"""Read repair under the microscope.

The paper's most interesting Cassandra findings (§4.1 F4 and §4.3 F6)
both come down to read repair.  This example makes the mechanism visible:

1. Write a row at consistency ONE — the coordinator acks after one
   replica, the others catch up asynchronously.
2. Freeze the moment: inspect each replica's newest timestamp directly.
3. Read with ``read_repair_chance = 1.0`` and watch the digest mismatch
   trigger a reconcile + repair mutations.
4. Compare the cost of reads as repair fires more often (chance 0 / 0.1
   / 1.0) and against QUORUM, where digest comparison blocks the read.

Run:  python examples/read_repair_demo.py
"""

from dataclasses import replace

from repro.core import (
    CassandraConfig,
    ExperimentConfig,
    ExperimentSession,
)
from repro.keyspace import key_for_index
from repro.core.report import render_table
from repro.ycsb.workload import STRESS_WORKLOADS


def build(read_repair_chance: float, blocking: bool, seed: int = 7):
    """Deploy through the shared config path (same as the CLI campaigns),
    overriding only the read-repair knobs under study."""
    config = ExperimentConfig(
        db="cassandra",
        workload=STRESS_WORKLOADS["read_mostly"],
        record_count=1_000, operation_count=1_000,
        n_nodes=8, seed=seed,
        cassandra=replace(CassandraConfig(replication=3),
                          read_repair_chance=read_repair_chance,
                          blocking_read_repair=blocking))
    experiment = ExperimentSession(config)
    return experiment.env, experiment.cassandra, experiment.cassandra_session


def show_divergence_and_repair() -> None:
    env, cassandra, session = build(read_repair_chance=1.0, blocking=True)
    key = key_for_index(42)
    replicas = cassandra.replicas_of(key)

    def scenario():
        yield from session.insert(key, "v1", 1000)
        yield env.timeout(1)
        # Inject divergence: a newer version lands on the main replica
        # only (as if an earlier coordinator died mid-write).
        main = cassandra.nodes[replicas[0]]
        yield env.process(main.local_mutate(key, "v2", 1000, env.now))
        before = [cassandra.nodes[r].newest_timestamp(key) for r in replicas]
        result = yield from session.read(key, 1000)
        yield env.timeout(1)
        after = [cassandra.nodes[r].newest_timestamp(key) for r in replicas]
        return before, result, after

    before, result, after = env.run(until=env.process(scenario()))
    stats = cassandra.total_stats()
    print("Replica newest-version timestamps around one repaired read:")
    rows = [[f"node {r}", f"{b:.6f}", f"{a:.6f}"]
            for r, b, a in zip(replicas, before, after)]
    print(render_table(["replica", "before read", "after read"], rows))
    print(f"read returned {result[0]!r}; "
          f"read_repairs={stats['read_repairs']}, "
          f"repair_mutations={stats['repair_mutations']}")
    print()


def compare_repair_cost() -> None:
    """Concurrent writers + readers on hot keys.

    At QUORUM the digest comparison sits on the read's latency path, so
    a race with an in-flight write forces a *blocking* reconcile; at ONE
    the chance-triggered comparison runs in the background and shows up
    as load + background-repair counters instead.
    """
    from repro.cassandra import ConsistencyLevel
    rows = []
    for label, chance, read_cl in [
        ("ONE, repair off", 0.0, ConsistencyLevel.ONE),
        ("ONE, chance 0.1 (background)", 0.1, ConsistencyLevel.ONE),
        ("ONE, chance 1.0 (background)", 1.0, ConsistencyLevel.ONE),
        ("QUORUM (digests block)", 0.1, ConsistencyLevel.QUORUM),
    ]:
        env, cassandra, session = build(chance, blocking=True)
        session.read_cl = read_cl
        latencies = []

        def writer():
            for i in range(800):
                yield from session.insert(key_for_index(i % 40), i, 1000)

        def reader():
            for i in range(800):
                key = key_for_index((i * 7) % 40)
                start = env.now
                yield from session.read(key, 1000)
                latencies.append(env.now - start)

        writer_proc = env.process(writer())
        reader_proc = env.process(reader())
        env.run(until=writer_proc & reader_proc)
        env.run(until=env.now + 2)  # drain background repairs
        stats = cassandra.total_stats()
        rows.append([label, sum(latencies) / len(latencies) * 1000,
                     stats["read_repairs"], stats["background_repairs"],
                     stats["repair_mutations"]])
    print(render_table(
        ["configuration", "read mean ms", "blocking repairs",
         "background repairs", "repair writes"], rows,
        title="Cost of read repair (RF=3, concurrent writers + readers)"))


def main() -> None:
    show_divergence_and_repair()
    compare_repair_cost()


if __name__ == "__main__":
    main()
