#!/usr/bin/env python3
"""Energy & cost: the power bill of a consistency level, step by step.

Three Cassandra RF = 3 cells from the energy campaign's grid, driven
through the same ``ExperimentConfig``/``ExperimentSession`` path as
every sweep: the static QUORUM baseline (always-on), blind
race-to-sleep at CL ONE (the cautionary cell — under RF 3 fan-out the
parked fleet keeps paying wake latency), and the energy-aware adaptive
policy (staleness-bound CL routing plus window-driven park/unpark).
For each cell the full energy decomposition (idle/CPU/disk/NIC/sleep
joules), the priced bill ($/kWh + instance-hours), and the resulting
J/op and $/Mops are printed side by side; for the adaptive cell the
policy's park/unpark counters show how selectively it parked.

The full campaign (db x CL x RF x power mode, parallel, cached) is
``repro-bench energy``; this example is the single-cell close-up.

Run:  python examples/energy_cost.py
"""

from repro.core import ExperimentSession
from repro.core.report import render_table
from repro.core.sweep import QUICK_ENERGY_SCALE, energy_cells

#: The three RF = 3 cells that tell the story, by (rf, cl, power) key.
SHOWCASE = (
    (3, "QUORUM", "always_on"),
    (3, "ONE", "race_to_sleep"),
    (3, "adaptive", "energy_aware"),
)


def run_cell(cell):
    session = ExperimentSession(cell.config)
    session.load()
    run = cell.runs[0]
    return session.run_cell(
        operation_count=run.operation_count,
        target_throughput=run.target_throughput,
        check_consistency=True, adaptive=run.adaptive)


def main() -> None:
    scale = QUICK_ENERGY_SCALE
    cells = {cell.key: cell for cell in energy_cells("cassandra", scale)}
    print(f"cassandra, RF = 3, {scale.workload} at "
          f"{scale.target:g} ops/s offered for {scale.duration_s:g}s; "
          f"staleness budget {scale.staleness_s:g}s")
    print()
    rows = []
    parked = None
    for key in SHOWCASE:
        result = run_cell(cells[key])
        energy, cost = result.energy, result.cost
        ops = result.operations
        rows.append([
            f"{key[1]}/{key[2]}",
            f"{result.throughput:.0f}",
            f"{energy.idle_j:.0f}",
            f"{energy.cpu_j + energy.disk_j + energy.nic_j:.0f}",
            f"{energy.sleep_j:.0f}",
            f"{energy.wakes}",
            f"{energy.joules_per_op(ops):.3f}",
            f"{cost.usd_per_mops(ops):.3f}",
        ])
        if key[2] == "energy_aware":
            parked = result.decisions["policy_counters"]
    print(render_table(
        ["cell", "ops/s", "idle J", "dynamic J", "sleep J", "wakes",
         "J/op", "$/Mops"],
        rows,
        title="Energy decomposition and bill per power-management cell"))
    print()
    print("The QUORUM baseline burns the most J/op not through dynamic "
          "work but by\ndragging utilization down: idle watts dominate "
          "the fleet's bill.  Blind\nrace-to-sleep backfires at RF 3 "
          "(every write wakes parked replicas), while\nthe energy-aware "
          "policy parked "
          f"{parked['parks']} time(s) and unparked "
          f"{parked['unparks']} time(s) --\nonly across windows its "
          "SLO monitor called clean -- and undercuts the\nbaseline on "
          "both metrics without leaving the staleness budget.")


if __name__ == "__main__":
    main()
