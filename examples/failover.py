#!/usr/bin/env python3
"""Failover probe: kill a server mid-run and watch the cluster ride it out.

Reproduces the style of experiment the paper cites from Pokluda & Sun
(§5): run a steady workload, crash one storage node, bring it back, and
plot the per-second throughput/latency timeline around the failure.

- **Cassandra** keeps serving at consistency ONE (hinted handoff patches
  the dead replica when it returns).
- **HBase** shows an availability dip for the crashed server's regions
  until the HMaster reassigns them, plus slower reads afterwards (the
  moved regions lost HFile locality).

Run:  python examples/failover.py
"""

from dataclasses import replace

from repro.cluster.failure import CrashEvent, FailureInjector
from repro.core import default_stress_config
from repro.core.experiment import ExperimentSession
from repro.core.report import render_table

CRASH_AT_S = 4.0
DOWN_FOR_S = 10.0


def run_with_crash(db: str):
    config = default_stress_config(db, "read_update", replication=3)
    config = replace(config, record_count=6_000, operation_count=36_000,
                     n_threads=24, target_throughput=2_000.0,
                     warmup_fraction=0.0)
    session = ExperimentSession(config)
    session.load()

    victim = session.cluster.nodes[0].node_id
    injector = FailureInjector(session.cluster)
    injector.schedule(CrashEvent(node_id=victim,
                                 at_s=session.env.now + CRASH_AT_S,
                                 down_s=DOWN_FOR_S))
    result = session.run_cell()
    return result, injector, victim


def main() -> None:
    for db in ("cassandra", "hbase"):
        result, injector, victim = run_with_crash(db)
        print(f"=== {db}: node {victim} crashed at +{CRASH_AT_S:.0f}s, "
              f"restarted after {DOWN_FOR_S:.0f}s ===")
        crash_time = injector.log[0][0]
        rows = []
        for bucket_start, ops, mean_lat in result.measurements.timeline(1.0):
            marker = ""
            offset = bucket_start - crash_time
            if 0 <= offset < 1:
                marker = "<- crash"
            elif DOWN_FOR_S <= offset < DOWN_FOR_S + 1:
                marker = "<- restart"
            rows.append([f"{offset:+.0f}s", ops, mean_lat * 1000, marker])
        print(render_table(["t-crash", "ops/s", "mean ms", ""], rows))
        errors = result.measurements.total_errors
        print(f"operations: {result.operations}, errors: {errors}, "
              f"overall p99: {result.overall().p99_ms:.1f} ms")
        print()


if __name__ == "__main__":
    main()
