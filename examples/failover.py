#!/usr/bin/env python3
"""Failover probe: kill a server mid-run and watch the cluster ride it out.

Reproduces the style of experiment the paper cites from Pokluda & Sun
(§5): run a steady workload, crash one storage node, bring it back, and
plot the per-second throughput/latency timeline around the failure.

- **Cassandra** keeps serving at consistency ONE (hinted handoff patches
  the dead replica when it returns).
- **HBase** shows an availability dip for the crashed server's regions
  until the HMaster reassigns them, plus slower reads afterwards (the
  moved regions lost HFile locality).

Since the fault-injection campaign subsystem landed, this example is a
thin wrapper over the CLI: ``repro-bench failover --fault crash
--timeline`` runs the same probe per database — sweepable over fault
kinds and consistency levels, parallel via ``--jobs``, and cached.

Run:  python examples/failover.py
"""

import sys

from repro.core.cli import main as repro_bench


def main() -> int:
    return repro_bench(["failover", "--db", "cassandra", "--db", "hbase",
                        "--fault", "crash", "--timeline", "--no-cache"])


if __name__ == "__main__":
    sys.exit(main())
