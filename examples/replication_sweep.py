#!/usr/bin/env python3
"""Replication sweep: the paper's core question, on one workload.

"How does latency change when we adjust the replication factor?"
Sweeps RF = 1..6 for both databases on atomic reads and writes
(a compact version of Figure 1) and prints the latency curves
side by side.

Run:  python examples/replication_sweep.py
"""

from repro.core.report import render_table
from repro.core.sweep import SweepScale, replication_micro_sweep

SCALE = SweepScale(record_count=6_000, operation_count=1_000, n_nodes=12)
REPLICATION_FACTORS = (1, 2, 3, 4, 5, 6)


def main() -> None:
    sweeps = {db: replication_micro_sweep(db, REPLICATION_FACTORS, SCALE)
              for db in ("hbase", "cassandra")}

    rows = []
    for rf in REPLICATION_FACTORS:
        rows.append([
            rf,
            sweeps["hbase"][rf]["update"]["mean_ms"],
            sweeps["hbase"][rf]["read"]["mean_ms"],
            sweeps["cassandra"][rf]["update"]["mean_ms"],
            sweeps["cassandra"][rf]["read"]["mean_ms"],
        ])
    print(render_table(
        ["RF", "hbase update ms", "hbase read ms",
         "cassandra update ms", "cassandra read ms"],
        rows,
        title="Micro latency vs replication factor (cf. paper Fig. 1)"))

    print()
    print("What to look for (paper §4.1):")
    print(" - HBase reads are flat: one RegionServer owns each row, so")
    print("   extra HDFS replicas never serve reads.")
    print(" - HBase writes rise only mildly: the WAL pipeline replicates")
    print("   in memory; each extra replica is one in-rack hop.")
    print(" - Cassandra writes are flat: consistency ONE acks after the")
    print("   first replica regardless of RF.")
    print(" - Cassandra reads climb with RF: read repair involves every")
    print("   replica, and each node stores (and misses cache on) more data.")


if __name__ == "__main__":
    main()
