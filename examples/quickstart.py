#!/usr/bin/env python3
"""Quickstart: run one benchmark cell against each database.

Builds a 16-node simulated rack (15 servers + 1 YCSB client), loads
records, runs the paper's *read mostly* stress workload against HBase and
Cassandra, and prints the YCSB-style summary for each.

Run:  python examples/quickstart.py
"""

from dataclasses import replace

from repro.core import default_stress_config, run_experiment
from repro.core.report import render_table


def main() -> None:
    rows = []
    for db in ("hbase", "cassandra"):
        config = default_stress_config(db, "read_mostly", replication=3)
        # Keep the quickstart snappy; drop this line for full scale.
        config = replace(config, record_count=8_000, operation_count=2_000)

        result = run_experiment(config)

        overall = result.run.overall()
        reads = result.run.stats("read")
        updates = result.run.stats("update")
        rows.append([
            db,
            f"{result.run.throughput:.0f}",
            f"{overall.mean_ms:.2f}",
            f"{overall.p99_ms:.2f}",
            f"{reads.mean_ms:.2f}",
            f"{updates.mean_ms:.2f}",
            f"{result.db_stats['cache_hit_rate']:.2f}",
        ])
        print(f"[{db}] loaded {result.load.records} records in "
              f"{result.load.duration_s:.1f}s simulated, then ran "
              f"{result.run.operations} operations")

    print()
    print(render_table(
        ["db", "ops/s", "mean ms", "p99 ms", "read ms", "update ms",
         "cache hit"],
        rows,
        title="read_mostly (95/5 zipfian), RF=3, 15 servers + 1 client"))


if __name__ == "__main__":
    main()
