#!/usr/bin/env python3
"""Geo-distributed replication — the paper's §6 future work, running.

The paper closes by noting that a single rack "cannot form a convincing
testbed for more complicated tests such as geo-read latency test,
partition test and availability test".  This example runs exactly those
three tests on the simulated geo testbed:

1. **Geo-read latency** — the same read issued at LOCAL_QUORUM, QUORUM
   and ALL from a client in Europe, with replicas spread over Europe,
   California and Singapore (NetworkTopologyStrategy 2+2+2).
2. **Partition test** — cut off the Singapore datacenter: LOCAL_QUORUM
   keeps serving, ALL becomes unavailable.
3. **Availability/staleness** — write in Europe at LOCAL_ONE, read in
   (healed) Singapore immediately and after WAN propagation.

Run:  python examples/geo_replication.py
"""

from repro.cassandra import (
    CassandraCluster,
    CassandraSession,
    CassandraSpec,
    ConsistencyLevel,
)
from repro.cassandra.consistency import UnavailableError
from repro.cluster.geo import GeoCluster, GeoSpec
from repro.keyspace import key_for_index
from repro.core.report import render_table
from repro.sim import Environment, RngRegistry


def build():
    env = Environment()
    geo = GeoCluster(env, GeoSpec(
        datacenters={"eu-west": 5, "us-west": 5, "ap-southeast": 5},
        client_datacenter="eu-west"), RngRegistry(7))
    cassandra = CassandraCluster(geo, CassandraSpec(
        replication=3,
        replication_per_dc={"eu-west": 2, "us-west": 2, "ap-southeast": 2}))
    session = CassandraSession(cassandra, cassandra.client_node)
    return env, geo, cassandra, session


def geo_read_latency(env, session) -> None:
    def scenario():
        rows = []
        for cl in (ConsistencyLevel.LOCAL_QUORUM, ConsistencyLevel.QUORUM,
                   ConsistencyLevel.ALL):
            write_lat, read_lat = [], []
            for i in range(60):
                key = key_for_index(i)
                start = env.now
                yield from session.insert(key, i, 500, cl=cl)
                write_lat.append(env.now - start)
                start = env.now
                yield from session.read(key, 500, cl=cl)
                read_lat.append(env.now - start)
            rows.append([cl.value,
                         sum(write_lat) / len(write_lat) * 1000,
                         sum(read_lat) / len(read_lat) * 1000])
        return rows

    rows = env.run(until=env.process(scenario()))
    print(render_table(
        ["consistency", "write ms", "read ms"], rows,
        title="1. Geo-read latency (client in eu-west; replicas 2+2+2 "
              "across eu-west / us-west / ap-southeast)"))
    print()


def partition_test(env, geo, session) -> None:
    def scenario():
        geo.partition_datacenter("ap-southeast")
        key = key_for_index(1000)
        outcomes = []
        try:
            start = env.now
            yield from session.insert(key, "local", 500,
                                      cl=ConsistencyLevel.LOCAL_QUORUM)
            outcomes.append(["LOCAL_QUORUM write", "OK",
                             f"{(env.now - start) * 1000:.2f} ms"])
        except UnavailableError:
            outcomes.append(["LOCAL_QUORUM write", "UNAVAILABLE", ""])
        try:
            yield from session.insert(key, "global", 500,
                                      cl=ConsistencyLevel.ALL)
            outcomes.append(["ALL write", "OK", ""])
        except UnavailableError:
            outcomes.append(["ALL write", "UNAVAILABLE", ""])
        geo.heal_datacenter("ap-southeast")
        return outcomes

    outcomes = env.run(until=env.process(scenario()))
    print(render_table(
        ["operation", "outcome", "latency"], outcomes,
        title="2. Partition test (ap-southeast cut off)"))
    print()


def staleness_test(env, geo, cassandra, session) -> None:
    def scenario():
        key = key_for_index(2000)
        yield from session.insert(key, "fresh-from-europe", 500,
                                  cl=ConsistencyLevel.LOCAL_ONE)
        singapore = [r for r in cassandra.replicas_of(key)
                     if geo.datacenter_of(r) == "ap-southeast"]
        immediately = [cassandra.nodes[r].newest_timestamp(key) is not None
                       for r in singapore]
        yield env.timeout(1.0)  # > one-way WAN latency
        later = [cassandra.nodes[r].newest_timestamp(key) is not None
                 for r in singapore]
        return immediately, later

    immediately, later = env.run(until=env.process(scenario()))
    rows = [
        ["right after the LOCAL_ONE ack", f"{sum(immediately)}/{len(immediately)}"],
        ["after WAN propagation (1 s)", f"{sum(later)}/{len(later)}"],
    ]
    print(render_table(
        ["moment", "ap-southeast replicas holding the write"], rows,
        title="3. Staleness: eu-west write at LOCAL_ONE, observed from "
              "ap-southeast"))


def main() -> None:
    env, geo, cassandra, session = build()

    def load():
        for i in range(2000):
            yield from session.insert(key_for_index(i), i, 500,
                                      cl=ConsistencyLevel.LOCAL_QUORUM)

    env.run(until=env.process(load()))
    env.run(until=env.now + 3)

    geo_read_latency(env, session)
    partition_test(env, geo, session)
    staleness_test(env, geo, cassandra, session)


if __name__ == "__main__":
    main()
