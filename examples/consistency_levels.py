#!/usr/bin/env python3
"""Consistency levels: latency cost and staleness, measured directly.

Two probes on the same Cassandra ring (RF = 3):

1. **Latency per level** — insert/read latency at ONE, QUORUM and ALL.
2. **Staleness probe** — write at one consistency level, immediately read
   at another from a different coordinator, and count stale results; the
   R + W > N rule predicts which combinations are safe (cf. Bermbach et
   al., the consistency-measurement work the paper cites in §5).

Run:  python examples/consistency_levels.py
"""

from repro.cassandra import (
    CassandraCluster,
    CassandraSession,
    CassandraSpec,
    ConsistencyLevel,
)
from repro.cluster import Cluster, ClusterSpec
from repro.keyspace import key_for_index
from repro.core.report import render_table
from repro.sim import Environment, RngRegistry

RF = 3
RECORDS = 3_000
PROBES = 400


def build():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(n_nodes=10), RngRegistry(2024))
    cassandra = CassandraCluster(cluster, CassandraSpec(replication=RF))
    session = CassandraSession(cassandra, cassandra.client_node)
    return env, cassandra, session


def measure_latency(env, session, cl):
    def scenario():
        write_lat, read_lat = [], []
        for i in range(PROBES):
            key = key_for_index(i % RECORDS)
            start = env.now
            yield from session.insert(key, i, 1000, cl=cl)
            write_lat.append(env.now - start)
            start = env.now
            yield from session.read(key, 1000, cl=cl)
            read_lat.append(env.now - start)
        return (sum(write_lat) / len(write_lat) * 1000,
                sum(read_lat) / len(read_lat) * 1000)

    return env.run(until=env.process(scenario()))


def measure_staleness(env, session, write_cl, read_cl):
    def scenario():
        stale = 0
        for i in range(PROBES):
            key = key_for_index(i % 50)  # hot keys maximize races
            marker = f"probe-{i}"
            yield from session.insert(key, marker, 1000, cl=write_cl)
            result = yield from session.read(key, 1000, cl=read_cl)
            if result is None or result[0] != marker:
                stale += 1
        return stale

    return env.run(until=env.process(scenario()))


def main() -> None:
    env, _, session = build()

    def load():
        for i in range(RECORDS):
            yield from session.insert(key_for_index(i), i, 1000)

    env.run(until=env.process(load()))

    rows = []
    for cl in (ConsistencyLevel.ONE, ConsistencyLevel.QUORUM,
               ConsistencyLevel.ALL):
        write_ms, read_ms = measure_latency(env, session, cl)
        rows.append([cl.value, write_ms, read_ms])
    print(render_table(["consistency", "write ms", "read ms"], rows,
                       title=f"Latency per consistency level (RF={RF})"))

    print()
    rows = []
    combos = [
        (ConsistencyLevel.ONE, ConsistencyLevel.ONE),
        (ConsistencyLevel.QUORUM, ConsistencyLevel.QUORUM),
        (ConsistencyLevel.ALL, ConsistencyLevel.ONE),
        (ConsistencyLevel.ONE, ConsistencyLevel.ALL),
    ]
    for write_cl, read_cl in combos:
        strong = read_cl.is_strong_with(write_cl, RF)
        stale = measure_staleness(env, session, write_cl, read_cl)
        rows.append([write_cl.value, read_cl.value,
                     "yes" if strong else "no", stale, PROBES])
    print(render_table(
        ["write CL", "read CL", "R+W>N", "stale reads", "probes"], rows,
        title="Read-your-writes staleness probe"))
    print()
    print("R+W>N combinations must show 0 stale reads; weaker ones may not.")


if __name__ == "__main__":
    main()
