"""Failure injection.

The paper's related-work section (Pokluda et al.) benchmarks failover by
killing a node mid-run and watching latency/throughput.  The injector
schedules crashes and restarts against a :class:`~repro.cluster.topology.Cluster`
so the same probe can be scripted here (see ``examples/failover.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.cluster.topology import Cluster

__all__ = ["CrashEvent", "FailureInjector"]


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled crash: node ``node_id`` dies at ``at_s`` for ``down_s``."""

    node_id: int
    at_s: float
    #: How long the node stays down; ``None`` means it never restarts.
    down_s: Optional[float] = None


class FailureInjector:
    """Executes a crash schedule and records what actually happened."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        #: (time, node_id, "crash" | "restart") tuples, in occurrence order.
        self.log: list[tuple[float, int, str]] = []

    def schedule(self, event: CrashEvent) -> None:
        """Arm one crash (and optional restart) as a simulation process."""
        self.cluster.env.process(self._run(event),
                                 name=f"failure-{event.node_id}")

    def schedule_all(self, events: list[CrashEvent]) -> None:
        for event in events:
            self.schedule(event)

    def _run(self, event: CrashEvent) -> Generator:
        env = self.cluster.env
        if event.at_s > env.now:
            yield env.timeout(event.at_s - env.now)
        self.cluster.kill(event.node_id)
        self.log.append((env.now, event.node_id, "crash"))
        if event.down_s is not None:
            yield env.timeout(event.down_s)
            self.cluster.restart(event.node_id)
            self.log.append((env.now, event.node_id, "restart"))
