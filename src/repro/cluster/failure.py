"""Fault injection: declarative schedules of composable fault types.

The paper's related-work section (Pokluda et al.) benchmarks failover by
killing a node mid-run and watching latency/throughput.  This module
generalizes that probe into first-class fault-injection campaigns: a
:class:`FaultSchedule` composes crash/restart, node flapping, network
partitions (the single-rack analogue of
:meth:`repro.cluster.geo.GeoCluster.partition_datacenter`), NIC
degradation (packet loss / latency, modelled as an effective-bandwidth
multiplier) and slow-disk gray failures (a throttled
:class:`~repro.cluster.disk.Disk` service-time multiplier).

The :class:`FailureInjector` executes a schedule against a
:class:`~repro.cluster.topology.Cluster` and records what actually
happened — including *no-op* entries when a fault fires against a node
already in the requested state — so availability reports
(:mod:`repro.core.failover`) can reconstruct the degraded window exactly.

Schedules are validated before anything is armed: unknown node ids,
unknown datacenters and overlapping fault windows on the same target are
rejected with :class:`UnknownFaultTargetError` / :class:`ValueError` —
a fault can never silently no-op its way through a run because its
target does not exist.

Geo campaigns add datacenter-scoped kinds: ``dc_partition`` cuts every
*server* in one datacenter off the fabric (region clients stay up and
observe the outage honestly), ``wan_degrade`` stretches every cross-DC
link by a multiplier (see :meth:`repro.cluster.geo.GeoCluster.degrade_wan`)
and ``dc_slow_nic`` degrades the NICs of one datacenter's servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Optional, Sequence

from repro.cluster.topology import Cluster

__all__ = [
    "FAULT_KINDS",
    "CrashEvent",
    "CrashFault",
    "DcPartitionFault",
    "DcSlowNicFault",
    "DiskDegradeFault",
    "FailureInjector",
    "FaultSchedule",
    "FaultSpec",
    "FlapFault",
    "NicDegradeFault",
    "PartitionFault",
    "UnknownFaultTargetError",
    "WanDegradeFault",
]

#: The declarative fault kinds a :class:`FaultSpec` can name.
FAULT_KINDS = ("crash", "flap", "partition", "slow_nic", "slow_disk",
               "dc_partition", "wan_degrade", "dc_slow_nic")

#: The kinds that target a datacenter (or the WAN fabric) rather than a
#: node id; they require a geo cluster.
DC_FAULT_KINDS = ("dc_partition", "wan_degrade", "dc_slow_nic")


class UnknownFaultTargetError(ValueError):
    """A fault names a node id or datacenter the cluster does not have."""


# -- concrete fault types --------------------------------------------------

@dataclass(frozen=True)
class CrashFault:
    """Node ``node_id`` dies at ``at_s`` for ``down_s`` (None = forever)."""

    node_id: int
    at_s: float
    #: How long the node stays down; ``None`` means it never restarts.
    down_s: Optional[float] = None

    def targets(self) -> tuple[int, ...]:
        return (self.node_id,)

    def window(self) -> tuple[float, float]:
        end = float("inf") if self.down_s is None else self.at_s + self.down_s
        return (self.at_s, end)

    def run(self, injector: "FailureInjector") -> Generator:
        env = injector.cluster.env
        if self.at_s > env.now:
            yield env.timeout(self.at_s - env.now)
        injector._kill(self.node_id, "crash")
        if self.down_s is not None:
            yield env.timeout(self.down_s)
            injector._revive(self.node_id, "restart")


#: Back-compat alias: the pre-campaign injector exposed crash-only events.
CrashEvent = CrashFault


@dataclass(frozen=True)
class FlapFault:
    """Node flapping: ``cycles`` rounds of (down ``down_s``, up ``up_s``)."""

    node_id: int
    at_s: float
    cycles: int = 3
    down_s: float = 1.0
    up_s: float = 1.0

    def targets(self) -> tuple[int, ...]:
        return (self.node_id,)

    def window(self) -> tuple[float, float]:
        return (self.at_s, self.at_s + self.cycles * (self.down_s + self.up_s))

    def run(self, injector: "FailureInjector") -> Generator:
        env = injector.cluster.env
        if self.at_s > env.now:
            yield env.timeout(self.at_s - env.now)
        for _ in range(self.cycles):
            injector._kill(self.node_id, "crash")
            yield env.timeout(self.down_s)
            injector._revive(self.node_id, "restart")
            yield env.timeout(self.up_s)


@dataclass(frozen=True)
class PartitionFault:
    """Cut a set of nodes off the fabric for ``duration_s``.

    Reuses the mechanics of
    :meth:`repro.cluster.geo.GeoCluster.partition_datacenter` for
    single-rack splits: a partitioned node exchanges no messages with the
    majority side (modelled as the node not answering RPCs), and heals
    with whatever state its database model kept.
    """

    node_ids: tuple[int, ...]
    at_s: float
    duration_s: Optional[float] = None

    def targets(self) -> tuple[int, ...]:
        return tuple(self.node_ids)

    def window(self) -> tuple[float, float]:
        end = (float("inf") if self.duration_s is None
               else self.at_s + self.duration_s)
        return (self.at_s, end)

    def run(self, injector: "FailureInjector") -> Generator:
        env = injector.cluster.env
        if self.at_s > env.now:
            yield env.timeout(self.at_s - env.now)
        for node_id in self.node_ids:
            injector._kill(node_id, "partition")
        if self.duration_s is not None:
            yield env.timeout(self.duration_s)
            for node_id in self.node_ids:
                injector._revive(node_id, "heal")


@dataclass(frozen=True)
class NicDegradeFault:
    """Packet-loss / latency degradation on one node's NIC.

    Loss and latency both surface to the flows crossing the NIC as a
    lower effective bandwidth (retransmissions resend bytes, delay slows
    the pipe), so the degradation is a single service-time multiplier on
    the NIC's serialization — see :attr:`repro.cluster.nic.Nic.slowdown`.
    """

    node_id: int
    at_s: float
    duration_s: Optional[float] = None
    #: Serialization-time multiplier while degraded (>= 1).
    slowdown: float = 8.0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    def targets(self) -> tuple[int, ...]:
        return (self.node_id,)

    def window(self) -> tuple[float, float]:
        end = (float("inf") if self.duration_s is None
               else self.at_s + self.duration_s)
        return (self.at_s, end)

    def run(self, injector: "FailureInjector") -> Generator:
        env = injector.cluster.env
        if self.at_s > env.now:
            yield env.timeout(self.at_s - env.now)
        injector._set_nic(self.node_id, self.slowdown, "nic_degrade")
        if self.duration_s is not None:
            yield env.timeout(self.duration_s)
            injector._set_nic(self.node_id, 1.0, "nic_heal")


@dataclass(frozen=True)
class DiskDegradeFault:
    """Slow-disk gray failure: the spindle serves, but ``slowdown`` x
    slower (see :attr:`repro.cluster.disk.Disk.slowdown`).  The node
    still answers RPCs — the classic fail-slow fault that detection
    built on liveness never catches."""

    node_id: int
    at_s: float
    duration_s: Optional[float] = None
    #: Disk service-time multiplier while degraded (>= 1).
    slowdown: float = 8.0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    def targets(self) -> tuple[int, ...]:
        return (self.node_id,)

    def window(self) -> tuple[float, float]:
        end = (float("inf") if self.duration_s is None
               else self.at_s + self.duration_s)
        return (self.at_s, end)

    def run(self, injector: "FailureInjector") -> Generator:
        env = injector.cluster.env
        if self.at_s > env.now:
            yield env.timeout(self.at_s - env.now)
        injector._set_disk(self.node_id, self.slowdown, "disk_degrade")
        if self.duration_s is not None:
            yield env.timeout(self.duration_s)
            injector._set_disk(self.node_id, 1.0, "disk_heal")


@dataclass(frozen=True)
class DcPartitionFault:
    """Cut one datacenter's *servers* off the fabric for ``duration_s``.

    The region's client node stays up, so its operations observe the
    outage honestly (UnavailableError / WAN fallback) instead of the
    whole region silently vanishing from the measurements.  Node ids are
    resolved from the cluster at fire time; validation checks the
    datacenter name instead of node ids.
    """

    datacenter: str
    at_s: float
    duration_s: Optional[float] = None

    def targets(self) -> tuple[int, ...]:
        return ()

    def window(self) -> tuple[float, float]:
        end = (float("inf") if self.duration_s is None
               else self.at_s + self.duration_s)
        return (self.at_s, end)

    def run(self, injector: "FailureInjector") -> Generator:
        env = injector.cluster.env
        if self.at_s > env.now:
            yield env.timeout(self.at_s - env.now)
        for node_id in injector._dc_servers(self.datacenter):
            injector._kill(node_id, "dc_partition")
        if self.duration_s is not None:
            yield env.timeout(self.duration_s)
            for node_id in injector._dc_servers(self.datacenter):
                injector._revive(node_id, "dc_heal")


@dataclass(frozen=True)
class WanDegradeFault:
    """Stretch every cross-datacenter link by ``factor`` (>= 1).

    Models a congested / rerouted WAN: propagation grows and usable
    bandwidth thins by the same multiplier (see
    :meth:`repro.cluster.geo.GeoCluster.degrade_wan`).  Logged against
    the pseudo-node id ``-1`` since it is fabric-wide.
    """

    at_s: float
    duration_s: Optional[float] = None
    factor: float = 6.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"wan factor must be >= 1, got {self.factor}")

    def targets(self) -> tuple[int, ...]:
        return ()

    def window(self) -> tuple[float, float]:
        end = (float("inf") if self.duration_s is None
               else self.at_s + self.duration_s)
        return (self.at_s, end)

    def run(self, injector: "FailureInjector") -> Generator:
        env = injector.cluster.env
        if self.at_s > env.now:
            yield env.timeout(self.at_s - env.now)
        injector._set_wan(self.factor, "wan_degrade")
        if self.duration_s is not None:
            yield env.timeout(self.duration_s)
            injector._set_wan(1.0, "wan_heal")


@dataclass(frozen=True)
class DcSlowNicFault:
    """NIC degradation on every server of one datacenter.

    The asymmetric-link gray failure: one region's egress/ingress slows
    by ``slowdown`` while the rest of the fleet is healthy.
    """

    datacenter: str
    at_s: float
    duration_s: Optional[float] = None
    slowdown: float = 8.0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    def targets(self) -> tuple[int, ...]:
        return ()

    def window(self) -> tuple[float, float]:
        end = (float("inf") if self.duration_s is None
               else self.at_s + self.duration_s)
        return (self.at_s, end)

    def run(self, injector: "FailureInjector") -> Generator:
        env = injector.cluster.env
        if self.at_s > env.now:
            yield env.timeout(self.at_s - env.now)
        for node_id in injector._dc_servers(self.datacenter):
            injector._set_nic(node_id, self.slowdown, "nic_degrade")
        if self.duration_s is not None:
            yield env.timeout(self.duration_s)
            for node_id in injector._dc_servers(self.datacenter):
                injector._set_nic(node_id, 1.0, "nic_heal")


# -- declarative spec (config-level) ---------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """JSON-safe fault description carried by an ``ExperimentConfig``.

    ``at_s`` is relative to the start of the measured run (the resolver
    offsets it by the simulation time at which the run begins), so the
    same spec is reusable across cells and is part of the cell-cache
    fingerprint.
    """

    kind: str = "crash"
    node_id: int = 0
    at_s: float = 4.0
    #: Fault duration.  crash/partition/slow_*: how long the fault lasts
    #: (None = never cleared).  flap: the *per-cycle* downtime.
    duration_s: Optional[float] = 10.0
    #: flap only: number of down/up rounds.
    cycles: int = 3
    #: flap only: uptime between down periods.
    up_s: float = 1.0
    #: slow_nic / slow_disk / dc_slow_nic / wan_degrade: multiplier.
    severity: float = 8.0
    #: partition only: how many consecutive node ids (from ``node_id``)
    #: land on the minority side of the split.
    span: int = 2
    #: dc_partition / dc_slow_nic only: which datacenter the fault hits.
    datacenter: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.kind in ("dc_partition", "dc_slow_nic") \
                and self.datacenter is None:
            raise ValueError(f"fault kind {self.kind!r} needs a datacenter")

    def resolve(self, base_s: float = 0.0):
        """The concrete fault, with ``at_s`` offset to absolute time."""
        at = base_s + self.at_s
        if self.kind == "crash":
            return CrashFault(self.node_id, at, self.duration_s)
        if self.kind == "flap":
            return FlapFault(self.node_id, at, cycles=self.cycles,
                             down_s=self.duration_s or 1.0, up_s=self.up_s)
        if self.kind == "partition":
            return PartitionFault(
                tuple(range(self.node_id, self.node_id + self.span)),
                at, self.duration_s)
        if self.kind == "slow_nic":
            return NicDegradeFault(self.node_id, at, self.duration_s,
                                   slowdown=self.severity)
        if self.kind == "dc_partition":
            return DcPartitionFault(self.datacenter, at, self.duration_s)
        if self.kind == "wan_degrade":
            return WanDegradeFault(at, self.duration_s,
                                   factor=self.severity)
        if self.kind == "dc_slow_nic":
            return DcSlowNicFault(self.datacenter, at, self.duration_s,
                                  slowdown=self.severity)
        return DiskDegradeFault(self.node_id, at, self.duration_s,
                                slowdown=self.severity)


# -- the schedule ----------------------------------------------------------

class FaultSchedule:
    """An ordered, validated collection of faults for one campaign."""

    def __init__(self, faults: Iterable) -> None:
        self.faults = tuple(faults)

    @classmethod
    def from_specs(cls, specs: Sequence[FaultSpec],
                   base_s: float = 0.0) -> "FaultSchedule":
        """Resolve declarative specs at ``base_s`` (the run's start)."""
        return cls(spec.resolve(base_s) for spec in specs)

    def validate(self, n_nodes: int,
                 datacenters: Optional[set] = None) -> None:
        """Reject unknown targets and overlapping windows on one target.

        ``datacenters`` is the set of datacenter names the cluster has
        (``None`` on single-rack clusters).  Datacenter-scoped faults on
        a cluster without datacenters, and faults naming an unknown node
        or datacenter, fail fast with :class:`UnknownFaultTargetError`
        at arm time instead of silently no-opping mid-run.
        """
        per_target: dict[object, list[tuple[float, float]]] = {}
        for fault in self.faults:
            for node_id in fault.targets():
                if not 0 <= node_id < n_nodes:
                    raise UnknownFaultTargetError(
                        f"fault {fault!r} targets unknown node {node_id} "
                        f"(cluster has nodes 0..{n_nodes - 1})")
                per_target.setdefault(node_id, []).append(fault.window())
            dc = getattr(fault, "datacenter", None)
            if dc is not None:
                if datacenters is None:
                    raise UnknownFaultTargetError(
                        f"fault {fault!r} targets datacenter {dc!r} but "
                        f"the cluster has no datacenters (geo cluster "
                        f"required)")
                if dc not in datacenters:
                    raise UnknownFaultTargetError(
                        f"fault {fault!r} targets unknown datacenter "
                        f"{dc!r} (cluster has {sorted(datacenters)})")
                per_target.setdefault(("dc", dc), []).append(fault.window())
            if isinstance(fault, WanDegradeFault):
                if datacenters is None:
                    raise UnknownFaultTargetError(
                        f"fault {fault!r} degrades the WAN but the "
                        f"cluster has no datacenters (geo cluster "
                        f"required)")
                per_target.setdefault("wan", []).append(fault.window())
        for target, windows in per_target.items():
            windows.sort()
            for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
                if next_start < prev_end:
                    raise ValueError(
                        f"overlapping faults on {target}: a fault "
                        f"starting at {next_start}s begins before the "
                        f"previous one ends at {prev_end}s")


# -- the injector ----------------------------------------------------------

class FailureInjector:
    """Executes a fault schedule and records what actually happened."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        #: (time, node_id, action) tuples in occurrence order.  Actions
        #: are ``crash``/``restart``, ``partition``/``heal``,
        #: ``nic_degrade``/``nic_heal``, ``disk_degrade``/``disk_heal`` —
        #: with a ``-noop`` suffix when the node was already in the
        #: requested state (idempotent injection).
        self.log: list[tuple[float, int, str]] = []

    def schedule(self, fault) -> None:
        """Validate and arm one fault as a simulation process."""
        self.inject(FaultSchedule([fault]))

    def schedule_all(self, faults: Sequence) -> None:
        """Validate and arm several faults as one schedule."""
        self.inject(FaultSchedule(faults))

    def inject(self, schedule: FaultSchedule) -> None:
        """Validate ``schedule`` against the cluster, then arm every fault."""
        node_dc = getattr(self.cluster, "node_datacenter", None)
        datacenters = set(node_dc.values()) if node_dc is not None else None
        schedule.validate(len(self.cluster.nodes), datacenters=datacenters)
        for fault in schedule.faults:
            targets = fault.targets()
            scope = (targets[0] if targets
                     else getattr(fault, "datacenter", None) or "wan")
            self.cluster.env.process(
                fault.run(self),
                name=f"fault-{type(fault).__name__}-{scope}")

    # -- primitives used by the fault types (idempotent, logged) ----------

    def _kill(self, node_id: int, action: str) -> None:
        env = self.cluster.env
        if self.cluster.node(node_id).alive:
            self.cluster.kill(node_id)
            self.log.append((env.now, node_id, action))
        else:
            self.log.append((env.now, node_id, action + "-noop"))

    def _revive(self, node_id: int, action: str) -> None:
        env = self.cluster.env
        if not self.cluster.node(node_id).alive:
            self.cluster.restart(node_id)
            self.log.append((env.now, node_id, action))
        else:
            self.log.append((env.now, node_id, action + "-noop"))

    def _set_nic(self, node_id: int, slowdown: float, action: str) -> None:
        nic = self.cluster.node(node_id).nic
        if nic.slowdown == slowdown:
            self.log.append((self.cluster.env.now, node_id, action + "-noop"))
        else:
            nic.slowdown = slowdown
            self.log.append((self.cluster.env.now, node_id, action))

    def _set_disk(self, node_id: int, slowdown: float, action: str) -> None:
        disk = self.cluster.node(node_id).disk
        if disk.slowdown == slowdown:
            self.log.append((self.cluster.env.now, node_id, action + "-noop"))
        else:
            disk.slowdown = slowdown
            self.log.append((self.cluster.env.now, node_id, action))

    def _set_wan(self, factor: float, action: str) -> None:
        cluster = self.cluster
        if cluster.wan_factor == factor:
            self.log.append((cluster.env.now, -1, action + "-noop"))
        elif factor == 1.0:
            cluster.heal_wan()
            self.log.append((cluster.env.now, -1, action))
        else:
            cluster.degrade_wan(factor)
            self.log.append((cluster.env.now, -1, action))

    def _dc_servers(self, dc_name: str) -> list[int]:
        """Server node ids of one datacenter (geo clusters only)."""
        return self.cluster.servers_in(dc_name)
