"""Compatibility shim: the meter grew into :mod:`repro.energy`.

The utilization-based meter that lived here since the seed is now the
:mod:`repro.energy` subsystem (power-state machine, NIC accounting,
dollar pricing).  Importing the historical names from here keeps
existing call sites working.
"""

from repro.energy import EnergyMeter, EnergyReport, PowerSpec

__all__ = ["EnergyMeter", "EnergyReport", "PowerSpec"]
