"""Cluster energy accounting.

The paper's related-work section notes that BigDataBench extends YCSB
with an energy-consumption metric.  This module adds the same capability
to the simulated testbed: a simple utilization-based power model summed
over nodes, reported as joules and joules/operation.

Model: each machine draws ``idle_w`` watts just by being on, plus a
utilization-proportional share of ``cpu_w`` (all cores busy) and
``disk_w`` (spindle busy).  Defaults approximate a dual-socket
Xeon L5640 server of the paper's era (~120 W idle, ~80 W CPU swing,
~10 W disk).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import Node

__all__ = ["EnergyMeter", "EnergyReport", "PowerSpec"]


@dataclass(frozen=True)
class PowerSpec:
    idle_w: float = 120.0
    cpu_w: float = 80.0
    disk_w: float = 10.0


@dataclass(frozen=True)
class EnergyReport:
    """Joules consumed by the cluster over one measured window."""

    duration_s: float
    idle_j: float
    cpu_j: float
    disk_j: float

    @property
    def total_j(self) -> float:
        return self.idle_j + self.cpu_j + self.disk_j

    def joules_per_op(self, operations: int) -> float:
        if operations <= 0:
            return 0.0
        return self.total_j / operations


class EnergyMeter:
    """Snapshots node counters and integrates power between them."""

    def __init__(self, nodes: list[Node], spec: PowerSpec = PowerSpec()) -> None:
        if not nodes:
            raise ValueError("meter needs at least one node")
        self.nodes = list(nodes)
        self.spec = spec
        self._start_time: float | None = None
        self._start_cpu: list[float] = []
        self._start_disk: list[float] = []

    def start(self) -> None:
        env = self.nodes[0].env
        self._start_time = env.now
        self._start_cpu = [n.cpu_time for n in self.nodes]
        self._start_disk = [n.disk.busy_time for n in self.nodes]

    def stop(self) -> EnergyReport:
        if self._start_time is None:
            raise RuntimeError("call start() before stop()")
        env = self.nodes[0].env
        duration = env.now - self._start_time
        if duration <= 0:
            return EnergyReport(0.0, 0.0, 0.0, 0.0)
        idle_j = self.spec.idle_w * duration * len(self.nodes)
        cpu_j = 0.0
        disk_j = 0.0
        for node, cpu0, disk0 in zip(self.nodes, self._start_cpu,
                                     self._start_disk):
            # core-seconds / cores = average utilization * duration
            busy_core_s = max(0.0, node.cpu_time - cpu0)
            cpu_j += self.spec.cpu_w * busy_core_s / node.spec.cores
            disk_busy_s = max(0.0, node.disk.busy_time - disk0)
            disk_j += self.spec.disk_w * disk_busy_s
        self._start_time = None
        return EnergyReport(duration_s=duration, idle_j=idle_j,
                            cpu_j=cpu_j, disk_j=disk_j)
