"""A cluster node: cores + RAM + one disk + one NIC.

Matches one machine of the paper's testbed: two Xeon L5640 processors
(2 × 6 cores × 2 hyper-threads = 24 logical cores), 32 GB of RAM, one hard
drive, gigabit ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapreplace
from typing import Callable, Generator

from repro.cluster.disk import Disk, DiskSpec
from repro.cluster.nic import NetworkSpec, Nic
from repro.sim.kernel import Environment, Timeout

__all__ = ["Node", "NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Per-machine hardware parameters."""

    #: Logical cores (hyper-threads) usable by request handlers.
    cores: int = 24
    #: RAM available to caches (bytes).  The storage layer draws its block
    #: cache and memtable budgets from this.
    ram_bytes: int = 32 * 1024**3
    disk: DiskSpec = DiskSpec()
    network: NetworkSpec = NetworkSpec()
    #: JVM stop-the-world hiccups (mean seconds between pauses and mean
    #: pause length, both exponential; 0 disables).  Off by default: the
    #: per-message exponential latency tail already gives
    #: wait-for-every-replica operations their straggler tax *smoothly*,
    #: whereas rare multi-millisecond pauses make short benchmark cells
    #: statistically unstable.  Enable for tail-latency studies.
    gc_interval_s: float = 0.0
    gc_pause_s: float = 0.0


class Node:
    """One simulated machine, addressable by ``node_id``."""

    def __init__(self, env: Environment, node_id: int, spec: NodeSpec,
                 rng) -> None:
        self.env = env
        self.node_id = node_id
        self.spec = spec
        #: Per-core free-at times (a heap).  CPU claims are FIFO and
        #: never cancelled, so reserving ``start = max(now, earliest
        #: free core)`` is exactly a ``Resource(capacity=cores)`` wait
        #: queue at a fraction of the event cost — ``cpu_work`` runs
        #: several times per RPC.
        self._core_free = [0.0] * spec.cores
        self.disk = Disk(env, spec.disk, rng)
        self.nic = Nic(env, spec.network)
        #: RPC verb -> handler.  A handler is a callable
        #: ``handler(payload) -> Generator`` whose return value becomes the
        #: RPC response payload.
        self.handlers: dict[str, Callable[[object], Generator]] = {}
        self.alive = True
        self.cpu_time = 0.0
        #: When this machine was provisioned (energy meters bill nodes
        #: that join a running cluster from here, not window start).
        self.created_at = env.now
        #: Power-state machine (:class:`repro.energy.power.PowerManager`)
        #: when power management is enabled; ``None`` keeps the hot path
        #: free for always-on clusters.
        self.power = None
        #: Handlers stall until this time while a GC pause is in effect.
        self.paused_until = 0.0
        self.gc_pauses = 0
        self._rng = rng
        self._gc_enabled = spec.gc_interval_s > 0 and spec.gc_pause_s > 0
        self._next_gc_at = (rng.expovariate(1.0 / spec.gc_interval_s)
                            if self._gc_enabled else float("inf"))

    def register(self, verb: str, handler: Callable[[object], Generator]) -> None:
        """Install the handler for RPC ``verb`` on this node."""
        if verb in self.handlers:
            raise ValueError(f"verb {verb!r} already registered on node {self.node_id}")
        self.handlers[verb] = handler

    def cpu_work(self, seconds: float) -> Generator:
        """Hold one core for ``seconds`` of computation (a process).

        Stalls first if a GC pause is in effect — application threads do
        not run during a stop-the-world collection.
        """
        if seconds <= 0:
            return
        end = self.reserve_cpu(seconds)
        now = self.env._now
        if end > now:
            yield Timeout(self.env, end - now)

    def reserve_cpu(self, seconds: float, at: float = 0.0) -> float:
        """Book a core for ``seconds`` starting no earlier than ``at``
        (and no earlier than now); returns the absolute completion time.

        CPU claims are FIFO and never cancelled, so ``start = max(at,
        now, earliest free core, GC pause end)`` reproduces a
        ``Resource(capacity=cores)`` wait queue exactly, at a single
        timeout event instead of a request round-trip.
        """
        start = self.env._now
        if at > start:
            start = at
        if self._gc_enabled:
            # paused_until only ever advances from the schedule, so a
            # node with GC disabled can skip both checks entirely.
            self._advance_gc_schedule()
            if self.paused_until > start:
                start = self.paused_until
        earliest = self._core_free[0]
        if earliest > start:
            start = earliest
        if self.power is not None:
            # A parked machine pays its deterministic wake latency
            # before the core can run — power management costs tail.
            start = self.power.wake_for_work(start)
        end = start + seconds
        heapreplace(self._core_free, end)
        self.cpu_time += seconds
        if self.power is not None:
            self.power.note_busy(end)
        return end

    def _advance_gc_schedule(self) -> None:
        """Materialize the GC pause schedule up to "now".

        The schedule is evaluated lazily (no background process), so an
        idle simulation terminates; pauses that ended unobserved have no
        effect, exactly as in reality.
        """
        while self._next_gc_at <= self.env.now:
            pause = self._rng.expovariate(1.0 / self.spec.gc_pause_s)
            end = self._next_gc_at + pause
            if end > self.env.now:
                self.paused_until = max(self.paused_until, end)
            self.gc_pauses += 1
            self._next_gc_at = end + self._rng.expovariate(
                1.0 / self.spec.gc_interval_s)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Node {self.node_id} {state}>"
