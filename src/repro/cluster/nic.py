"""Network model: per-node NICs joined by one rack switch.

A message from node A to node B costs:

- serialization on A's egress NIC (size / bandwidth, queued if busy),
- a fixed propagation + switch + kernel-stack latency,
- serialization on B's ingress NIC.

Holding the NIC resource for the serialization time makes bandwidth a real
shared bottleneck: a node fanning a mutation out to five replicas pays for
five back-to-back serializations, which is exactly the effect the paper's
replication-factor sweeps exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.kernel import Environment
from repro.sim.resources import Resource

__all__ = ["Network", "NetworkSpec", "Nic"]


@dataclass(frozen=True)
class NetworkSpec:
    """Gigabit-ethernet, single-rack parameters."""

    #: Usable NIC bandwidth (bytes/second).  GigE minus framing overhead.
    bandwidth_bps: float = 117e6
    #: One-way latency: NIC + switch + kernel stack, in-rack.
    base_latency_s: float = 0.00003
    #: Fixed per-message size overhead (headers), bytes.
    header_bytes: int = 60
    #: Per-message latency variability: the delay is
    #: ``base * (floor + Exp(tail))`` — kernel scheduling and interrupt
    #: coalescing give in-rack RTTs an exponential tail, which is what
    #: makes wait-for-the-slowest-replica operations (write ALL, quorum
    #: digests) systematically slower than wait-for-the-fastest.
    latency_floor: float = 0.7
    latency_tail: float = 0.6


class Nic:
    """A full-duplex NIC: independent egress and ingress channels."""

    def __init__(self, env: Environment, spec: NetworkSpec) -> None:
        self.env = env
        self.spec = spec
        self._egress = Resource(env, capacity=1)
        self._ingress = Resource(env, capacity=1)
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Fault-injection hook: serialization-time multiplier (>= 1).
        #: Packet loss and added latency both surface to flows as a lower
        #: effective bandwidth, so a degraded NIC is modelled as a slower
        #: one (see :class:`repro.cluster.failure.NicDegradeFault`).
        self.slowdown = 1.0

    def _serialize(self, channel: Resource, size: int) -> Generator:
        with channel.request() as req:
            yield req
            yield self.env.timeout(
                self.slowdown * (size + self.spec.header_bytes)
                / self.spec.bandwidth_bps)

    def send(self, size: int) -> Generator:
        self.bytes_sent += size
        yield from self._serialize(self._egress, size)

    def receive(self, size: int) -> Generator:
        self.bytes_received += size
        yield from self._serialize(self._ingress, size)


class Network:
    """The rack fabric: computes transit delay between two NICs."""

    def __init__(self, env: Environment, spec: NetworkSpec, rng) -> None:
        self.env = env
        self.spec = spec
        self._rng = rng
        self.messages = 0

    def transit(self, src: Nic, dst: Nic, size: int) -> Generator:
        """Deliver ``size`` bytes from ``src`` to ``dst`` (a process).

        Completes when the last byte has been received.
        """
        self.messages += 1
        yield from src.send(size)
        spec = self.spec
        factor = spec.latency_floor
        if spec.latency_tail:
            factor += self._rng.expovariate(1.0 / spec.latency_tail)
        yield self.env.timeout(spec.base_latency_s * factor)
        yield from dst.receive(size)
