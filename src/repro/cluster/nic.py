"""Network model: per-node NICs joined by one rack switch.

A message from node A to node B costs:

- serialization on A's egress NIC (size / bandwidth, queued if busy),
- a fixed propagation + switch + kernel-stack latency,
- serialization on B's ingress NIC.

Holding the NIC resource for the serialization time makes bandwidth a real
shared bottleneck: a node fanning a mutation out to five replicas pays for
five back-to-back serializations, which is exactly the effect the paper's
replication-factor sweeps exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log
from typing import Generator, Optional

from repro.sim.kernel import Environment, Timeout

__all__ = ["Network", "NetworkSpec", "Nic"]


@dataclass(frozen=True)
class NetworkSpec:
    """Gigabit-ethernet, single-rack parameters."""

    #: Usable NIC bandwidth (bytes/second).  GigE minus framing overhead.
    bandwidth_bps: float = 117e6
    #: One-way latency: NIC + switch + kernel stack, in-rack.
    base_latency_s: float = 0.00003
    #: Fixed per-message size overhead (headers), bytes.
    header_bytes: int = 60
    #: Per-message latency variability: the delay is
    #: ``base * (floor + Exp(tail))`` — kernel scheduling and interrupt
    #: coalescing give in-rack RTTs an exponential tail, which is what
    #: makes wait-for-the-slowest-replica operations (write ALL, quorum
    #: digests) systematically slower than wait-for-the-fastest.
    latency_floor: float = 0.7
    latency_tail: float = 0.6


class Nic:
    """A full-duplex NIC: independent egress and ingress channels.

    Each channel is a *busy-until reservation*: serializations are FIFO,
    capacity one, and never cancelled, so ``start = max(now, busy_until)``
    reproduces a wait queue exactly while costing a single timeout event
    instead of a resource round-trip — the NIC is on the path of every
    RPC byte, which made the old ``Resource`` machinery the single
    biggest event source in stress-cell profiles.
    """

    def __init__(self, env: Environment, spec: NetworkSpec) -> None:
        self.env = env
        self.spec = spec
        self._egress_busy = 0.0
        self._ingress_busy = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Cumulative channel-busy seconds (egress + ingress), the NIC
        #: term of the energy meter's power integral.
        self.busy_s = 0.0
        #: Fault-injection hook: serialization-time multiplier (>= 1).
        #: Packet loss and added latency both surface to flows as a lower
        #: effective bandwidth, so a degraded NIC is modelled as a slower
        #: one (see :class:`repro.cluster.failure.NicDegradeFault`).
        #: Read at reservation time: messages already queued keep the
        #: rate they reserved under.
        self.slowdown = 1.0

    def reserve_egress(self, size: int, at: float = 0.0) -> float:
        """Book the egress channel for ``size`` bytes starting no earlier
        than ``at``; returns the completion time (absolute)."""
        self.bytes_sent += size
        spec = self.spec
        start = self.env._now
        if at > start:
            start = at
        if self._egress_busy > start:
            start = self._egress_busy
        done = start + (self.slowdown * (size + spec.header_bytes)
                        / spec.bandwidth_bps)
        self.busy_s += done - start
        self._egress_busy = done
        return done

    def reserve_ingress(self, size: int, at: float = 0.0) -> float:
        """Book the ingress channel for ``size`` bytes starting no earlier
        than ``at``; returns the completion time (absolute)."""
        self.bytes_received += size
        spec = self.spec
        start = self.env._now
        if at > start:
            start = at
        if self._ingress_busy > start:
            start = self._ingress_busy
        done = start + (self.slowdown * (size + spec.header_bytes)
                        / spec.bandwidth_bps)
        self.busy_s += done - start
        self._ingress_busy = done
        return done

    def send(self, size: int) -> Generator:
        done = self.reserve_egress(size)
        if done > self.env.now:
            yield self.env.timeout(done - self.env.now)

    def receive(self, size: int) -> Generator:
        done = self.reserve_ingress(size)
        if done > self.env.now:
            yield self.env.timeout(done - self.env.now)


class Network:
    """The rack fabric: computes transit delay between two NICs."""

    def __init__(self, env: Environment, spec: NetworkSpec, rng) -> None:
        self.env = env
        self.spec = spec
        self._rng = rng
        self._random = rng.random
        self.messages = 0

    def sample_latency(self, src: Optional[Nic] = None,
                       dst: Optional[Nic] = None, size: int = 0) -> float:
        """One switch-hop delay draw (floor plus exponential tail).

        ``src``/``dst``/``size`` are ignored on the single-rack fabric —
        every hop crosses the same switch — but belong to the signature
        so topology-aware fabrics (the geo cluster) can price the hop by
        endpoint pair and message size.  The exponential draw is inlined
        (one uniform draw, same distribution as ``expovariate``): this
        runs twice per RPC message.
        """
        spec = self.spec
        factor = spec.latency_floor
        tail = spec.latency_tail
        if tail:
            factor -= log(1.0 - self._random()) * tail
        return spec.base_latency_s * factor

    def transit(self, src: Nic, dst: Nic, size: int) -> Generator:
        """Deliver ``size`` bytes from ``src`` to ``dst`` (a process).

        Completes when the last byte has been received.  Egress
        serialization and the switch hop are fused into one timeout (the
        wire delay is a pure delay after the reserved egress slot, so
        nothing can observe the intermediate instant); ingress is
        reserved on arrival, preserving arrival-order queueing at the
        receiver.
        """
        self.messages += 1
        env = self.env
        arrival = src.reserve_egress(size) + self.sample_latency()
        now = env._now
        if arrival > now:
            yield Timeout(env, arrival - now)
        done = dst.reserve_ingress(size)
        now = env._now
        if done > now:
            yield Timeout(env, done - now)
