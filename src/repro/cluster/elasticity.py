"""Elasticity: scale the cluster while it serves.

The campaign counterpart of :mod:`repro.cluster.failure` — instead of
breaking nodes, a :class:`ScaleEngine` adds and removes them mid-run.
Both deployments expose the same four-method surface
(``scale_out_candidate`` / ``scale_in_candidate`` /
``apply_scale_out`` / ``apply_scale_in``):

- **Cassandra** bootstraps a spare node into the token ring (pending
  double-writes + range streaming, see
  :meth:`repro.cassandra.deployment.CassandraCluster.bootstrap`) or
  decommissions the highest live member;
- **HBase** activates a standby RegionServer (the HMaster rebalances
  regions onto it) or drains one back to standby.

Three modes:

- ``static`` — never scales; the control every elastic run is judged
  against.
- ``manual`` — a declarative :class:`ScaleEventSpec` schedule, offsets
  resolved against the measured run's start exactly like
  :class:`~repro.cluster.failure.FaultSpec`.
- ``auto`` — a deterministic policy loop: scale out after
  ``breach_windows`` consecutive windows whose p95 exceeds
  ``p95_breach_ms``, scale in after ``idle_windows`` consecutive
  windows below ``p95_relax_ms``, with a cooldown between actions.

:func:`build_scale_report` projects a run's measurements over the
engine's event log into per-phase (before / during / after transfer)
latency and staleness columns — the table the campaign prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.ycsb.measurements import Measurements, percentile

__all__ = ["ElasticityConfig", "SCALE_ACTIONS", "SCALE_MODES",
           "ScaleEngine", "ScaleEventSpec", "build_scale_report"]

SCALE_ACTIONS = ("out", "in")
SCALE_MODES = ("static", "manual", "auto")


@dataclass(frozen=True)
class ScaleEventSpec:
    """One declarative scale step (manual mode), JSON-safe.

    ``at_s`` is relative to the measured run's start — the engine
    resolves it against the run's base time when armed, exactly like
    :meth:`repro.cluster.failure.FaultSpec.resolve`.
    """

    action: str = "out"
    at_s: float = 2.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in SCALE_ACTIONS:
            raise ValueError(f"unknown scale action {self.action!r}; "
                             f"choose from {SCALE_ACTIONS}")
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass(frozen=True)
class ElasticityConfig:
    """JSON-safe elasticity plan carried by an ExperimentConfig."""

    #: "static" (control), "manual" (event schedule) or "auto"
    #: (p95-driven policy loop).
    mode: str = "manual"
    #: Trailing server nodes provisioned outside the serving set at
    #: build time — the pool scale-out draws from.
    spare_nodes: int = 1
    #: Manual mode's schedule.
    events: tuple[ScaleEventSpec, ...] = (ScaleEventSpec(),)
    # -- autoscaler policy (mode="auto") --------------------------------
    #: Sampling window for the policy loop.
    window_s: float = 1.0
    #: Scale out after this many consecutive windows above the breach.
    p95_breach_ms: float = 50.0
    breach_windows: int = 2
    #: Scale in after this many consecutive windows below the relax
    #: threshold (hysteresis: relax < breach, so the loop cannot flap).
    p95_relax_ms: float = 10.0
    idle_windows: int = 6
    #: Minimum time between two actions (covers the streaming window).
    cooldown_s: float = 8.0

    def __post_init__(self) -> None:
        if self.mode not in SCALE_MODES:
            raise ValueError(f"unknown elasticity mode {self.mode!r}; "
                             f"choose from {SCALE_MODES}")
        if self.spare_nodes < 0:
            raise ValueError("spare_nodes must be >= 0")
        if self.window_s <= 0 or self.cooldown_s < 0:
            raise ValueError("window_s must be > 0 and cooldown_s >= 0")
        if self.breach_windows < 1 or self.idle_windows < 1:
            raise ValueError("breach_windows and idle_windows must be >= 1")
        if self.p95_relax_ms >= self.p95_breach_ms:
            raise ValueError("p95_relax_ms must sit below p95_breach_ms "
                             "(hysteresis)")


class ScaleEngine:
    """Executes one elasticity plan against one deployment.

    Every action is logged as a ``(time, event, node_id)`` pair of
    ``{action}_start`` / ``{action}_done`` entries (or one
    ``{action}_skipped`` with node ``-1`` when no candidate exists);
    the start→done spans are the "during transfer" windows the
    per-phase report cuts the run by.
    """

    def __init__(self, env, deployment, config: ElasticityConfig,
                 measurements: Optional[Measurements] = None) -> None:
        self.env = env
        self.deployment = deployment
        self.config = config
        #: Live measurements the autoscaler polls (required for "auto").
        self.measurements = measurements
        self.log: list[tuple[float, str, int]] = []
        self._stopped = False
        self._last_cut = 0.0
        self._cooldown_until = 0.0

    def arm(self, base_s: float) -> None:
        """Start the mode's processes; offsets resolve against ``base_s``."""
        cfg = self.config
        if cfg.mode == "manual":
            for i, event in enumerate(cfg.events):
                self.env.process(self._fire(event, base_s),
                                 name=f"scale-{event.action}-{i}")
        elif cfg.mode == "auto":
            if self.measurements is None:
                raise ValueError("autoscaler mode needs live measurements")
            self._last_cut = base_s
            self._cooldown_until = base_s
            self.env.process(self._autoscale(), name="autoscaler")
        # static: nothing to arm.

    def stop(self) -> None:
        """Finish the policy loop at its next wake-up."""
        self._stopped = True

    def _fire(self, event: ScaleEventSpec, base_s: float) -> Generator:
        at = base_s + event.at_s
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        for _ in range(event.count):
            yield from self._step(event.action)

    def _step(self, action: str) -> Generator:
        dep = self.deployment
        node_id = (dep.scale_out_candidate() if action == "out"
                   else dep.scale_in_candidate())
        if node_id is None:
            self.log.append((self.env.now, f"{action}_skipped", -1))
            return
        self.log.append((self.env.now, f"{action}_start", node_id))
        if action == "out":
            yield from dep.apply_scale_out(node_id)
        else:
            yield from dep.apply_scale_in(node_id)
        self.log.append((self.env.now, f"{action}_done", node_id))

    def _window_p95_ms(self, cut: float) -> Optional[float]:
        """p95 over samples completed since ``cut`` (None = no traffic)."""
        m = self.measurements
        window = sorted(lat for op in sorted(m.samples)
                        for (t, lat) in m.samples[op] if t > cut)
        if not window:
            return None
        return percentile(window, 0.95) * 1000.0

    def _autoscale(self) -> Generator:
        cfg = self.config
        breaches = idles = 0
        while not self._stopped:
            yield self.env.timeout(cfg.window_s)
            if self._stopped:
                return
            cut, self._last_cut = self._last_cut, self.env.now
            p95_ms = self._window_p95_ms(cut)
            if p95_ms is None:
                continue
            if p95_ms >= cfg.p95_breach_ms:
                breaches, idles = breaches + 1, 0
            elif p95_ms <= cfg.p95_relax_ms:
                breaches, idles = 0, idles + 1
            else:
                breaches = idles = 0
            if self.env.now < self._cooldown_until:
                continue
            if breaches >= cfg.breach_windows:
                breaches = idles = 0
                self._cooldown_until = self.env.now + cfg.cooldown_s
                yield from self._step("out")
            elif idles >= cfg.idle_windows:
                breaches = idles = 0
                self._cooldown_until = self.env.now + cfg.cooldown_s
                yield from self._step("in")


def _transfer_windows(log: Sequence[tuple[float, str, int]],
                      run_end: float) -> list[tuple[float, float]]:
    """start→done spans per logged action (an unpaired start runs to
    the end of the recording)."""
    windows: list[tuple[float, float]] = []
    open_at: dict[int, float] = {}
    for t, event, node_id in log:
        if event.endswith("_start"):
            open_at[node_id] = t
        elif event.endswith("_done") and node_id in open_at:
            windows.append((open_at.pop(node_id), t))
    windows.extend((t, run_end) for t in open_at.values())
    windows.sort()
    return windows


def _phase_stats(latencies: list[float]) -> dict:
    if not latencies:
        return {"ops": 0, "mean_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(latencies)
    return {
        "ops": len(ordered),
        "mean_ms": sum(ordered) / len(ordered) * 1000.0,
        "p95_ms": percentile(ordered, 0.95) * 1000.0,
        "p99_ms": percentile(ordered, 0.99) * 1000.0,
    }


def build_scale_report(measurements: Measurements,
                       log: Sequence[tuple[float, str, int]],
                       config: ElasticityConfig,
                       streams: Sequence[tuple[float, int, int, int]] = (),
                       rebalances: int = 0,
                       splits: int = 0,
                       probe=None) -> dict:
    """JSON-safe elasticity report for one run.

    Cuts the run's samples into **before** (up to the first
    ``*_start``), **during** (inside any start→done transfer window)
    and **after** (past the last ``*_done``) phases, and reports each
    phase's latency profile plus the staleness probe's per-phase
    read-your-writes violations.  A run with no topology events (mode
    "static", or an autoscaler that never acted) lands entirely in
    "before".
    """
    run_end = measurements.finished_at or 0.0
    windows = _transfer_windows(log, run_end)
    first_start = windows[0][0] if windows else None
    last_done = windows[-1][1] if windows else None

    def phase_of(t: float) -> str:
        if first_start is None or t < first_start:
            return "before"
        if any(s <= t <= e for s, e in windows):
            return "during"
        if last_done is not None and t > last_done:
            return "after"
        return "between"

    latencies: dict[str, list[float]] = {
        "before": [], "during": [], "between": [], "after": []}
    for op in sorted(measurements.samples):
        for t, lat in measurements.samples[op]:
            latencies[phase_of(t)].append(lat)
    phases = {name: _phase_stats(vals) for name, vals in latencies.items()}

    stale: dict[str, int] = {p: 0 for p in phases}
    probe_reads = 0
    if probe is not None:
        probe_reads = probe.probe_reads
        for t, is_stale in probe.reads:
            if is_stale:
                stale[phase_of(t)] += 1
    for name in phases:
        phases[name]["stale_reads"] = stale[name]

    return {
        "mode": config.mode,
        "events": [[t, event, node_id] for t, event, node_id in log],
        "actions": sum(1 for _, event, _ in log
                       if event.endswith("_done")),
        "skipped": sum(1 for _, event, _ in log
                       if event.endswith("_skipped")),
        "transfer_windows": [[s, e] for s, e in windows],
        "transfer_s": sum(e - s for s, e in windows),
        "phases": phases,
        "streamed_bytes": sum(b for _, _, _, b in streams),
        "stream_count": len(streams),
        "rebalances": rebalances,
        "splits": splits,
        "probe_reads": probe_reads,
        "stale_reads": sum(stale.values()),
    }
