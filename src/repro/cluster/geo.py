"""Geo-distributed topology (the paper's §6 future work).

The paper concludes that a single rack "cannot form a convincing testbed
for more complicated tests such as geo-read latency test, partition test
and availability test" and calls for a geo-distributed testbed.  This
module provides one: nodes are grouped into named datacenters, and
message latency between two nodes is looked up from a WAN latency matrix
instead of the in-rack constant.

Distances default to the three regions of Bermbach et al.'s experiment
(the consistency-measurement work the paper cites in §5): Western Europe,
Northern California, Singapore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cluster.nic import NetworkSpec, Nic
from repro.cluster.node import Node, NodeSpec
from repro.sim.kernel import Environment, Timeout
from repro.sim.rng import RngRegistry

__all__ = ["GeoCluster", "GeoSpec", "DEFAULT_REGION_RTTS"]

#: One-way latencies (seconds) between the example regions, roughly the
#: public round-trip figures halved: EU <-> US-West ~ 150 ms RTT,
#: EU <-> Singapore ~ 180 ms, US-West <-> Singapore ~ 170 ms.
DEFAULT_REGION_RTTS: dict[frozenset, float] = {
    frozenset({"eu-west", "us-west"}): 0.075,
    frozenset({"eu-west", "ap-southeast"}): 0.090,
    frozenset({"us-west", "ap-southeast"}): 0.085,
}


@dataclass(frozen=True)
class GeoSpec:
    """A multi-datacenter deployment description."""

    #: Datacenter name -> number of server nodes in it.
    datacenters: dict = field(default_factory=lambda: {
        "eu-west": 5, "us-west": 5, "ap-southeast": 5})
    #: Which datacenter hosts the (single) client node.
    client_datacenter: str = "eu-west"
    #: Optional multi-region client layout: one client node per listed
    #: datacenter, appended after the servers in this order.  ``None``
    #: keeps the legacy single-client layout in ``client_datacenter``.
    client_datacenters: Optional[tuple] = None
    #: One-way inter-DC latency (seconds), keyed by frozenset of DC names.
    region_latency_s: dict = field(
        default_factory=lambda: dict(DEFAULT_REGION_RTTS))
    #: One-way latency between nodes of the same DC (in-rack).
    local_latency_s: float = 0.00003
    #: Inter-DC usable bandwidth per flow (bytes/s) — WAN links are far
    #: thinner than the in-rack GigE.
    wan_bandwidth_bps: float = 30e6
    node: NodeSpec = field(default_factory=NodeSpec)
    #: Fixed CPU per RPC message (matches ClusterSpec.rpc_cpu_s).
    rpc_cpu_s: float = 0.000025
    envelope_bytes: int = 120


class _GeoNetwork:
    """Latency/bandwidth lookup across datacenters.

    Duck-type compatible with :class:`repro.cluster.nic.Network` so the
    RPC layer and the databases work unmodified on a geo cluster.
    """

    def __init__(self, env: Environment, geo: "GeoCluster", rng) -> None:
        self.env = env
        self.geo = geo
        self._rng = rng
        self.messages = 0

    def sample_latency(self, src: Nic, dst: Nic, size: int = 0) -> float:
        """One hop delay draw, priced by the endpoints' datacenters.

        Cross-DC hops pay the configured region latency plus WAN
        serialization at the thinner inter-DC bandwidth.
        """
        src_dc = self.geo.datacenter_of_nic(src)
        dst_dc = self.geo.datacenter_of_nic(dst)
        spec = self.geo.spec
        if src_dc == dst_dc:
            base = spec.local_latency_s
            extra = 0.0
        else:
            # A degraded WAN stretches propagation and thins bandwidth
            # by the cluster's current wan_factor (1.0 = healthy).
            wan = self.geo.wan_factor
            base = spec.region_latency_s[frozenset({src_dc, dst_dc})] * wan
            # WAN serialization at the thinner inter-DC bandwidth.
            extra = size * wan / spec.wan_bandwidth_bps
        factor = 0.7 + self._rng.expovariate(1.0 / 0.6)
        return base * factor + extra

    def transit(self, src: Nic, dst: Nic, size: int) -> Generator:
        self.messages += 1
        yield from src.send(size)
        yield self.env.timeout(self.sample_latency(src, dst, size))
        yield from dst.receive(size)


class GeoCluster:
    """A multi-datacenter cluster, API-compatible with
    :class:`repro.cluster.topology.Cluster`.

    Node ids are assigned datacenter by datacenter in the order of
    ``spec.datacenters``; the client node comes last (mirroring the
    single-rack layout, where the last node hosts the YCSB client).
    """

    def __init__(self, env: Environment, spec: GeoSpec,
                 rngs: RngRegistry) -> None:
        self.env = env
        self.spec = spec
        self.rngs = rngs
        self.nodes: list[Node] = []
        #: node_id -> datacenter name.
        self.node_datacenter: dict[int, str] = {}
        self._nic_datacenter: dict[int, str] = {}
        node_id = 0
        for dc_name, count in spec.datacenters.items():
            for _ in range(count):
                node = Node(env, node_id, spec.node,
                            rngs.stream(f"disk.{node_id}"))
                self.nodes.append(node)
                self.node_datacenter[node_id] = dc_name
                self._nic_datacenter[id(node.nic)] = dc_name
                node_id += 1
        self.server_ids: list[int] = list(range(node_id))
        self.client_ids: list[int] = []
        #: Datacenter name -> its client node id (multi-region layouts).
        self._client_by_dc: dict[str, int] = {}
        client_dcs = (spec.client_datacenters
                      if spec.client_datacenters is not None
                      else (spec.client_datacenter,))
        for dc_name in client_dcs:
            if dc_name not in spec.datacenters:
                raise ValueError(f"client datacenter {dc_name!r} is not a "
                                 f"configured datacenter")
            if dc_name in self._client_by_dc:
                raise ValueError(f"duplicate client datacenter {dc_name!r}")
            client = Node(env, node_id, spec.node,
                          rngs.stream(f"disk.{node_id}"))
            self.nodes.append(client)
            self.node_datacenter[node_id] = dc_name
            self._nic_datacenter[id(client.nic)] = dc_name
            self.client_ids.append(node_id)
            self._client_by_dc[dc_name] = node_id
            node_id += 1

        #: WAN degradation multiplier applied to cross-DC latency and
        #: serialization (fault hook, like Nic.slowdown).  1.0 = healthy.
        self.wan_factor = 1.0
        self.network = _GeoNetwork(env, self, rngs.stream("geo.network"))
        self.rpc_count = 0
        #: Requests whose propagated deadline expired before the server
        #: started them (see :class:`repro.cluster.topology.Cluster`).
        self.abandoned_rpcs = 0
        #: Shared RPC-timer pool (see :class:`Cluster`).
        self._timers: dict[float, object] = {}
        self._timer_prune_at = 256

    # -- Cluster API compatibility ----------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def kill(self, node_id: int) -> None:
        self.nodes[node_id].alive = False

    def restart(self, node_id: int) -> None:
        self.nodes[node_id].alive = True

    def partition_datacenter(self, dc_name: str) -> list[int]:
        """Cut a whole datacenter off (kill all its nodes); returns ids."""
        cut = [nid for nid, dc in self.node_datacenter.items()
               if dc == dc_name]
        for node_id in cut:
            self.kill(node_id)
        return cut

    def heal_datacenter(self, dc_name: str) -> None:
        for node_id, dc in self.node_datacenter.items():
            if dc == dc_name:
                self.restart(node_id)

    def datacenter_of(self, node_id: int) -> str:
        return self.node_datacenter[node_id]

    def datacenter_of_nic(self, nic: Nic) -> str:
        return self._nic_datacenter[id(nic)]

    def servers_in(self, dc_name: str) -> list[int]:
        """Server node ids of one datacenter (excludes client nodes)."""
        clients = set(self.client_ids)
        return [nid for nid, dc in self.node_datacenter.items()
                if dc == dc_name and nid not in clients]

    def client_in(self, dc_name: str) -> Node:
        """The client node hosted in ``dc_name``."""
        if dc_name not in self._client_by_dc:
            raise ValueError(f"no client node in datacenter {dc_name!r}")
        return self.nodes[self._client_by_dc[dc_name]]

    def degrade_wan(self, factor: float) -> None:
        """Stretch every cross-DC link by ``factor`` (fault hook)."""
        if factor < 1.0:
            raise ValueError(f"wan factor must be >= 1, got {factor}")
        self.wan_factor = factor

    def heal_wan(self) -> None:
        self.wan_factor = 1.0

    # -- RPC (same protocol as Cluster) ---------------------------------

    def _rpc_body(self, src, dst, verb, payload, request_bytes,
                  response_bytes, deadline=None, src_cpu_s=0.0):
        """One RPC round trip, WAN-aware (see ``Cluster._rpc_body``).

        Same stage pipeline as the single-rack transport, with one
        difference: a cross-datacenter leg books the receiver's ingress
        NIC at the *arrival* instant, not optimistically at send time.
        The busy-until approximation assumes reservation order tracks
        arrival order, which holds in-rack (every hop is tens of
        microseconds) but collapses across a WAN — a mutation booked
        90 ms ahead would park the replica's ingress channel in the
        future and queue every rack-local message behind a link that is
        actually idle.  The deferral costs one extra kernel event per
        WAN leg, noise against the propagation delay itself.
        """
        from repro.cluster.topology import _EXPIRED, _NO_RESPONSE
        env = self.env
        spec = self.spec
        network = self.network
        rpc_cpu = spec.rpc_cpu_s
        node_dc = self.node_datacenter
        cross = node_dc[src.node_id] != node_dc[dst.node_id]
        size = request_bytes + spec.envelope_bytes
        network.messages += 1
        cpu_done = src.reserve_cpu(src_cpu_s + rpc_cpu)
        arrival = (src.nic.reserve_egress(size, at=cpu_done)
                   + network.sample_latency(src.nic, dst.nic, size))
        if cross:
            now = env._now
            if arrival > now:
                yield Timeout(env, arrival - now)
            handler_at = dst.reserve_cpu(rpc_cpu,
                                         at=dst.nic.reserve_ingress(size))
        else:
            handler_at = dst.reserve_cpu(
                rpc_cpu, at=dst.nic.reserve_ingress(size, at=arrival))
        now = env._now
        if handler_at > now:
            yield Timeout(env, handler_at - now)
        if not dst.alive:
            return _NO_RESPONSE
        if deadline is not None and env._now >= deadline:
            self.abandoned_rpcs += 1
            return _EXPIRED
        handler = dst.handlers.get(verb)
        if handler is None:
            raise LookupError(
                f"node {dst.node_id} has no handler for {verb!r}")
        result = yield from handler(payload)
        if not dst.alive:
            return _NO_RESPONSE
        size = response_bytes + spec.envelope_bytes
        network.messages += 1
        back = (dst.nic.reserve_egress(size)
                + network.sample_latency(dst.nic, src.nic, size))
        if cross:
            now = env._now
            if back > now:
                yield Timeout(env, back - now)
            done = src.reserve_cpu(rpc_cpu,
                                   at=src.nic.reserve_ingress(size))
        else:
            done = src.reserve_cpu(
                rpc_cpu, at=src.nic.reserve_ingress(size, at=back))
        now = env._now
        if done > now:
            yield Timeout(env, done - now)
        return result

    def call(self, src, dst, verb, payload=None, request_bytes=0,
             response_bytes=0, timeout: Optional[float] = None,
             deadline: Optional[float] = None, src_cpu_s: float = 0.0):
        from repro.cluster.topology import Cluster
        return Cluster.call(self, src, dst, verb, payload, request_bytes,
                            response_bytes, timeout, deadline, src_cpu_s)

    def call_async(self, src, dst, verb, payload=None, request_bytes=0,
                   response_bytes=0, timeout: Optional[float] = None,
                   deadline: Optional[float] = None,
                   src_cpu_s: float = 0.0):
        from repro.cluster.topology import Cluster
        return Cluster.call_async(self, src, dst, verb, payload,
                                  request_bytes, response_bytes, timeout,
                                  deadline, src_cpu_s)

    def _shared_timer(self, wait_s: float, exact: bool = False):
        from repro.cluster.topology import Cluster
        return Cluster._shared_timer(self, wait_s, exact=exact)
