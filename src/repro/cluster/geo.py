"""Geo-distributed topology (the paper's §6 future work).

The paper concludes that a single rack "cannot form a convincing testbed
for more complicated tests such as geo-read latency test, partition test
and availability test" and calls for a geo-distributed testbed.  This
module provides one: nodes are grouped into named datacenters, and
message latency between two nodes is looked up from a WAN latency matrix
instead of the in-rack constant.

Distances default to the three regions of Bermbach et al.'s experiment
(the consistency-measurement work the paper cites in §5): Western Europe,
Northern California, Singapore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cluster.nic import NetworkSpec, Nic
from repro.cluster.node import Node, NodeSpec
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry

__all__ = ["GeoCluster", "GeoSpec", "DEFAULT_REGION_RTTS"]

#: One-way latencies (seconds) between the example regions, roughly the
#: public round-trip figures halved: EU <-> US-West ~ 150 ms RTT,
#: EU <-> Singapore ~ 180 ms, US-West <-> Singapore ~ 170 ms.
DEFAULT_REGION_RTTS: dict[frozenset, float] = {
    frozenset({"eu-west", "us-west"}): 0.075,
    frozenset({"eu-west", "ap-southeast"}): 0.090,
    frozenset({"us-west", "ap-southeast"}): 0.085,
}


@dataclass(frozen=True)
class GeoSpec:
    """A multi-datacenter deployment description."""

    #: Datacenter name -> number of server nodes in it.
    datacenters: dict = field(default_factory=lambda: {
        "eu-west": 5, "us-west": 5, "ap-southeast": 5})
    #: Which datacenter hosts the (single) client node.
    client_datacenter: str = "eu-west"
    #: One-way inter-DC latency (seconds), keyed by frozenset of DC names.
    region_latency_s: dict = field(
        default_factory=lambda: dict(DEFAULT_REGION_RTTS))
    #: One-way latency between nodes of the same DC (in-rack).
    local_latency_s: float = 0.00003
    #: Inter-DC usable bandwidth per flow (bytes/s) — WAN links are far
    #: thinner than the in-rack GigE.
    wan_bandwidth_bps: float = 30e6
    node: NodeSpec = field(default_factory=NodeSpec)
    #: Fixed CPU per RPC message (matches ClusterSpec.rpc_cpu_s).
    rpc_cpu_s: float = 0.000025
    envelope_bytes: int = 120


class _GeoNetwork:
    """Latency/bandwidth lookup across datacenters.

    Duck-type compatible with :class:`repro.cluster.nic.Network` so the
    RPC layer and the databases work unmodified on a geo cluster.
    """

    def __init__(self, env: Environment, geo: "GeoCluster", rng) -> None:
        self.env = env
        self.geo = geo
        self._rng = rng
        self.messages = 0

    def sample_latency(self, src: Nic, dst: Nic, size: int = 0) -> float:
        """One hop delay draw, priced by the endpoints' datacenters.

        Cross-DC hops pay the configured region latency plus WAN
        serialization at the thinner inter-DC bandwidth.
        """
        src_dc = self.geo.datacenter_of_nic(src)
        dst_dc = self.geo.datacenter_of_nic(dst)
        spec = self.geo.spec
        if src_dc == dst_dc:
            base = spec.local_latency_s
            extra = 0.0
        else:
            base = spec.region_latency_s[frozenset({src_dc, dst_dc})]
            # WAN serialization at the thinner inter-DC bandwidth.
            extra = size / spec.wan_bandwidth_bps
        factor = 0.7 + self._rng.expovariate(1.0 / 0.6)
        return base * factor + extra

    def transit(self, src: Nic, dst: Nic, size: int) -> Generator:
        self.messages += 1
        yield from src.send(size)
        yield self.env.timeout(self.sample_latency(src, dst, size))
        yield from dst.receive(size)


class GeoCluster:
    """A multi-datacenter cluster, API-compatible with
    :class:`repro.cluster.topology.Cluster`.

    Node ids are assigned datacenter by datacenter in the order of
    ``spec.datacenters``; the client node comes last (mirroring the
    single-rack layout, where the last node hosts the YCSB client).
    """

    def __init__(self, env: Environment, spec: GeoSpec,
                 rngs: RngRegistry) -> None:
        self.env = env
        self.spec = spec
        self.rngs = rngs
        self.nodes: list[Node] = []
        #: node_id -> datacenter name.
        self.node_datacenter: dict[int, str] = {}
        self._nic_datacenter: dict[int, str] = {}
        node_id = 0
        for dc_name, count in spec.datacenters.items():
            for _ in range(count):
                node = Node(env, node_id, spec.node,
                            rngs.stream(f"disk.{node_id}"))
                self.nodes.append(node)
                self.node_datacenter[node_id] = dc_name
                self._nic_datacenter[id(node.nic)] = dc_name
                node_id += 1
        client = Node(env, node_id, spec.node,
                      rngs.stream(f"disk.{node_id}"))
        self.nodes.append(client)
        self.node_datacenter[node_id] = spec.client_datacenter
        self._nic_datacenter[id(client.nic)] = spec.client_datacenter

        self.network = _GeoNetwork(env, self, rngs.stream("geo.network"))
        self.rpc_count = 0
        #: Requests whose propagated deadline expired before the server
        #: started them (see :class:`repro.cluster.topology.Cluster`).
        self.abandoned_rpcs = 0
        #: Shared RPC-timer pool (see :class:`Cluster`).
        self._timers: dict[float, object] = {}
        self._timer_prune_at = 256

    # -- Cluster API compatibility ----------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def kill(self, node_id: int) -> None:
        self.nodes[node_id].alive = False

    def restart(self, node_id: int) -> None:
        self.nodes[node_id].alive = True

    def partition_datacenter(self, dc_name: str) -> list[int]:
        """Cut a whole datacenter off (kill all its nodes); returns ids."""
        cut = [nid for nid, dc in self.node_datacenter.items()
               if dc == dc_name]
        for node_id in cut:
            self.kill(node_id)
        return cut

    def heal_datacenter(self, dc_name: str) -> None:
        for node_id, dc in self.node_datacenter.items():
            if dc == dc_name:
                self.restart(node_id)

    def datacenter_of(self, node_id: int) -> str:
        return self.node_datacenter[node_id]

    def datacenter_of_nic(self, nic: Nic) -> str:
        return self._nic_datacenter[id(nic)]

    def servers_in(self, dc_name: str) -> list[int]:
        """Server node ids of one datacenter (excludes the client node)."""
        client_id = len(self.nodes) - 1
        return [nid for nid, dc in self.node_datacenter.items()
                if dc == dc_name and nid != client_id]

    # -- RPC (same protocol as Cluster) ---------------------------------

    def _rpc_body(self, src, dst, verb, payload, request_bytes,
                  response_bytes, deadline=None, src_cpu_s=0.0):
        from repro.cluster.topology import Cluster
        return Cluster._rpc_body(self, src, dst, verb, payload,
                                 request_bytes, response_bytes, deadline,
                                 src_cpu_s)

    def call(self, src, dst, verb, payload=None, request_bytes=0,
             response_bytes=0, timeout: Optional[float] = None,
             deadline: Optional[float] = None, src_cpu_s: float = 0.0):
        from repro.cluster.topology import Cluster
        return Cluster.call(self, src, dst, verb, payload, request_bytes,
                            response_bytes, timeout, deadline, src_cpu_s)

    def call_async(self, src, dst, verb, payload=None, request_bytes=0,
                   response_bytes=0, timeout: Optional[float] = None,
                   deadline: Optional[float] = None,
                   src_cpu_s: float = 0.0):
        from repro.cluster.topology import Cluster
        return Cluster.call_async(self, src, dst, verb, payload,
                                  request_bytes, response_bytes, timeout,
                                  deadline, src_cpu_s)

    def _shared_timer(self, wait_s: float, exact: bool = False):
        from repro.cluster.topology import Cluster
        return Cluster._shared_timer(self, wait_s, exact=exact)
