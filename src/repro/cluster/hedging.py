"""Speculative-retry (hedged request) delay policies.

Cassandra 2.0.2 introduced *rapid read protection* (``speculative_retry``
per table): when the primary replica has not answered after a delay, the
coordinator duplicates the read to the next-fastest replica and takes
whichever response lands first.  The delay is either fixed ("50ms") or a
percentile of the table's recent read latency ("99percentile").

:class:`HedgePolicy` models both forms and is shared by the Cassandra
coordinator and the HBase client: callers feed completed-request
latencies into :meth:`observe` and ask :meth:`delay` when to fire the
hedge.  Percentile policies warm up — before ``min_samples``
observations they return ``None`` (no hedging), matching how a fresh
table has no latency history to speculate from.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["HedgePolicy", "parse_hedge_spec"]


def parse_hedge_spec(spec: str) -> tuple[str, float]:
    """Parse a speculative-retry spec string.

    Accepted forms (case-insensitive):

    - ``"50ms"`` — fixed delay in milliseconds → ``("fixed", 0.05)``
    - ``"p99"`` / ``"99percentile"`` — latency percentile →
      ``("percentile", 0.99)``
    """
    text = spec.strip().lower()
    if text.endswith("ms"):
        return ("fixed", float(text[:-2]) / 1000.0)
    if text.startswith("p"):
        value = float(text[1:])
    elif text.endswith("percentile"):
        value = float(text[:-len("percentile")])
    else:
        raise ValueError(
            f"unknown speculative-retry spec {spec!r}; use e.g. "
            f"'50ms', 'p99' or '99percentile'")
    if not 0 < value < 100:
        raise ValueError(f"percentile must be in (0, 100), got {value}")
    return ("percentile", value / 100.0)


class HedgePolicy:
    """When to duplicate a straggling request to another server.

    Parameters
    ----------
    spec:
        ``"NNms"`` (fixed) or ``"pNN"`` / ``"NNpercentile"``.
    window:
        How many recent latencies the percentile form remembers.
    min_samples:
        Percentile policies return ``None`` (no hedge) until this many
        latencies have been observed.
    """

    def __init__(self, spec: str, window: int = 256,
                 min_samples: int = 16) -> None:
        self.spec = spec
        self.kind, self.value = parse_hedge_spec(spec)
        self.window = window
        self.min_samples = min_samples
        self._latencies: list[float] = []
        self._next = 0  # ring-buffer cursor once the window is full
        #: Hedges issued / hedges whose duplicate answered first.
        self.hedges = 0
        self.wins = 0

    def observe(self, latency_s: float) -> None:
        """Record one completed request's latency (percentile history)."""
        if self.kind != "percentile":
            return
        if len(self._latencies) < self.window:
            self._latencies.append(latency_s)
        else:
            self._latencies[self._next] = latency_s
            self._next = (self._next + 1) % self.window
    def delay(self) -> Optional[float]:
        """Seconds to wait before hedging; ``None`` = do not hedge yet."""
        if self.kind == "fixed":
            return self.value
        if len(self._latencies) < self.min_samples:
            return None
        ordered = sorted(self._latencies)
        # Nearest-rank percentile, the same definition Measurements uses.
        rank = max(0, min(len(ordered) - 1,
                          math.ceil(self.value * len(ordered)) - 1))
        return ordered[rank]
