"""Simulated cluster hardware substrate.

Models the paper's testbed: 16 server-class machines in one rack — each
with two Xeon L5640 processors (24 logical cores), 32 GB RAM, one hard
drive and a gigabit ethernet connection — wired through a single rack
switch.  Every database operation consumes simulated CPU time, disk
service time and NIC serialization time on the nodes it touches, so
saturation and queueing delays emerge from contention rather than from
fitted curves.
"""

from repro.cluster.disk import Disk, DiskSpec
from repro.cluster.energy import EnergyMeter, EnergyReport, PowerSpec
from repro.cluster.failure import (FAULT_KINDS, CrashEvent, CrashFault,
                                   DiskDegradeFault, FailureInjector,
                                   FaultSchedule, FaultSpec, FlapFault,
                                   NicDegradeFault, PartitionFault)
from repro.cluster.geo import GeoCluster, GeoSpec
from repro.cluster.nic import Network, NetworkSpec, Nic
from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import Cluster, ClusterSpec, DeadNodeError, RpcTimeout

__all__ = [
    "Cluster",
    "ClusterSpec",
    "CrashEvent",
    "CrashFault",
    "DeadNodeError",
    "Disk",
    "DiskDegradeFault",
    "DiskSpec",
    "EnergyMeter",
    "EnergyReport",
    "FAULT_KINDS",
    "FailureInjector",
    "FaultSchedule",
    "FaultSpec",
    "FlapFault",
    "NicDegradeFault",
    "PartitionFault",
    "GeoCluster",
    "GeoSpec",
    "Network",
    "NetworkSpec",
    "Nic",
    "Node",
    "NodeSpec",
    "PowerSpec",
    "RpcTimeout",
]
