"""Cluster wiring and the RPC transport.

The paper's testbed is 16 machines in one rack; the cluster builds the
nodes, the shared rack fabric, and an RPC layer with the semantics the
database models need:

- request and response each pay NIC serialization + switch latency,
- both sides pay a small fixed CPU cost (kernel + (de)serialization),
- calls to a dead node never produce a response — the caller either
  times out (:class:`RpcTimeout`) or, with no timeout configured, fails
  fast with :class:`DeadNodeError` to avoid deadlocking the simulation,
- an optional **deadline** (absolute simulation time) rides the request
  envelope: a request that *arrives* after its deadline is abandoned
  before the handler runs (the callee computes nothing a caller will
  never read), and the caller observes :class:`DeadlineExceeded` the
  moment the budget runs out.  Handlers that queue behind bounded
  resources receive the deadline too (see the database models) and
  withdraw their queue slot when it expires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.cluster.nic import Network, NetworkSpec
from repro.cluster.node import Node, NodeSpec
from repro.sim.kernel import AnyOf, Environment, Interrupt, Process
from repro.sim.resources import Overloaded
from repro.sim.rng import RngRegistry

__all__ = ["Cluster", "ClusterSpec", "DeadNodeError", "DeadlineExceeded",
           "RpcTimeout"]

#: Sentinel response meaning "the callee was dead; no response will come".
_NO_RESPONSE = object()

#: Sentinel response meaning "the request arrived after its deadline and
#: was abandoned server-side; no useful response exists".
_EXPIRED = object()


class RpcTimeout(Exception):
    """An RPC did not complete within its deadline."""


class DeadlineExceeded(RpcTimeout):
    """The operation's propagated deadline expired before it completed.

    Subclasses :class:`RpcTimeout` so every existing timeout-handling
    path (driver retries, fan-out helpers, error accounting) treats it
    as a timeout — but the distinct type shows up in
    ``errors_by_type`` breakdowns.
    """


class DeadNodeError(Exception):
    """An RPC without a deadline targeted a dead node."""


@dataclass(frozen=True)
class ClusterSpec:
    """Whole-testbed parameters (defaults follow the paper's rack)."""

    #: Total machines, including the one reserved for the YCSB client.
    n_nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    #: Fixed CPU time charged per RPC message on each side (request
    #: handling, serialization, kernel crossings).
    rpc_cpu_s: float = 0.000025
    #: RPC sizes are payload + this request/response envelope.
    envelope_bytes: int = 120


class Cluster:
    """Builds nodes and provides the RPC transport between them."""

    def __init__(self, env: Environment, spec: ClusterSpec,
                 rngs: RngRegistry) -> None:
        self.env = env
        self.spec = spec
        self.rngs = rngs
        self.network = Network(env, spec.node.network, rngs.stream("network"))
        self.nodes: list[Node] = [
            Node(env, i, spec.node, rngs.stream(f"disk.{i}"))
            for i in range(spec.n_nodes)
        ]
        self.rpc_count = 0
        #: Requests that arrived at the callee after their deadline and
        #: were abandoned before the handler ran.
        self.abandoned_rpcs = 0

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def kill(self, node_id: int) -> None:
        """Crash a node: it stops answering RPCs until restarted."""
        self.nodes[node_id].alive = False

    def restart(self, node_id: int) -> None:
        """Bring a crashed node back (state is whatever the DB model kept)."""
        self.nodes[node_id].alive = True

    # -- RPC -----------------------------------------------------------

    def _rpc_body(self, src: Node, dst: Node, verb: str, payload: Any,
                  request_bytes: int, response_bytes: int,
                  deadline: Optional[float] = None) -> Generator:
        envelope = self.spec.envelope_bytes
        yield from src.cpu_work(self.spec.rpc_cpu_s)
        yield from self.network.transit(src.nic, dst.nic,
                                        request_bytes + envelope)
        if not dst.alive:
            return _NO_RESPONSE
        if deadline is not None and self.env.now >= deadline:
            # Deadline propagation: the budget is already spent when the
            # request arrives, so the callee drops it without computing a
            # result nobody will read (the caller's own timer fires).
            self.abandoned_rpcs += 1
            return _EXPIRED
        yield from dst.cpu_work(self.spec.rpc_cpu_s)
        handler = dst.handlers.get(verb)
        if handler is None:
            raise LookupError(f"node {dst.node_id} has no handler for {verb!r}")
        result = yield from handler(payload)
        if not dst.alive:
            return _NO_RESPONSE
        yield from self.network.transit(dst.nic, src.nic,
                                        response_bytes + envelope)
        yield from src.cpu_work(self.spec.rpc_cpu_s)
        return result

    def call(self, src: Node, dst: Node, verb: str, payload: Any = None,
             request_bytes: int = 0, response_bytes: int = 0,
             timeout: Optional[float] = None,
             deadline: Optional[float] = None) -> Generator:
        """Perform an RPC from the calling process (``yield from`` this).

        Returns the handler's return value.  Raises :class:`RpcTimeout`
        when ``timeout`` elapses first, :class:`DeadlineExceeded` when the
        absolute ``deadline`` passes first, or :class:`DeadNodeError`
        when the callee is dead and neither bound was given.
        """
        self.rpc_count += 1
        if deadline is not None and self.env.now >= deadline:
            raise DeadlineExceeded(
                f"rpc {verb!r} to node {dst.node_id}: deadline already "
                f"passed before send")
        wait_s = timeout
        deadline_first = False
        if deadline is not None:
            remaining = deadline - self.env.now
            if wait_s is None or remaining < wait_s:
                wait_s = remaining
                deadline_first = True
        if wait_s is None:
            result = yield from self._rpc_body(
                src, dst, verb, payload, request_bytes, response_bytes)
            if result is _NO_RESPONSE:
                raise DeadNodeError(
                    f"rpc {verb!r} to dead node {dst.node_id} (no timeout set)")
            return result
        body = self.env.process(
            self._rpc_body(src, dst, verb, payload, request_bytes,
                           response_bytes, deadline=deadline),
            name=f"rpc-{verb}-{dst.node_id}")
        timer = self.env.timeout(wait_s)
        race = AnyOf(self.env, [body, timer])
        try:
            outcome = yield race
        except Interrupt:
            # Hedge-loser cancellation: the caller abandoned this RPC.
            # The in-flight body keeps running server-side (cancellation
            # does not reach over the wire), so defuse both the race and
            # the body lest a late handler failure crash the kernel.
            race.defuse()
            body.defuse()
            raise
        if body in outcome and outcome[body] is not _NO_RESPONSE \
                and outcome[body] is not _EXPIRED:
            return outcome[body]
        if body in outcome:
            # Dead callee or server-side abandonment: the caller still
            # waits out its own timer before giving up.
            yield timer
        if deadline_first:
            raise DeadlineExceeded(
                f"rpc {verb!r} to node {dst.node_id} exceeded its deadline")
        raise RpcTimeout(f"rpc {verb!r} to node {dst.node_id} timed out "
                         f"after {timeout}s")

    def call_async(self, src: Node, dst: Node, verb: str, payload: Any = None,
                   request_bytes: int = 0, response_bytes: int = 0,
                   timeout: Optional[float] = None,
                   deadline: Optional[float] = None) -> Process:
        """Like :meth:`call` but returns a :class:`Process` to wait on.

        Use for fan-out:  fire several calls, then ``yield AllOf(...)`` /
        ``AnyOf(...)`` over the returned processes.
        """
        return self.env.process(
            self._call_catching(src, dst, verb, payload, request_bytes,
                                response_bytes, timeout, deadline),
            name=f"rpc-async-{verb}-{dst.node_id}")

    def _call_catching(self, src: Node, dst: Node, verb: str, payload: Any,
                       request_bytes: int, response_bytes: int,
                       timeout: Optional[float],
                       deadline: Optional[float] = None) -> Generator:
        # Fan-out helpers must not fail the whole condition when a single
        # callee is dead, slow, out of budget or shedding load, so convert
        # failures into values.
        try:
            result = yield from self.call(src, dst, verb, payload,
                                          request_bytes, response_bytes,
                                          timeout, deadline)
            return result
        except (RpcTimeout, DeadNodeError, Overloaded, Interrupt) as exc:
            return exc
