"""Cluster wiring and the RPC transport.

The paper's testbed is 16 machines in one rack; the cluster builds the
nodes, the shared rack fabric, and an RPC layer with the semantics the
database models need:

- request and response each pay NIC serialization + switch latency,
- both sides pay a small fixed CPU cost (kernel + (de)serialization),
- calls to a dead node never produce a response — the caller either
  times out (:class:`RpcTimeout`) or, with no timeout configured, fails
  fast with :class:`DeadNodeError` to avoid deadlocking the simulation,
- an optional **deadline** (absolute simulation time) rides the request
  envelope: a request that *arrives* after its deadline is abandoned
  before the handler runs (the callee computes nothing a caller will
  never read), and the caller observes :class:`DeadlineExceeded` the
  moment the budget runs out.  Handlers that queue behind bounded
  resources receive the deadline too (see the database models) and
  withdraw their queue slot when it expires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Any, Generator, Optional

from repro.cluster.nic import Network, NetworkSpec
from repro.cluster.node import Node, NodeSpec
from repro.sim.kernel import (URGENT, Environment, Event, Interrupt, Timeout,
                              _PENDING)
from repro.sim.resources import Overloaded
from repro.sim.rng import RngRegistry

__all__ = ["AsyncCall", "Cluster", "ClusterSpec", "DeadNodeError",
           "DeadlineExceeded", "DEFAULT_CLIENT_OVERHEAD_S", "RpcTimeout"]

#: Client-side CPU per operation (driver serialization, thread wake-up).
#: The paper's methodology section is explicit that client-side latency
#: exists and must be controlled by thread-count choice; charging it on
#: the client node makes the single client machine a realistic, shared
#: resource (the paper dedicates one of the 16 machines to YCSB).  The
#: database clients fold it into the request leg's core reservation via
#: ``call(..., src_cpu_s=...)`` so it costs no extra kernel event.
#: Defined here (not in ``repro.ycsb.client``) because both database
#: driver packages need it and importing from ycsb would be circular.
DEFAULT_CLIENT_OVERHEAD_S = 2e-4

#: Sentinel response meaning "the callee was dead; no response will come".
_NO_RESPONSE = object()

#: Sentinel response meaning "the request arrived after its deadline and
#: was abandoned server-side; no useful response exists".
_EXPIRED = object()

#: Interrupt cause used by the shared RPC timer to distinguish its own
#: expiry from an external (hedge-loser) cancellation.
_TIMED_OUT = object()


class RpcTimeout(Exception):
    """An RPC did not complete within its deadline."""


class DeadlineExceeded(RpcTimeout):
    """The operation's propagated deadline expired before it completed.

    Subclasses :class:`RpcTimeout` so every existing timeout-handling
    path (driver retries, fan-out helpers, error accounting) treats it
    as a timeout — but the distinct type shows up in
    ``errors_by_type`` breakdowns.
    """


class DeadNodeError(Exception):
    """An RPC without a deadline targeted a dead node."""


class AsyncCall(Event):
    """Completion event of a fire-and-forget RPC (:meth:`Cluster.call_async`).

    Always *succeeds*; failures arrive as exception **values** — the
    fan-out convention, so a condition over many replicas never crashes
    on one slow callee: :class:`RpcTimeout`/:class:`DeadlineExceeded`
    when the timer wins, :class:`~repro.sim.resources.Overloaded` when
    the callee shed the request, :class:`~repro.sim.kernel.Interrupt`
    when the caller cancelled (hedge loser).  The body process keeps
    running server-side in every case — cancellation does not reach over
    the wire — which is what lets late replica writes land and keep the
    staleness/hinted-handoff semantics honest.

    Completion is settled *inline* from the body's (or the shared
    timer's) dispatch, so the result itself never costs a queue event.
    """

    __slots__ = ("proc",)

    def __init__(self, env: Environment, proc: Any) -> None:
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        #: The underlying RPC body process (``None`` for a call that
        #: failed before send, e.g. a pre-spent deadline).
        self.proc = proc

    @property
    def is_alive(self) -> bool:
        """True while the caller-side wait is still undecided."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Cancel the caller-side wait; the RPC drains server-side.

        Mirrors :meth:`~repro.sim.kernel.Process.interrupt` delivery:
        the result triggers through the queue (urgently), never inline —
        the interrupter is mid-execution and its waiters must not run
        inside its frame.
        """
        if self._value is not _PENDING:
            return
        if self.proc is not None:
            # Late body outcomes (including failures) are noise now.
            self.proc._defused = True
        self._value = Interrupt(cause)
        self.env._schedule(self, URGENT, 0.0)

    def _settle(self, value: Any) -> None:
        """Complete inline with ``value`` (called from kernel dispatch)."""
        self._value = value
        callbacks = self.callbacks
        self.callbacks = None
        for callback in callbacks:
            callback(self)


@dataclass(frozen=True)
class ClusterSpec:
    """Whole-testbed parameters (defaults follow the paper's rack)."""

    #: Total machines, including the one reserved for the YCSB client.
    n_nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    #: Fixed CPU time charged per RPC message on each side (request
    #: handling, serialization, kernel crossings).
    rpc_cpu_s: float = 0.000025
    #: RPC sizes are payload + this request/response envelope.
    envelope_bytes: int = 120


class Cluster:
    """Builds nodes and provides the RPC transport between them."""

    def __init__(self, env: Environment, spec: ClusterSpec,
                 rngs: RngRegistry) -> None:
        self.env = env
        self.spec = spec
        self.rngs = rngs
        self.network = Network(env, spec.node.network, rngs.stream("network"))
        self.nodes: list[Node] = [
            Node(env, i, spec.node, rngs.stream(f"disk.{i}"))
            for i in range(spec.n_nodes)
        ]
        self.rpc_count = 0
        #: Requests that arrived at the callee after their deadline and
        #: were abandoned before the handler ran.
        self.abandoned_rpcs = 0
        #: Absolute fire time -> pending shared timeout.  A replication
        #: fan-out issues R RPCs at the same instant with the same
        #: timeout; batching them onto one timer event cuts R-1 timer
        #: allocations *and* R-1 queue entries per fan-out.
        self._timers: dict[float, Any] = {}
        self._timer_prune_at = 256

    def _shared_timer(self, wait_s: float, exact: bool = False):
        """A timeout firing ``wait_s`` (or a hair later) from now.

        Timeout events are multi-subscriber, so every RPC racing against
        the same absolute expiry can watch one queue entry.  Entries are
        pruned lazily once fired (the dict stays bounded by the number of
        distinct in-flight expiry times).

        Non-``exact`` expiries are rounded *up* onto a wheel whose tick
        is 1/32 of the requested wait — the hashed-timer-wheel scheme
        production RPC stacks use (Netty/Cassandra tick every ~100 ms),
        where a timeout is a failure detector, never a precision clock.
        Rounding up means a timer is never early, at most ~3% late; in
        exchange every RPC issued within the same tick shares one queue
        entry instead of allocating its own never-to-fire timeout.
        ``exact`` is for deadline-driven waits, where the remaining
        budget must not be silently extended.
        """
        fire_at = self.env.now + wait_s
        if not exact:
            tick = wait_s * 0.03125
            fire_at = ceil(fire_at / tick) * tick
        timer = self._timers.get(fire_at)
        if timer is None or timer.callbacks is None:
            timer = self.env.timeout(fire_at - self.env.now)
            self._timers[fire_at] = timer
            if len(self._timers) > self._timer_prune_at:
                # Amortized O(1): double the threshold relative to the
                # live set so the rebuild cost stays a vanishing
                # fraction of inserts.
                self._timers = {t: e for t, e in self._timers.items()
                                if e.callbacks is not None}
                self._timer_prune_at = max(256, 2 * len(self._timers))
        return timer

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def kill(self, node_id: int) -> None:
        """Crash a node: it stops answering RPCs until restarted."""
        self.nodes[node_id].alive = False

    def restart(self, node_id: int) -> None:
        """Bring a crashed node back (state is whatever the DB model kept)."""
        self.nodes[node_id].alive = True

    # -- RPC -----------------------------------------------------------

    def _rpc_body(self, src: Node, dst: Node, verb: str, payload: Any,
                  request_bytes: int, response_bytes: int,
                  deadline: Optional[float] = None,
                  src_cpu_s: float = 0.0) -> Generator:
        """One RPC round trip, as a pipeline of stage reservations.

        Each leg (caller CPU, egress serialization, switch hop, ingress
        serialization, callee CPU) is booked up front against the
        busy-until accumulators and collapsed into ONE timeout per
        direction — versus the seven queue events the step-by-step
        version cost per message.  Booking a downstream stage at the
        upstream stage's completion time is *optimistic reservation*: a
        message starting later but reaching a shared stage earlier keeps
        FIFO order by reservation, not by arrival — a standard
        fast-simulator tradeoff that is exact whenever stages are
        uncontended and microseconds off otherwise.  Liveness and
        deadline checks happen when the request reaches the handler
        (previously: on wire arrival, a few tens of microseconds
        earlier).
        """
        env = self.env
        spec = self.spec
        network = self.network
        rpc_cpu = spec.rpc_cpu_s
        size = request_bytes + spec.envelope_bytes
        network.messages += 1
        # ``src_cpu_s`` folds the caller's own pre-request CPU charge
        # (driver bookkeeping) into the same core reservation as the
        # request serialization — one timeout instead of two on every
        # client-issued operation.
        cpu_done = src.reserve_cpu(src_cpu_s + rpc_cpu)
        arrival = (src.nic.reserve_egress(size, at=cpu_done)
                   + network.sample_latency(src.nic, dst.nic, size))
        handler_at = dst.reserve_cpu(
            rpc_cpu, at=dst.nic.reserve_ingress(size, at=arrival))
        now = env._now
        if handler_at > now:
            yield Timeout(env, handler_at - now)
        if not dst.alive:
            return _NO_RESPONSE
        if deadline is not None and env._now >= deadline:
            # Deadline propagation: the budget is already spent when the
            # request arrives, so the callee drops it without computing a
            # result nobody will read (the caller's own timer fires).
            self.abandoned_rpcs += 1
            return _EXPIRED
        handler = dst.handlers.get(verb)
        if handler is None:
            raise LookupError(f"node {dst.node_id} has no handler for {verb!r}")
        result = yield from handler(payload)
        if not dst.alive:
            return _NO_RESPONSE
        size = response_bytes + spec.envelope_bytes
        network.messages += 1
        back = (dst.nic.reserve_egress(size)
                + network.sample_latency(dst.nic, src.nic, size))
        done = src.reserve_cpu(rpc_cpu, at=src.nic.reserve_ingress(size,
                                                                   at=back))
        now = env._now
        if done > now:
            yield Timeout(env, done - now)
        return result

    def call(self, src: Node, dst: Node, verb: str, payload: Any = None,
             request_bytes: int = 0, response_bytes: int = 0,
             timeout: Optional[float] = None,
             deadline: Optional[float] = None,
             src_cpu_s: float = 0.0) -> Generator:
        """Perform an RPC from the calling process (``yield from`` this).

        Returns the handler's return value.  Raises :class:`RpcTimeout`
        when ``timeout`` elapses first, :class:`DeadlineExceeded` when the
        absolute ``deadline`` passes first, or :class:`DeadNodeError`
        when the callee is dead and neither bound was given.
        ``src_cpu_s`` is extra caller-side CPU charged ahead of the
        request serialization (see :meth:`_rpc_body`).
        """
        self.rpc_count += 1
        if deadline is not None and self.env.now >= deadline:
            raise DeadlineExceeded(
                f"rpc {verb!r} to node {dst.node_id}: deadline already "
                f"passed before send")
        wait_s = timeout
        deadline_first = False
        if deadline is not None:
            remaining = deadline - self.env.now
            if wait_s is None or remaining < wait_s:
                wait_s = remaining
                deadline_first = True
        if wait_s is None:
            result = yield from self._rpc_body(
                src, dst, verb, payload, request_bytes, response_bytes,
                src_cpu_s=src_cpu_s)
            if result is _NO_RESPONSE:
                raise DeadNodeError(
                    f"rpc {verb!r} to dead node {dst.node_id} (no timeout set)")
            return result
        # Static name: an f-string per RPC is measurable at stress scale.
        env = self.env
        body = env.process(
            self._rpc_body(src, dst, verb, payload, request_bytes,
                           response_bytes, deadline=deadline,
                           src_cpu_s=src_cpu_s),
            name=verb, eager=True)
        # Instead of an AnyOf race (a condition allocation plus an extra
        # queue event on every RPC), wait on the body directly and let
        # the shared timer interrupt this process if it fires while the
        # body is still the wait target.  The `_target is body` guard
        # disarms the timer automatically the moment the caller moves on
        # (completion, interruption or termination).
        timer = self._shared_timer(wait_s, exact=deadline_first)
        caller = env.active_process

        def _expire(_timer: Any, caller: Any = caller, body: Any = body) -> None:
            if caller._target is body:
                # Guarded delivery: with a propagated deadline the body
                # can fail (server-side DeadlineExceeded) at the *same*
                # timestamp this timer fires — the caller then moves on
                # (e.g. into a retry backoff) before the urgent
                # interrupt lands, and an unconditional interrupt would
                # crash whatever it is doing now.
                caller.interrupt(_TIMED_OUT, if_waiting_on=body)

        timer.callbacks.append(_expire)
        try:
            result = yield body
        except Interrupt as exc:
            # The body keeps running server-side either way (cancellation
            # does not reach over the wire), so defuse it lest a late
            # handler failure crash the kernel.
            body.defuse()
            if exc.cause is not _TIMED_OUT:
                # Hedge-loser cancellation: the caller abandoned this RPC.
                raise
            if deadline_first:
                raise DeadlineExceeded(
                    f"rpc {verb!r} to node {dst.node_id} exceeded its "
                    f"deadline")
            raise RpcTimeout(f"rpc {verb!r} to node {dst.node_id} timed "
                             f"out after {timeout}s")
        if result is not _NO_RESPONSE and result is not _EXPIRED:
            return result
        # Dead callee or server-side abandonment: the caller still waits
        # out its own timer before giving up.
        yield timer
        if deadline_first:
            raise DeadlineExceeded(
                f"rpc {verb!r} to node {dst.node_id} exceeded its deadline")
        raise RpcTimeout(f"rpc {verb!r} to node {dst.node_id} timed out "
                         f"after {timeout}s")

    def call_async(self, src: Node, dst: Node, verb: str, payload: Any = None,
                   request_bytes: int = 0, response_bytes: int = 0,
                   timeout: Optional[float] = None,
                   deadline: Optional[float] = None,
                   src_cpu_s: float = 0.0) -> AsyncCall:
        """Like :meth:`call` but returns an :class:`AsyncCall` to wait on.

        Use for fan-out: fire several calls, then ``yield AllOf(...)`` /
        ``AnyOf(...)`` over the returned events.  Failures become
        exception *values*, never raises, so one dead or shedding callee
        cannot crash the whole condition.  Costs a single process (the
        RPC body) per call — the timeout race and the failure-to-value
        conversion live in callbacks, not in a wrapper process.
        """
        self.rpc_count += 1
        env = self.env
        wait_s = timeout
        deadline_first = False
        if deadline is not None:
            remaining = deadline - env._now
            if remaining <= 0:
                result = AsyncCall(env, None)
                result._value = DeadlineExceeded(
                    f"rpc {verb!r} to node {dst.node_id}: deadline already "
                    f"passed before send")
                result.callbacks = None
                return result
            if wait_s is None or remaining < wait_s:
                wait_s = remaining
                deadline_first = True
        body = env.process(
            self._rpc_body(src, dst, verb, payload, request_bytes,
                           response_bytes, deadline=deadline,
                           src_cpu_s=src_cpu_s),
            name=verb, eager=True)
        result = AsyncCall(env, body)
        if wait_s is not None:
            timer = self._shared_timer(wait_s, exact=deadline_first)

            def _expire(_timer: Any) -> None:
                if result._value is not _PENDING:
                    return
                body._defused = True
                if deadline_first:
                    result._settle(DeadlineExceeded(
                        f"rpc {verb!r} to node {dst.node_id} exceeded its "
                        f"deadline"))
                else:
                    result._settle(RpcTimeout(
                        f"rpc {verb!r} to node {dst.node_id} timed out "
                        f"after {timeout}s"))

            timer.callbacks.append(_expire)
        else:
            timer = None

        def _finish(_body: Any) -> None:
            if result._value is not _PENDING:
                # Timed out or cancelled; the late outcome is noise.
                if not _body._ok:
                    _body._defused = True
                return
            value = _body._value
            if _body._ok:
                if value is _NO_RESPONSE or value is _EXPIRED:
                    # Dead callee or server-side abandonment: the caller
                    # still waits out its own timer (matches call()).
                    if timer is None:
                        result._settle(DeadNodeError(
                            f"rpc {verb!r} to dead node {dst.node_id} "
                            f"(no timeout set)"))
                    return
                result._settle(value)
            elif isinstance(value, (RpcTimeout, DeadNodeError, Overloaded,
                                    Interrupt)):
                _body._defused = True
                result._settle(value)
            elif result.callbacks:
                # Unexpected failure (e.g. a replica process crashing
                # mid-request): propagate as a *failure* of the result,
                # so waiters re-raise it and fan-out conditions defuse
                # it — exactly what the old wrapper process did.
                _body._defused = True
                result._ok = False
                result._settle(value)
            # No watchers: stay armed so the kernel's unhandled-failure
            # check crashes loudly on genuine bugs.

        body.callbacks.append(_finish)
        return result
