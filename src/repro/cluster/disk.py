"""Hard-drive model.

A single spindle served FIFO with priorities.  Three access patterns
matter to the databases built on top:

- **random read** — seek + half-rotation + transfer.  This is the HFile /
  SSTable block read path when the block cache misses.
- **sequential read/write** — transfer only (plus a small track-switch
  settle).  This is the compaction and flush path.
- **buffered append** — WAL / commit-log appends go to the OS page cache
  and cost essentially no disk time; a background flusher writes the
  accumulated dirty bytes sequentially.  This is the mechanism behind the
  paper's finding F2 (HBase write latency flat in the replication factor):
  the HDFS pipeline acks from memory.

Foreground requests (reads) can be prioritized over background work
(flushes, compactions, read-repair writes) via the ``priority`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.kernel import Environment
from repro.sim.resources import PriorityResource

__all__ = ["Disk", "DiskSpec", "FOREGROUND", "BACKGROUND"]

#: Priority for latency-critical accesses (client reads).
FOREGROUND = 0
#: Priority for asynchronous work (flush, compaction, repair).
BACKGROUND = 10


@dataclass(frozen=True)
class DiskSpec:
    """Service-time parameters for a 7.2k-rpm server hard drive."""

    #: Average seek time for a random access (seconds).
    avg_seek_s: float = 0.004
    #: Full platter rotation period; average rotational delay is half.
    rotation_s: float = 0.00833  # 7200 rpm
    #: Sequential transfer bandwidth (bytes/second).
    transfer_bps: float = 140e6
    #: Small settle time charged to sequential accesses (track switches).
    sequential_overhead_s: float = 0.0003
    #: Multiplicative jitter bound: service times are scaled by a factor
    #: drawn uniformly from [1 - jitter, 1 + jitter].
    jitter: float = 0.15

    def random_access_time(self, size: int) -> float:
        """Mean service time of a random read/write of ``size`` bytes."""
        return self.avg_seek_s + self.rotation_s / 2 + size / self.transfer_bps

    def sequential_access_time(self, size: int) -> float:
        """Mean service time of a sequential read/write of ``size`` bytes."""
        return self.sequential_overhead_s + size / self.transfer_bps


class Disk:
    """One spindle: a priority queue of accesses plus a dirty-page buffer."""

    def __init__(self, env: Environment, spec: DiskSpec, rng,
                 flush_interval_s: float = 1.0) -> None:
        self.env = env
        self.spec = spec
        self._rng = rng
        self._spindle = PriorityResource(env, capacity=1)
        #: Bytes appended through :meth:`append_buffered` not yet on platter.
        self.dirty_bytes = 0
        #: Lifetime counters (for tests and utilization reports).
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0
        #: The owning node's power-state machine (shared instance) when
        #: power management is on; a parked spindle must spin up before
        #: serving, charged as extra access latency.
        self.power = None
        #: Fault-injection hook: service-time multiplier (>= 1).  A
        #: gray-failing disk serves every access, just ``slowdown``-times
        #: slower (see :class:`repro.cluster.failure.DiskDegradeFault`).
        self.slowdown = 1.0
        self._flush_interval_s = flush_interval_s
        self._flush_kick = None
        env.process(self._flusher(), name="disk-flusher")

    # -- internal ------------------------------------------------------

    def _jittered(self, mean: float) -> float:
        j = self.spec.jitter
        return mean * self._rng.uniform(1.0 - j, 1.0 + j) if j else mean

    def _access(self, service_time: float, priority: int) -> Generator:
        with self._spindle.request(priority=priority) as req:
            yield req
            penalty = 0.0
            if self.power is not None:
                now = self.env._now
                penalty = self.power.wake_for_work(now) - now
            t = self._jittered(service_time) * self.slowdown
            # Spin-up waits at baseline draw; only real service is
            # priced at the spindle's active watts.
            self.busy_time += t
            yield self.env.timeout(penalty + t)
            if self.power is not None:
                self.power.note_busy(self.env._now)

    # -- public API ------------------------------------------------------

    def read(self, size: int, sequential: bool = False,
             priority: int = FOREGROUND) -> Generator:
        """Read ``size`` bytes from the platter (a simulation process)."""
        self.bytes_read += size
        mean = (self.spec.sequential_access_time(size) if sequential
                else self.spec.random_access_time(size))
        yield from self._access(mean, priority)

    def write(self, size: int, sequential: bool = True,
              priority: int = BACKGROUND) -> Generator:
        """Synchronously write ``size`` bytes to the platter."""
        self.bytes_written += size
        mean = (self.spec.sequential_access_time(size) if sequential
                else self.spec.random_access_time(size))
        yield from self._access(mean, priority)

    def append_buffered(self, size: int) -> None:
        """Append ``size`` bytes to the page cache (no disk time now).

        The background flusher periodically drains the dirty bytes with a
        sequential write, so sustained append traffic does consume disk
        bandwidth — it just does not sit on any request's latency path.
        """
        self.dirty_bytes += size
        if self._flush_kick is not None and not self._flush_kick.triggered:
            self._flush_kick.succeed()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the spindle spent busy."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def _flusher(self) -> Generator:
        from repro.sim.kernel import Event
        while True:
            if not self.dirty_bytes:
                # Park until the next buffered append — an idle disk must
                # not keep the event queue alive forever.
                self._flush_kick = Event(self.env)
                yield self._flush_kick
                self._flush_kick = None
            yield self.env.timeout(self._flush_interval_s)
            if self.dirty_bytes:
                size, self.dirty_bytes = self.dirty_bytes, 0
                self.bytes_written += size
                yield from self._access(
                    self.spec.sequential_access_time(size), BACKGROUND)
