"""Shared-resource primitives for the simulation kernel.

- :class:`Resource` — ``capacity`` identical slots with a FIFO wait queue
  (models disk queues, CPU cores, RPC handler pools).
- :class:`PriorityResource` — like :class:`Resource` but the wait queue is
  ordered by priority (models foreground vs background I/O).
- :class:`BoundedResource` — a :class:`Resource` whose wait queue has a
  maximum depth; requests beyond it are rejected immediately with
  :class:`Overloaded` (models bounded server queues + load shedding).
- :class:`Store` — an unbounded-or-bounded FIFO buffer of items (models
  mailboxes and RPC channels).
- :class:`Container` — a continuous level with put/get amounts (models
  memory budgets such as memtable thresholds).

All waiting is expressed through events, so processes simply ``yield`` the
returned request:

    with resource.request() as req:
        yield req
        yield env.timeout(service_time)

Cancelling a queued request (deadline expiry, hedged-request loser) is a
*lazy* withdrawal: the request is flagged and skipped when it surfaces
from the heap, so cancellation is O(1) no matter how deep the queue —
and :attr:`Resource.queue_len` excludes those ghosts so shed decisions
and queue statistics only ever see live waiters.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from repro.sim.kernel import Environment, Event, SimulationError, _PENDING

__all__ = ["BoundedResource", "Container", "Overloaded", "PriorityResource",
           "Request", "Resource", "Store"]


class Overloaded(Exception):
    """A bounded queue rejected a request (load shed, not a timeout).

    Raised synchronously by :meth:`BoundedResource.request` so the caller
    sheds *before* any work or waiting happens — overload surfaces as an
    explicit fast error instead of unbounded queueing latency.
    """


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot.

    Usable as a context manager: leaving the ``with`` block releases the
    slot (or cancels the claim if it was never granted).
    """

    __slots__ = ("resource", "priority", "key", "cancelled")

    def __init__(self, resource: "Resource", priority: int = 0,
                 granted: bool = False) -> None:
        # Requests are allocated on every resource claim; write the Event
        # slots directly (no super() chain), and when the claim is being
        # granted synchronously skip the callbacks-list allocation too.
        self.env = resource.env
        self.callbacks = None if granted else []
        self._value = None if granted else _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.priority = priority
        #: True once the claim was withdrawn while still queued (lazy
        #: deletion: the heap entry is skipped, not removed).
        self.cancelled = False
        resource._seq += 1
        self.key = (priority, resource._seq)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a claim that has not been granted yet."""
        self.resource.release(self)


class Resource:
    """``capacity`` identical slots with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Requests currently holding a slot.
        self.users: list[Request] = []
        #: Requests waiting for a slot, as a heap of (key, request).
        self._waiting: list[tuple[tuple[int, int], Request]] = []
        #: Cancelled requests still sitting in the heap (lazy deletion).
        self._ghosts = 0
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue_len(self) -> int:
        """Number of *live* requests waiting for a slot.

        Lazily-deleted (cancelled) waiters still occupy heap entries but
        are excluded here, so admission decisions and queue statistics
        never count ghosts.
        """
        return len(self._waiting) - self._ghosts

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event triggers when granted.

        An uncontended claim is granted *synchronously*: the returned
        request is already processed, so a process yielding it resumes
        inline instead of paying a queue round-trip (the dominant cost
        of ``cpu_work``/NIC claims at stress-cell scale).  Contended
        claims still trigger through the queue when a slot frees up.
        """
        granted = len(self.users) < self.capacity
        req = Request(self, priority, granted)
        if granted:
            self.users.append(req)
        else:
            heapq.heappush(self._waiting, (req.key, req))
        return req

    def release(self, request: Request) -> None:
        """Return ``request``'s slot (or withdraw it from the queue).

        Withdrawing a queued request is O(1): the request is flagged
        cancelled and skipped when the heap surfaces it.
        """
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif not request.cancelled and not request.triggered:
            request.cancelled = True
            self._ghosts += 1

    def _grant_next(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            _, req = heapq.heappop(self._waiting)
            if req.cancelled:
                self._ghosts -= 1
                continue
            if req.triggered:
                continue
            self.users.append(req)
            req.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority.

    Lower ``priority`` values are served first; ties are FIFO.
    """

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; lower ``priority`` values are served first."""
        return super().request(priority=priority)


class BoundedResource(Resource):
    """A :class:`Resource` with a bounded wait queue and load shedding.

    When every slot is busy *and* ``max_queue`` live requests are already
    waiting, :meth:`request` raises :class:`Overloaded` synchronously —
    the request never enters the system.  This is the server-side bounded
    queue that turns overload into explicit errors instead of unbounded
    latency; ``shed`` counts the rejections.
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 max_queue: int = 0) -> None:
        if max_queue < 0:
            raise SimulationError(f"max_queue must be >= 0, got {max_queue}")
        super().__init__(env, capacity)
        self.max_queue = max_queue
        #: Requests rejected because the queue was full.
        self.shed = 0

    def request(self, priority: int = 0) -> Request:
        """Claim a slot, or raise :class:`Overloaded` if the queue is full."""
        if len(self.users) >= self.capacity \
                and self.queue_len >= self.max_queue:
            self.shed += 1
            raise Overloaded(
                f"queue full ({self.queue_len} waiting, "
                f"{self.capacity} slots busy)")
        return super().request(priority=priority)


class StorePut(Event):
    """A pending put: triggers once its item is accepted by the store."""

    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any) -> None:
        super().__init__(env)
        self.item = item


class Store:
    """A FIFO buffer of items with optional capacity.

    ``put(item)`` returns an event that triggers once the item is in the
    buffer (immediately unless the store is full); ``get()`` returns an
    event that triggers with the oldest item once one is available.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[StorePut] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Offer ``item``; triggers once buffered (immediately unless full).

        Like :meth:`Resource.request`, the uncontended path completes
        synchronously (the returned event is already processed).
        """
        event = StorePut(self.env, item)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event._value = None
            event.callbacks = None
            self._serve_getters()
        else:
            self._putters.append(event)
        return event

    def get(self) -> Event:
        """Take the oldest item; triggers once one is available.

        The non-empty path completes synchronously (see :meth:`put`).
        """
        event = Event(self.env)
        if self.items:
            event._value = self.items.pop(0)
            event.callbacks = None
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.pop(0)
            if getter.triggered:
                continue
            getter.succeed(self.items.pop(0))

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.pop(0)
            if putter.triggered:
                continue
            self.items.append(putter.item)
            putter.succeed()
            self._serve_getters()


class Container:
    """A continuous level (e.g. bytes of memory) with blocking put/get."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._putters: list[tuple[float, Event]] = []
        self._getters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        """Current amount held by the container."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers once it fits under the capacity."""
        if amount <= 0:
            raise SimulationError(f"put amount must be positive, got {amount}")
        if amount > self.capacity:
            raise SimulationError(f"put amount {amount} exceeds capacity")
        event = Event(self.env)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; triggers once the level covers it."""
        if amount <= 0:
            raise SimulationError(f"get amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self.capacity and not event.triggered:
                    self._putters.pop(0)
                    self._level += amount
                    event.succeed()
                    progressed = True
                elif event.triggered:
                    self._putters.pop(0)
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level and not event.triggered:
                    self._getters.pop(0)
                    self._level -= amount
                    event.succeed()
                    progressed = True
                elif event.triggered:
                    self._getters.pop(0)
                    progressed = True
