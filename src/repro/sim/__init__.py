"""Discrete-event simulation kernel.

A compact, dependency-free, simpy-like kernel: an :class:`Environment`
drives generator-based :class:`Process` coroutines through a time-ordered
event queue.  Processes ``yield`` events (timeouts, other processes,
resource requests, composite conditions) and are resumed when those events
trigger.

The kernel is fully deterministic: given the same seed streams
(:mod:`repro.sim.rng`) and the same process creation order, two runs
produce identical schedules.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.trace import KernelTracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "KernelTracer",
    "PriorityResource",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Store",
    "Timeout",
]
