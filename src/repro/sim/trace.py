"""Kernel event tracing: a digest over the exact event schedule.

The kernel is deterministic by construction — same seed streams, same
process creation order, same schedule.  :class:`KernelTracer` turns that
claim into something checkable: it subscribes to the environment's trace
hook and folds every processed event (time, queue priority, scheduling
sequence number, event type, process name) into an incremental SHA-256.
Two runs are byte-identical replicas iff their digests match.

This is the foundation under the consistency seed explorer's
"minimal reproducing seed" claim (:mod:`repro.consistency.explorer`):
a violation found at seed *s* can be replayed because seed *s* pins the
entire kernel schedule, which the deterministic-replay pin tests verify
against this digest.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.sim.kernel import Environment, Event

__all__ = ["KernelTracer"]


class KernelTracer:
    """Accumulates a SHA-256 over an environment's kernel event schedule.

    The digest is incremental, so tracing a multi-million-event run costs
    O(1) memory; pass ``keep_lines=True`` (tests, debugging) to also
    retain the formatted trace lines.
    """

    def __init__(self, env: Environment, keep_lines: bool = False) -> None:
        if env.trace is not None:
            raise ValueError("environment already has a trace hook")
        self.env = env
        self._sha = hashlib.sha256()
        #: Number of processed events folded into the digest so far.
        self.events = 0
        self.lines: Optional[list[str]] = [] if keep_lines else None
        env.trace = self._record

    def _record(self, now: float, priority: int, seq: int,
                event: Event) -> None:
        # repr() of the float keeps full precision, so two schedules that
        # differ anywhere past the decimal point hash differently.
        line = (f"{now!r}|{priority}|{seq}|{type(event).__name__}"
                f"|{getattr(event, 'name', '')}")
        self._sha.update(line.encode())
        self._sha.update(b"\n")
        self.events += 1
        if self.lines is not None:
            self.lines.append(line)

    def digest(self) -> str:
        """Hex digest of the schedule traced so far (callable repeatedly)."""
        return self._sha.hexdigest()

    def detach(self) -> None:
        """Stop tracing (the digest keeps its current value)."""
        if self.env.trace is self._record:
            self.env.trace = None
