"""Event loop, events and processes for the discrete-event kernel.

The design follows the classic simpy architecture:

- :class:`Event` — a one-shot occurrence with a value (or an exception) and
  a list of callbacks.  Events move through three states: *pending* (not
  yet triggered), *triggered* (scheduled on the queue with a value), and
  *processed* (callbacks have run).
- :class:`Timeout` — an event that triggers ``delay`` time units after it
  is created.
- :class:`Process` — wraps a generator; every value the generator yields
  must be an :class:`Event`, and the process resumes when that event is
  processed.  A process is itself an event that triggers when the
  generator returns (its value is the generator's return value).
- :class:`Environment` — owns simulated time and the event queue.

Only the pieces the database models actually need are implemented, but
those pieces are implemented completely (failure propagation, interrupts,
condition events) because the replication protocols rely on them — e.g. a
Cassandra coordinator waits on ``AnyOf(AllOf(acks), timeout)``.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from heapq import heappush
from typing import Any, Callable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Priority for events scheduled urgently (ahead of normal events at the
#: same timestamp).  Used when a process must observe an event before any
#: sibling scheduled "now".
URGENT = 0
NORMAL = 1

_PENDING = object()  # sentinel: event value before the event triggers


class SimulationError(Exception):
    """Raised for kernel misuse (yielding non-events, double triggers...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment this event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks run (with the event as argument) when the event is
        #: processed.  ``None`` once processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        # A failed event whose exception nobody consumed crashes the run;
        # waiting on the event (or calling defuse()) marks it handled.
        self._defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) on the queue."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, NORMAL, env._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have ``exception`` raised at
        its ``yield``.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, NORMAL, env._seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if self._value is not _PENDING:
            return
        self._ok = event._ok
        self._value = event._value
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, NORMAL, env._seq, self))

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- composition -------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    A pending timeout is genuinely *untriggered*: its value lives in
    ``_delayed_value`` until the queue dispatches it (an earlier version
    set ``_value`` eagerly, which made ``triggered`` true from creation
    — so ``env.run(until=env.timeout(10))`` returned immediately at
    ``now=0`` and :meth:`Condition._collect` needed a workaround to keep
    future timeouts out of condition values).
    """

    __slots__ = ("delay", "_delayed_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Timeouts are the most-allocated event by far (every RPC, every
        # think-time, every retry backoff), so skip the super() chain and
        # write the slots directly.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.delay = delay
        self._delayed_value = value
        env._seq += 1
        heappush(env._queue, (env._now + delay, NORMAL, env._seq, self))

    def succeed(self, value: Any = None) -> "Event":
        raise SimulationError("a Timeout fires by itself; it cannot be "
                              "triggered manually")

    def fail(self, exception: BaseException) -> "Event":
        raise SimulationError("a Timeout fires by itself; it cannot be "
                              "failed manually")

    def trigger(self, event: "Event") -> None:
        raise SimulationError("a Timeout fires by itself; it cannot be "
                              "chain-triggered")


class Initialize(Event):
    """Internal event that kicks off a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env._seq += 1
        heappush(env._queue, (env._now, URGENT, env._seq, self))


class Process(Event):
    """Wraps a generator and drives it through the event queue.

    The process is itself an event: it triggers when the generator returns
    (value = return value) or raises (the process fails with the
    exception).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None, eager: bool = False) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None when running
        #: or terminated).
        self._target: Optional[Event] = None
        if not eager:
            Initialize(env, self)
            return
        # Eager start: run the body's first segment inside the creator's
        # frame instead of through an Initialize queue event.  Semantics
        # differ only in intra-timestep ordering (the body runs before
        # the creator's next statement, not after its next yield), so
        # this is opt-in for hot spawn sites that tolerate that drift —
        # it removes one heap event + one dispatch per spawn on paths
        # that create a process per RPC.
        start = Event.__new__(Event)
        start.env = env
        start.callbacks = None
        start._value = None
        start._ok = True
        start._defused = False
        prev = env._active_process
        self._resume(start)
        env._active_process = prev

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None,
                  if_waiting_on: Optional["Event"] = None) -> None:
        """Raise :class:`Interrupt` inside the process at its current yield.

        Interrupting a terminated process is an error; interrupting a
        process that is about to resume anyway is allowed (the interrupt
        wins).

        ``if_waiting_on`` makes delivery conditional: the interrupt is
        dropped silently unless, *at delivery time*, the process is
        still waiting on that exact event (and still alive).  Timeout
        watchdogs need this — between scheduling the interrupt and its
        urgent delivery, the watched event can complete (or fail) at the
        same timestamp and the process move on to an unrelated wait;
        an unconditional interrupt would then land mid-whatever-came-
        next.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver via a broken urgent event so the interrupt arrives
        # before the target event's own callbacks.
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        if if_waiting_on is None:
            interrupt_event.callbacks.append(self._resume)
        else:
            def _deliver(event: "Event", proc: "Process" = self,
                         target: "Event" = if_waiting_on) -> None:
                if not proc.triggered and proc._target is target:
                    proc._resume(event)

            interrupt_event.callbacks.append(_deliver)
        self.env._schedule(interrupt_event, URGENT, 0.0)

    def _finalize(self) -> None:
        """Settle this terminated process inline (no queue round-trip).

        ``_ok``/``_value`` are already set.  Mirrors what the dispatch
        loop would do with the completion event one heap push later —
        waiters run now, at the same simulated time, inside the frame
        that drove the final segment — including the loud-crash check
        for unhandled failures.  Completion is the second queue event
        every process used to cost (after ``Initialize``); on a per-RPC
        process this pair was a third of the stress-cell schedule.
        """
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            raise self._value

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        # If an interrupt already resumed us and we since started waiting
        # on a different event, a stale callback may fire; ignore events
        # that are no longer our target (interrupt events never were).
        # An ignored *failure* must still be defused: this process was a
        # legitimate subscriber, and if it was the only one, an abandoned
        # event that later fail()s would otherwise crash the whole run
        # through :meth:`Environment.step`'s unhandled-failure check.
        if self._target is not None and event is not self._target \
                and not isinstance(event._value, Interrupt):
            if not event._ok:
                event._defused = True
            return
        if self._value is not _PENDING:
            if not event._ok:
                event._defused = True
            return
        env._active_process = self
        generator = self._generator
        send = generator.send
        while True:
            self._target = None
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self._finalize()
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._finalize()
                break

            if next_event.__class__ is not Event \
                    and not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {next_event!r}")
                try:
                    generator.throw(exc)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    self._finalize()
                    break
                except BaseException as exc2:
                    self._ok = False
                    self._value = exc2
                    self._finalize()
                    break
                continue

            if next_event.callbacks is None:
                # Already processed: resume immediately with its value.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            break
        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'dead'}>"


class Condition(Event):
    """Base for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.events = events = list(events)
        self._count = 0
        if not events:
            self.succeed(self._collect())
            return
        check = self._check
        for event in events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _evaluate(self, count: int) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # Only events whose callbacks have run count as "happened" —
        # an event may be triggered (scheduled with a value) but not yet
        # dispatched when the condition completes.
        return {e: e._value for e in self.events
                if e.callbacks is None and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self._ok = False
            self._value = event._value
            self.env._schedule(self, NORMAL, 0.0)
            return
        self._count += 1
        if self._evaluate(self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when *all* constituent events have succeeded."""

    __slots__ = ()

    def _evaluate(self, count: int) -> bool:
        return count == len(self.events)


class AnyOf(Condition):
    """Triggers as soon as *any* constituent event succeeds."""

    __slots__ = ()

    def _evaluate(self, count: int) -> bool:
        return count >= 1


class Environment:
    """Owns simulated time and the time-ordered event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Events actually dispatched (stale queue entries excluded) —
        #: the denominator of every events/sec figure ``repro-bench
        #: perf`` reports.  Deterministic: two replica runs agree.
        self.processed_events = 0
        #: Optional hook called as ``trace(now, priority, seq, event)`` for
        #: every event the loop actually processes (already-processed
        #: queue entries, e.g. condition re-pushes, are not reported).
        #: ``(priority, seq)`` is the queue ordering key, so the call
        #: sequence *is* the kernel's schedule — two runs are
        #: deterministic replicas iff their trace streams are identical
        #: (see :class:`repro.sim.trace.KernelTracer`).
        self.trace: Optional[Callable[[float, int, int, Event], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event owned by this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None,
                eager: bool = False) -> Process:
        """Register ``generator`` as a new process starting "now".

        ``eager=True`` runs the body's first segment inline (see
        :class:`Process`) — same simulated time, different
        intra-timestep ordering; reserve it for hot per-RPC spawns.
        """
        return Process(self, generator, name=name, eager=eager)

    def all_of(self, events: list[Event]) -> AllOf:
        """Condition that triggers when every event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Condition that triggers on the first success."""
        return AnyOf(self, events)

    # -- scheduling / stepping ---------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, priority, seq, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return  # event was already processed (e.g. condition re-push)
        if event._value is _PENDING:
            # A timeout fires now: materialize its delayed value (pending
            # timeouts are the only untriggered events on the queue).
            event._value = event._delayed_value
        self.processed_events += 1
        if self.trace is not None:
            self.trace(self._now, priority, seq, event)
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Unhandled failure: surface it instead of losing it.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a time, or an
        :class:`Event` (run until the event triggers; returns its value).

        The dispatch loop is deliberately flat: :meth:`step` is inlined
        (it remains available for single-stepping) because at stress-cell
        scale the loop runs hundreds of thousands of iterations and the
        method call plus re-reads of ``self._queue``/``self.trace``
        dominate the profile.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) is in the past (now={self._now})")
        queue = self._queue
        pop = heapq.heappop
        processed = self.processed_events
        # Hoisted: installing a tracer mid-run is unsupported (the digest
        # would cover a partial schedule anyway).
        trace = self.trace
        try:
            while queue:
                if stop_event is not None \
                        and stop_event._value is not _PENDING:
                    if not stop_event._ok:
                        stop_event._defused = True
                        raise stop_event._value
                    return stop_event._value
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                # -- inlined step() ------------------------------------
                self._now, priority, seq, event = pop(queue)
                callbacks = event.callbacks
                if callbacks is None:
                    continue  # already processed (e.g. condition re-push)
                event.callbacks = None
                if event._value is _PENDING:
                    # A timeout fires now: materialize its delayed value
                    # (pending timeouts are the only untriggered events
                    # on the queue).
                    event._value = event._delayed_value
                processed += 1
                if trace is not None:
                    trace(self._now, priority, seq, event)
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # Unhandled failure: surface it instead of losing it.
                    raise event._value
        finally:
            self.processed_events = processed
        if stop_event is not None and stop_event.triggered:
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value
        if stop_event is not None:
            raise SimulationError("simulation ended before the awaited event triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
