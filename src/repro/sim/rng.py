"""Named, seeded random-number streams.

Every stochastic component in the simulator (disk service jitter, workload
key choice, read-repair coin flips, ...) draws from its own named stream so
that changing one component's consumption pattern does not perturb the
others.  Streams are derived deterministically from a single experiment
seed, which makes whole experiments reproducible bit-for-bit.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent :class:`random.Random` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("disk.node0")
    >>> b = rngs.stream("workload.keys")
    >>> a is rngs.stream("disk.node0")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            derived = (self.seed * 0x9E3779B97F4A7C15 + zlib.crc32(name.encode())) \
                & 0xFFFFFFFFFFFFFFFF
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per experiment repetition)."""
        derived = (self.seed * 0x9E3779B97F4A7C15 + zlib.crc32(salt.encode())) \
            & 0xFFFFFFFFFFFFFFFF
        return RngRegistry(derived)
