"""Wires a full Cassandra deployment onto a simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Generator, Optional

from repro.cassandra.multidc import NetworkTopologyStrategy, SimpleStrategy
from repro.cassandra.node import CassandraNode
from repro.cassandra.partitioner import TokenRange, TokenRing
from repro.cluster.disk import BACKGROUND
from repro.cluster.topology import Cluster
from repro.keyspace import token_of
from repro.storage.lsm import StorageSpec

__all__ = ["CassandraCluster", "CassandraSpec"]


@dataclass(frozen=True)
class CassandraSpec:
    """Deployment knobs for one experiment cell."""

    #: SimpleStrategy replication factor — the paper's replication knob.
    replication: int = 3
    #: Virtual nodes per physical node (Cassandra 2.0 defaults to 256;
    #: scaled down with everything else — placement statistics are
    #: already uniform at 16).
    vnodes: int = 16
    #: Probability that a read involves all replicas for repair
    #: (Cassandra 2.0's table default, cited by the paper §4.1).
    read_repair_chance: float = 0.1
    #: Paper-faithful foreground reconciliation; False = async ablation.
    blocking_read_repair: bool = True
    storage: StorageSpec = field(default_factory=StorageSpec)
    replica_timeout_s: float = 2.0
    hint_replay_interval_s: float = 1.0
    #: Cassandra 2.0.2 rapid read protection (``speculative_retry``):
    #: ``"NNms"`` or ``"pNN"``/``"NNpercentile"``; ``None`` disables it.
    speculative_retry: Optional[str] = None
    #: Concurrent replica-stage executions per node (concurrent_reads/
    #: concurrent_writes analogue).  Only enforced when
    #: ``max_handler_queue`` is set.
    handler_slots: int = 16
    #: Bounded replica-stage queue depth; requests beyond it are shed
    #: with :class:`~repro.sim.resources.Overloaded`.  ``None`` =
    #: unbounded (the pre-defense behaviour).
    max_handler_queue: Optional[int] = None
    #: Coordinator admission control: max in-flight coordinated ops per
    #: node; ``None`` = unlimited.
    coordinator_max_inflight: Optional[int] = None
    #: Geo deployments: datacenter name -> replicas in that datacenter
    #: (NetworkTopologyStrategy).  ``None`` = SimpleStrategy with
    #: ``replication`` over the whole ring.  Requires a cluster that
    #: reports node datacenters (see :class:`repro.cluster.geo.GeoCluster`).
    replication_per_dc: Optional[dict] = None
    #: Trailing server nodes provisioned but outside the initial ring;
    #: the elasticity campaign bootstraps them at runtime.
    spare_nodes: int = 0
    #: Streaming granularity for bootstrap/decommission transfers.
    stream_chunk_bytes: int = 1 << 20


class CassandraCluster:
    """A Cassandra ring deployed over a :class:`~repro.cluster.topology.Cluster`.

    The last cluster node is reserved for the YCSB client (mirroring the
    paper's 15-server + 1-client layout); every other node joins the ring.
    """

    def __init__(self, cluster: Cluster, spec: CassandraSpec) -> None:
        if len(cluster.nodes) < 2:
            raise ValueError("Cassandra needs at least one server + client node")
        self.cluster = cluster
        self.spec = spec
        # Geo clusters may host several client nodes (one per region);
        # they report the split explicitly.  Single-rack clusters keep
        # the last-node-is-client convention.
        server_ids = getattr(cluster, "server_ids", None)
        if server_ids is not None:
            self.server_nodes = [cluster.node(nid) for nid in server_ids]
            self.client_node = cluster.node(cluster.client_ids[0])
        else:
            self.client_node = cluster.node(len(cluster.nodes) - 1)
            self.server_nodes = cluster.nodes[:-1]
        if not 0 <= spec.spare_nodes < len(self.server_nodes):
            raise ValueError("spare_nodes must leave at least one "
                             "in-service server")
        if spec.spare_nodes and spec.replication_per_dc is not None:
            raise ValueError("spare nodes require SimpleStrategy "
                             "(elasticity is single-ring)")
        members = (self.server_nodes[:len(self.server_nodes)
                                     - spec.spare_nodes]
                   if spec.spare_nodes else self.server_nodes)
        self.ring = TokenRing([n.node_id for n in members],
                              spec.vnodes, cluster.rngs.stream("ring"))
        if spec.replication_per_dc is not None:
            datacenter_of = getattr(cluster, "node_datacenter", None)
            if datacenter_of is None:
                raise ValueError("replication_per_dc needs a geo cluster "
                                 "(one that maps nodes to datacenters)")
            server_dcs = {n.node_id: datacenter_of[n.node_id]
                          for n in self.server_nodes}
            self.placement = NetworkTopologyStrategy(
                self.ring, server_dcs, spec.replication_per_dc)
        else:
            self.placement = SimpleStrategy(self.ring, spec.replication)
        # Spare nodes get no CassandraNode yet: verb handlers register
        # once per node, so the instance is created lazily on first
        # bootstrap and reused across later re-bootstraps.
        self.nodes: dict[int, CassandraNode] = {
            n.node_id: CassandraNode(
                cluster, n, self.ring, spec,
                cluster.rngs.stream(f"cassandra.coord.{n.node_id}"),
                placement=self.placement)
            for n in members
        }
        #: Nodes clients may coordinate through: the ring members.
        #: Bootstrap appends the joiner (new coordinator capacity is
        #: part of scale-out's payoff); decommission removes the leaver.
        self.coordinator_nodes = list(members)
        #: (time, source_node_id, dest_node_id, bytes) per completed
        #: range stream (bootstrap/decommission transfers).
        self.streams: list[tuple[float, int, int, int]] = []

    def replicas_of(self, key: str) -> list[int]:
        """Replica node ids for ``key`` under the configured placement."""
        return self.placement.replicas_for_key(key)

    def total_stats(self) -> dict[str, int]:
        """Aggregate coordinator statistics across the ring."""
        totals: dict[str, int] = {}
        for node in self.nodes.values():
            for stat, count in node.coordinator.stats.items():
                totals[stat] = totals.get(stat, 0) + count
        return totals

    # -- elasticity --------------------------------------------------------

    def _elastic_rng(self):
        rng = getattr(self, "_elastic_rng_stream", None)
        if rng is None:
            # Created on first use so pre-elasticity cells draw exactly
            # the same stream set as before this feature existed.
            rng = self.cluster.rngs.stream("cassandra.elastic")
            self._elastic_rng_stream = rng
        return rng

    def scale_out_candidate(self) -> Optional[int]:
        """The next spare node a scale-out would bootstrap (lowest id)."""
        spares = sorted(n.node_id for n in self.server_nodes
                        if n.node_id not in self.ring.node_ids and n.alive)
        return spares[0] if spares else None

    def scale_in_candidate(self) -> Optional[int]:
        """The node a scale-in would decommission (highest live id), or
        ``None`` when removing one would drop the ring to (or below) RF."""
        if len(self.ring.node_ids) <= self.spec.replication:
            return None
        members = sorted(nid for nid in self.ring.node_ids
                         if self.cluster.node(nid).alive)
        if len(members) <= 1:
            return None
        return members[-1]

    def apply_scale_out(self, node_id: int) -> Generator:
        yield from self.bootstrap(node_id)

    def apply_scale_in(self, node_id: int) -> Generator:
        yield from self.decommission(node_id)

    def bootstrap(self, node_id: int) -> Generator:
        """Live-join ``node_id`` (a sim process): plan on a ring clone,
        double-write the moved arcs, stream their data, then commit.

        While streaming, writes landing in a moved arc are also sent to
        the joiner (pending ranges) and reads keep routing to the old
        replicas — which still hold everything — so no acknowledged
        write is lost across the topology change.
        """
        if self.spec.replication_per_dc is not None:
            raise ValueError("bootstrap requires SimpleStrategy")
        if node_id in self.ring.node_ids:
            raise ValueError(f"node {node_id} is already in the ring")
        if not any(n.node_id == node_id for n in self.server_nodes):
            raise ValueError(f"node {node_id} is not a provisioned server")
        node = self.cluster.node(node_id)
        if not node.alive:
            raise ValueError(f"cannot bootstrap dead node {node_id}")
        if node_id not in self.nodes:
            self.nodes[node_id] = CassandraNode(
                self.cluster, node, self.ring, self.spec,
                self.cluster.rngs.stream(f"cassandra.coord.{node_id}"),
                placement=self.placement)
        target = self.ring.clone()
        moved = target.add_node(node_id, self._elastic_rng(),
                                self.spec.replication)
        yield from self._stream_and_commit(target, moved)
        if all(n.node_id != node_id for n in self.coordinator_nodes):
            self.coordinator_nodes.append(node)
        return node_id

    def decommission(self, node_id: int) -> Generator:
        """Gracefully remove ``node_id`` (a sim process): survivors
        inheriting its arcs double-receive writes while the data streams
        off the leaving node, then the ring commits without it."""
        if self.spec.replication_per_dc is not None:
            raise ValueError("decommission requires SimpleStrategy")
        if node_id not in self.ring.node_ids:
            raise ValueError(f"node {node_id} is not in the ring")
        if len(self.ring.node_ids) <= self.spec.replication:
            raise ValueError("decommission would drop the ring below the "
                             "replication factor")
        target = self.ring.clone()
        moved = target.remove_node(node_id, self.spec.replication)
        yield from self._stream_and_commit(target, moved)
        self.coordinator_nodes = [n for n in self.coordinator_nodes
                                  if n.node_id != node_id]
        return node_id

    def _stream_and_commit(self, target: TokenRing,
                           moved: list[TokenRange]) -> Generator:
        """Stream every moved arc to its gainers, then adopt ``target``.

        The pending double-write window opens before the first byte
        moves and closes only after the ring has switched, so there is
        no instant at which a write can miss both the old and the new
        replica set.  On a mid-stream failure the change is abandoned:
        the old ring stays in force and the pending window closes.
        """
        pending = getattr(self.placement, "pending", None)
        if pending is not None:
            pending.begin(moved)
        try:
            for arc in sorted(moved, key=lambda a: (a.start, a.end)):
                for gainer in arc.gainers:
                    source = self._stream_source(arc, gainer)
                    if source is None:
                        continue
                    yield from self._stream_range(source, gainer, arc)
            self.ring.adopt(target)
        finally:
            if pending is not None:
                pending.end()

    def _stream_source(self, arc: TokenRange,
                       gainer: int) -> Optional[int]:
        """A live old replica of ``arc`` to stream from (never the gainer)."""
        for replica in arc.old_replicas:
            if replica != gainer and replica in self.nodes \
                    and self.cluster.node(replica).alive:
                return replica
        return None

    def _stream_range(self, source_id: int, dest_id: int,
                      arc: TokenRange) -> Generator:
        """Ship one arc's data source -> dest over disks and NICs.

        Sequential BACKGROUND-priority I/O on both ends (real streaming
        is throttled below foreground requests) through the shared
        network, so a transfer contends with serving traffic exactly
        where the hardware would make it contend.
        """
        source, dest = self.nodes[source_id], self.nodes[dest_id]
        entries = [e for e in source.tree.snapshot_entries()
                   if arc.contains(token_of(e[0]))]
        if not entries:
            return
        total = sum(e[3] for e in entries)
        chunk = self.spec.stream_chunk_bytes
        src_node, dst_node = source.node, dest.node
        sent = 0
        while sent < total:
            step = min(chunk, total - sent)
            yield from src_node.disk.read(step, sequential=True,
                                          priority=BACKGROUND)
            yield from self.cluster.network.transit(src_node.nic,
                                                    dst_node.nic, step)
            yield from dst_node.disk.write(step, sequential=True,
                                           priority=BACKGROUND)
            sent += step
        dest.tree.ingest_run(entries)
        self.streams.append((self.cluster.env.now, source_id, dest_id,
                             total))
