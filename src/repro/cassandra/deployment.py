"""Wires a full Cassandra deployment onto a simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Optional

from repro.cassandra.multidc import NetworkTopologyStrategy, SimpleStrategy
from repro.cassandra.node import CassandraNode
from repro.cassandra.partitioner import TokenRing
from repro.cluster.topology import Cluster
from repro.storage.lsm import StorageSpec

__all__ = ["CassandraCluster", "CassandraSpec"]


@dataclass(frozen=True)
class CassandraSpec:
    """Deployment knobs for one experiment cell."""

    #: SimpleStrategy replication factor — the paper's replication knob.
    replication: int = 3
    #: Virtual nodes per physical node (Cassandra 2.0 defaults to 256;
    #: scaled down with everything else — placement statistics are
    #: already uniform at 16).
    vnodes: int = 16
    #: Probability that a read involves all replicas for repair
    #: (Cassandra 2.0's table default, cited by the paper §4.1).
    read_repair_chance: float = 0.1
    #: Paper-faithful foreground reconciliation; False = async ablation.
    blocking_read_repair: bool = True
    storage: StorageSpec = field(default_factory=StorageSpec)
    replica_timeout_s: float = 2.0
    hint_replay_interval_s: float = 1.0
    #: Cassandra 2.0.2 rapid read protection (``speculative_retry``):
    #: ``"NNms"`` or ``"pNN"``/``"NNpercentile"``; ``None`` disables it.
    speculative_retry: Optional[str] = None
    #: Concurrent replica-stage executions per node (concurrent_reads/
    #: concurrent_writes analogue).  Only enforced when
    #: ``max_handler_queue`` is set.
    handler_slots: int = 16
    #: Bounded replica-stage queue depth; requests beyond it are shed
    #: with :class:`~repro.sim.resources.Overloaded`.  ``None`` =
    #: unbounded (the pre-defense behaviour).
    max_handler_queue: Optional[int] = None
    #: Coordinator admission control: max in-flight coordinated ops per
    #: node; ``None`` = unlimited.
    coordinator_max_inflight: Optional[int] = None
    #: Geo deployments: datacenter name -> replicas in that datacenter
    #: (NetworkTopologyStrategy).  ``None`` = SimpleStrategy with
    #: ``replication`` over the whole ring.  Requires a cluster that
    #: reports node datacenters (see :class:`repro.cluster.geo.GeoCluster`).
    replication_per_dc: Optional[dict] = None


class CassandraCluster:
    """A Cassandra ring deployed over a :class:`~repro.cluster.topology.Cluster`.

    The last cluster node is reserved for the YCSB client (mirroring the
    paper's 15-server + 1-client layout); every other node joins the ring.
    """

    def __init__(self, cluster: Cluster, spec: CassandraSpec) -> None:
        if len(cluster.nodes) < 2:
            raise ValueError("Cassandra needs at least one server + client node")
        self.cluster = cluster
        self.spec = spec
        # Geo clusters may host several client nodes (one per region);
        # they report the split explicitly.  Single-rack clusters keep
        # the last-node-is-client convention.
        server_ids = getattr(cluster, "server_ids", None)
        if server_ids is not None:
            self.server_nodes = [cluster.node(nid) for nid in server_ids]
            self.client_node = cluster.node(cluster.client_ids[0])
        else:
            self.client_node = cluster.node(len(cluster.nodes) - 1)
            self.server_nodes = cluster.nodes[:-1]
        self.ring = TokenRing([n.node_id for n in self.server_nodes],
                              spec.vnodes, cluster.rngs.stream("ring"))
        if spec.replication_per_dc is not None:
            datacenter_of = getattr(cluster, "node_datacenter", None)
            if datacenter_of is None:
                raise ValueError("replication_per_dc needs a geo cluster "
                                 "(one that maps nodes to datacenters)")
            server_dcs = {n.node_id: datacenter_of[n.node_id]
                          for n in self.server_nodes}
            self.placement = NetworkTopologyStrategy(
                self.ring, server_dcs, spec.replication_per_dc)
        else:
            self.placement = SimpleStrategy(self.ring, spec.replication)
        self.nodes: dict[int, CassandraNode] = {
            n.node_id: CassandraNode(
                cluster, n, self.ring, spec,
                cluster.rngs.stream(f"cassandra.coord.{n.node_id}"),
                placement=self.placement)
            for n in self.server_nodes
        }

    def replicas_of(self, key: str) -> list[int]:
        """Replica node ids for ``key`` under the configured placement."""
        return self.placement.replicas_for_key(key)

    def total_stats(self) -> dict[str, int]:
        """Aggregate coordinator statistics across the ring."""
        totals: dict[str, int] = {}
        for node in self.nodes.values():
            for stat, count in node.coordinator.stats.items():
                totals[stat] = totals.get(stat, 0) + count
        return totals
