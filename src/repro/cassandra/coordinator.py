"""Per-request coordination: consistency waits and read repair.

Any node coordinates requests for any key (clients round-robin).  The
coordinator forwards writes to every replica and waits for as many acks
as the consistency level demands; reads combine one full data read with
digest reads, widening to *all* replicas when the global read-repair
chance fires.

Read-repair semantics (Cassandra 2.0, the version the paper benchmarks):

- the client response blocks on the **consistency level** — one data read
  plus ``required - 1`` digest reads;
- a digest mismatch *within* that CL-blocking set forces a foreground
  reconcile (full reads, newest-timestamp wins, repair mutations) before
  the response — that is the cost QUORUM pays for recent writes;
- when the global ``read_repair_chance`` fires, the remaining replicas
  are read and reconciled **asynchronously**: no latency coupling, but
  the extra digest reads, full reads and repair mutations consume disk,
  CPU and network — the background burden the paper's §4.1 blames for
  Cassandra's read-latency climb with the replication factor.

``blocking_read_repair=False`` (ablation) moves even the CL-set
reconcile off the latency path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.cassandra.consistency import ConsistencyLevel, UnavailableError
from repro.cassandra.hints import Hint
from repro.sim.kernel import AllOf, Environment, Event, Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cassandra.node import CassandraNode

__all__ = ["Coordinator", "ReadTimeoutError", "WriteTimeoutError", "wait_for_k"]

#: CPU charged on the coordinator per request it coordinates.
_COORD_CPU_S = 1.2e-5


class WriteTimeoutError(Exception):
    """Not enough replica acks arrived before the write timeout."""


class ReadTimeoutError(Exception):
    """Not enough replica responses arrived before the read timeout."""


def wait_for_k(env: Environment, procs: list[Process], k: int,
               failure: Exception) -> Generator:
    """Wait until ``k`` of ``procs`` complete successfully (a process).

    A proc "fails" when it terminated with an Exception *value* (the RPC
    fan-out helpers convert timeouts into values) or when it *raised*
    (e.g. a replica process killed mid-request).  Raised failures are
    defused here: once ``done`` triggers early, the losing procs must not
    crash the whole simulation through
    :meth:`~repro.sim.kernel.Environment.step`'s unhandled-failure check.
    If completion of all procs cannot reach ``k`` successes, ``failure``
    is raised.
    """
    if k <= 0:
        return
    if k > len(procs):
        raise failure
    done = env.event()
    state = {"ok": 0, "finished": 0}

    def check(event: Event) -> None:
        state["finished"] += 1
        if not event.ok:
            event.defuse()
        elif not isinstance(event.value, Exception):
            state["ok"] += 1
        if done.triggered:
            return
        if state["ok"] >= k:
            done.succeed()
        elif state["finished"] == len(procs):
            done.fail(failure)

    for proc in procs:
        if proc.processed:
            check(proc)
        else:
            proc.callbacks.append(check)
    yield done


class Coordinator:
    """Coordination logic bound to one :class:`CassandraNode`."""

    def __init__(self, owner: "CassandraNode", rng) -> None:
        self.owner = owner
        self._rng = rng
        self.stats = {"writes": 0, "reads": 0, "scans": 0,
                      "read_repairs": 0, "repair_mutations": 0,
                      "hints_stored": 0, "background_repairs": 0}

    # -- plumbing --------------------------------------------------------

    @property
    def env(self) -> Environment:
        return self.owner.node.env

    def _replica_mutate(self, replica_id: int, key: str, value, size: int,
                        timestamp: float) -> Process:
        """Send a mutation to one replica (local fast path when self)."""
        owner = self.owner
        if replica_id == owner.node.node_id:
            return self.env.process(
                owner.local_mutate(key, value, size, timestamp),
                name="local-mutate")
        return owner.cluster.call_async(
            owner.node, owner.cluster.node(replica_id), "c.mutate",
            (key, value, size, timestamp), request_bytes=size + 60,
            response_bytes=20, timeout=owner.spec.replica_timeout_s)

    def _replica_read(self, replica_id: int, key: str, expected_bytes: int,
                      digest: bool) -> Process:
        owner = self.owner
        if replica_id == owner.node.node_id:
            gen = (owner.local_read_digest(key) if digest
                   else owner.local_read_data(key))
            return self.env.process(gen, name="local-read")
        verb = "c.read_digest" if digest else "c.read_data"
        return owner.cluster.call_async(
            owner.node, owner.cluster.node(replica_id), verb, key,
            request_bytes=60,
            response_bytes=16 if digest else expected_bytes + 30,
            timeout=owner.spec.replica_timeout_s)

    def _alive_replicas(self, key: str) -> tuple[list[int], int]:
        """(alive replica ids in placement order, configured replication)."""
        replicas = self.owner.placement.replicas_for_key(key)
        alive = [r for r in replicas
                 if self.owner.cluster.node(r).alive]
        return alive, len(replicas)

    def _plan(self, cl: ConsistencyLevel, alive: list[int],
              replication: int) -> tuple[int, list[int], int]:
        """(required acks, read-ordered candidates, ack-pool size).

        For datacenter-local levels the ack count is a quorum/one of the
        *coordinator's datacenter* replicas — only the first
        ``ack_pool`` candidates (the local ones) may satisfy it — and
        local replicas are preferred as read targets, which is what keeps
        geo-reads off the WAN.  On single-DC clusters this degrades to
        the plain levels.
        """
        datacenters = getattr(self.owner.cluster, "node_datacenter", None)
        if not cl.is_datacenter_local or datacenters is None:
            return cl.required(replication), alive, len(alive)
        my_dc = datacenters[self.owner.node.node_id]
        local = [r for r in alive if datacenters.get(r) == my_dc]
        remote = [r for r in alive if datacenters.get(r) != my_dc]
        if not local:
            # No local replicas: fall back to plain semantics.
            return cl.required(replication), alive, len(alive)
        required = cl.required(len(local))
        return required, local + remote, len(local)

    # -- write path -------------------------------------------------------

    def handle_write(self, payload) -> Generator:
        """Coordinate one write: fan out, wait for CL acks."""
        key, value, size, timestamp, cl_name = payload
        cl = ConsistencyLevel(cl_name)
        self.stats["writes"] += 1
        yield from self.owner.node.cpu_work(_COORD_CPU_S)
        alive, replication = self._alive_replicas(key)
        required, ordered, ack_pool = self._plan(cl, alive, replication)
        if len(alive) < required:
            raise UnavailableError(
                f"write {cl.value} needs {required} replicas, "
                f"{len(alive)} alive")
        # Mutations go to every live replica; only the ack wait differs.
        # For LOCAL_* levels only acks from the coordinator's datacenter
        # (the first ``ack_pool`` candidates) satisfy the level.
        acks = [self._replica_mutate(r, key, value, size, timestamp)
                for r in ordered]
        dead = [r for r in self.owner.placement.replicas_for_key(key)
                if r not in alive]
        for replica_id in dead:
            self.owner.hints.store(Hint(replica_id, key, value, size,
                                        timestamp))
            self.stats["hints_stored"] += 1
        yield from wait_for_k(
            self.env, acks[:ack_pool], required,
            WriteTimeoutError(f"write {cl.value} got < {required} acks"))
        return True

    # -- read path -----------------------------------------------------

    def handle_read(self, payload) -> Generator:
        """Coordinate one read: data + digests, then maybe read repair."""
        key, cl_name, expected_bytes = payload
        cl = ConsistencyLevel(cl_name)
        self.stats["reads"] += 1
        yield from self.owner.node.cpu_work(_COORD_CPU_S)
        spec = self.owner.spec
        alive, replication = self._alive_replicas(key)
        required, ordered, _ack_pool = self._plan(cl, alive, replication)
        if len(alive) < required:
            raise UnavailableError(
                f"read {cl.value} needs {required} replicas, "
                f"{len(alive)} alive")
        repair_fires = (len(ordered) > required
                        and self._rng.random() < spec.read_repair_chance)
        involved = ordered if repair_fires else ordered[:required]

        data_proc = self._replica_read(involved[0], key, expected_bytes,
                                       digest=False)
        digest_procs = [self._replica_read(r, key, expected_bytes,
                                           digest=True)
                        for r in involved[1:]]

        # Cassandra 2.0 semantics: the response blocks on the consistency
        # level only.  Digests beyond the CL (the chance-triggered global
        # read repair) are compared asynchronously; a mismatch *within*
        # the CL-blocking set forces a foreground reconcile before the
        # client sees an answer.  ``blocking_read_repair=False`` (the
        # ablation) moves even that reconcile off the latency path.
        blocking_digests = required - 1
        yield data_proc
        data_resp = data_proc.value
        if isinstance(data_resp, Exception):
            raise ReadTimeoutError(f"data read on {involved[0]} failed")
        if blocking_digests:
            yield from wait_for_k(
                self.env, digest_procs[:blocking_digests], blocking_digests,
                ReadTimeoutError(
                    f"read {cl.value} got < {blocking_digests} digests"))

        # Only the CL-blocking digests may force a foreground reconcile;
        # the beyond-CL digests exist solely because ``read_repair_chance``
        # fired and are reconciled off the latency path even when they
        # happen to have completed already (e.g. the coordinator-local
        # fast path) — otherwise the chance-triggered global repair leaks
        # into client latency and overstates the RF-driven read climb.
        data_ts = data_resp[1] if data_resp is not None else None
        digests: list[tuple[int, Optional[float]]] = []
        for replica_id, proc in zip(involved[1:1 + blocking_digests],
                                    digest_procs[:blocking_digests]):
            if proc.processed and not isinstance(proc.value, Exception):
                digests.append((replica_id, proc.value))
        async_replicas = list(involved[1 + blocking_digests:])
        async_procs = digest_procs[blocking_digests:]
        if async_procs:
            from repro.cassandra.read_repair import background_reconcile
            self.env.process(
                background_reconcile(self, key, expected_bytes, involved[0],
                                     data_resp, async_replicas, async_procs),
                name="background-read-repair")

        mismatch = any(d != data_ts for _, d in digests)
        if not mismatch:
            return data_resp

        # Reconcile: full reads from the digest replicas, newest wins.
        self.stats["read_repairs"] += 1
        result = yield from self._reconcile(
            key, expected_bytes, involved[0], data_resp,
            [r for r, _ in digests], blocking=spec.blocking_read_repair)
        return result

    def _reconcile(self, key: str, expected_bytes: int, data_replica: int,
                   data_resp, digest_replicas: list[int],
                   blocking: bool) -> Generator:
        """Full-data reads + repair mutations; returns the newest version."""
        full_procs = [self._replica_read(r, key, expected_bytes, digest=False)
                      for r in digest_replicas]
        if full_procs:
            yield AllOf(self.env, full_procs)
        versions: list[tuple[int, object, Optional[float]]] = [
            (data_replica, *(data_resp if data_resp is not None
                             else (None, None)))]
        for replica_id, proc in zip(digest_replicas, full_procs):
            resp = proc.value
            if isinstance(resp, Exception):
                continue
            versions.append((replica_id, *(resp if resp is not None
                                           else (None, None))))
        newest = max(versions, key=lambda v: (v[2] is not None, v[2] or 0.0))
        _, newest_value, newest_ts = newest
        if newest_ts is None:
            return None
        stale = [v[0] for v in versions if v[2] != newest_ts]
        repair_acks = [
            self._replica_mutate(r, key, newest_value, expected_bytes,
                                 newest_ts)
            for r in stale]
        self.stats["repair_mutations"] += len(repair_acks)
        if blocking and repair_acks:
            yield from wait_for_k(
                self.env, repair_acks, len(repair_acks),
                ReadTimeoutError("read repair mutations timed out"))
        return (newest_value, newest_ts)

    # -- scan path ----------------------------------------------------

    def handle_scan(self, payload) -> Generator:
        """Token-order scan served by the start token's main replica.

        Range scans read contiguous token ranges, so regardless of the
        consistency level the rows come from one replica's local range —
        which is why the paper finds all consistency levels performing
        closely on the scan workload (§4.3).
        """
        start_key, limit, _cl_name, expected_bytes = payload
        self.stats["scans"] += 1
        yield from self.owner.node.cpu_work(_COORD_CPU_S)
        alive, _replication = self._alive_replicas(start_key)
        if not alive:
            raise UnavailableError("no live replica for scan start token")
        owner = self.owner
        main = alive[0]
        if main == owner.node.node_id:
            rows = yield from owner._handle_scan((start_key, limit))
            return rows
        rows = yield from owner.cluster.call(
            owner.node, owner.cluster.node(main), "c.scan",
            (start_key, limit), request_bytes=70,
            response_bytes=expected_bytes * limit,
            timeout=owner.spec.replica_timeout_s)
        return rows
