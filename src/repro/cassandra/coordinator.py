"""Per-request coordination: consistency waits and read repair.

Any node coordinates requests for any key (clients round-robin).  The
coordinator forwards writes to every replica and waits for as many acks
as the consistency level demands; reads combine one full data read with
digest reads, widening to *all* replicas when the global read-repair
chance fires.

Read-repair semantics (Cassandra 2.0, the version the paper benchmarks):

- the client response blocks on the **consistency level** — one data read
  plus ``required - 1`` digest reads;
- a digest mismatch *within* that CL-blocking set forces a foreground
  reconcile (full reads, newest-timestamp wins, repair mutations) before
  the response — that is the cost QUORUM pays for recent writes;
- when the global ``read_repair_chance`` fires, the remaining replicas
  are read and reconciled **asynchronously**: no latency coupling, but
  the extra digest reads, full reads and repair mutations consume disk,
  CPU and network — the background burden the paper's §4.1 blames for
  Cassandra's read-latency climb with the replication factor.

``blocking_read_repair=False`` (ablation) moves even the CL-set
reconcile off the latency path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.cassandra.consistency import ConsistencyLevel, UnavailableError
from repro.cassandra.hints import Hint
from repro.cluster.hedging import HedgePolicy
from repro.cluster.topology import DeadlineExceeded, RpcTimeout
from repro.keyspace import token_of
from repro.sim.kernel import (AllOf, AnyOf, Environment, Event, Interrupt,
                              Process, Timeout)
from repro.sim.resources import Overloaded

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cassandra.node import CassandraNode

__all__ = ["Coordinator", "ReadTimeoutError", "WriteTimeoutError", "wait_for_k"]

#: CPU charged on the coordinator per request it coordinates.
_COORD_CPU_S = 1.2e-5

#: Hot-path lookup tables (one enum construction / f-string per request
#: is measurable at stress-cell scale).
_CL_BY_VALUE = {cl.value: cl for cl in ConsistencyLevel}
_WRITES_KEY = {cl: f"writes_{cl.value}" for cl in ConsistencyLevel}
_READS_KEY = {cl: f"reads_{cl.value}" for cl in ConsistencyLevel}


class WriteTimeoutError(Exception):
    """Not enough replica acks arrived before the write timeout."""


class ReadTimeoutError(Exception):
    """Not enough replica responses arrived before the read timeout."""


def wait_for_k(env: Environment, procs: list[Process], k: int,
               failure: Exception) -> Generator:
    """Wait until ``k`` of ``procs`` complete successfully (a process).

    A proc "fails" when it terminated with an Exception *value* (the RPC
    fan-out helpers convert timeouts into values) or when it *raised*
    (e.g. a replica process killed mid-request).  Raised failures are
    defused here: once ``done`` triggers early, the losing procs must not
    crash the whole simulation through
    :meth:`~repro.sim.kernel.Environment.step`'s unhandled-failure check.
    If completion of all procs cannot reach ``k`` successes, ``failure``
    is raised.
    """
    if k <= 0:
        return
    n = len(procs)
    if k > n:
        raise failure
    done = env.event()
    state = [0, 0]  # successes, finished

    def settle(ok: bool, value) -> None:
        # Inline completion (no queue round-trip): either nobody has
        # subscribed yet (the caller checks the fast path below before
        # yielding) or the subscribers are waiting processes, which the
        # kernel would invoke with exactly this call.
        done._ok = ok
        done._value = value
        callbacks = done.callbacks
        done.callbacks = None
        for callback in callbacks:
            callback(done)

    def check(event: Event) -> None:
        state[1] += 1
        if not event._ok:
            event._defused = True
        elif not isinstance(event._value, Exception):
            state[0] += 1
        if done.callbacks is None:
            return
        if state[0] >= k:
            settle(True, None)
        elif state[1] == n:
            settle(False, failure)

    for proc in procs:
        if proc.callbacks is None:
            check(proc)
        else:
            proc.callbacks.append(check)
    yield done


class Coordinator:
    """Coordination logic bound to one :class:`CassandraNode`."""

    def __init__(self, owner: "CassandraNode", rng) -> None:
        self.owner = owner
        self._rng = rng
        self.stats = {"writes": 0, "reads": 0, "scans": 0,
                      "read_repairs": 0, "repair_mutations": 0,
                      "hints_stored": 0, "background_repairs": 0,
                      "hedged_reads": 0, "hedge_wins": 0,
                      "admission_sheds": 0}
        spec = owner.spec
        #: Admission control: max coordinated ops in flight on this node.
        self.max_inflight = getattr(spec, "coordinator_max_inflight", None)
        self.inflight = 0
        retry = getattr(spec, "speculative_retry", None)
        #: Rapid read protection (speculative_retry); ``None`` = off.
        self.hedge = HedgePolicy(retry) if retry else None
        #: Geo deployments hint on *failed* remote mutations too: a
        #: replica that dies while the mutation is on the wire loses it
        #: silently, and over a WAN that in-flight window is tens of
        #: milliseconds of acknowledged writes (in-rack it is
        #: microseconds, so the plain single-rack path skips the
        #: bookkeeping).  Bounded replica stages re-open the window
        #: in-rack: a shed mutation (``Overloaded``) is a *common*
        #: failure under overload, not a freak death, and real Cassandra
        #: hints any replica that misses the write timeout — so the
        #: bookkeeping is also on whenever mutations can be shed.
        self._hint_on_failure = bool(
            getattr(owner.placement, "replication_per_dc", None)
            or spec.max_handler_queue is not None)

    # -- plumbing --------------------------------------------------------

    @property
    def env(self) -> Environment:
        return self.owner.node.env

    def _admit(self) -> None:
        """Coordinator-side admission control (raises before any work)."""
        if self.max_inflight is not None \
                and self.inflight >= self.max_inflight:
            self.stats["admission_sheds"] += 1
            raise Overloaded(
                f"coordinator {self.owner.node.node_id} at max in-flight "
                f"({self.max_inflight})")

    def _local_catching(self, gen) -> Generator:
        # Local fast-path procs follow the same convention as the RPC
        # fan-out helpers: failures (shed queue, expired deadline, hedge
        # cancellation) become values, never kernel-crashing raises.
        try:
            result = yield from gen
            return result
        except (RpcTimeout, Overloaded, Interrupt) as exc:
            return exc

    def _replica_mutate(self, replica_id: int, key: str, value, size: int,
                        timestamp: float,
                        deadline: Optional[float] = None) -> Process:
        """Send a mutation to one replica (local fast path when self)."""
        owner = self.owner
        if replica_id == owner.node.node_id:
            return self.env.process(
                self._local_catching(
                    owner.local_mutate(key, value, size, timestamp,
                                       deadline)),
                name="local-mutate", eager=True)
        return owner.cluster.call_async(
            owner.node, owner.cluster.node(replica_id), "c.mutate",
            (key, value, size, timestamp, deadline), request_bytes=size + 60,
            response_bytes=20, timeout=owner.spec.replica_timeout_s,
            deadline=deadline)

    def _replica_read(self, replica_id: int, key: str, expected_bytes: int,
                      digest: bool,
                      deadline: Optional[float] = None) -> Process:
        owner = self.owner
        if replica_id == owner.node.node_id:
            gen = (owner.local_read_digest(key, deadline) if digest
                   else owner.local_read_data(key, deadline))
            return self.env.process(self._local_catching(gen),
                                    name="local-read", eager=True)
        verb = "c.read_digest" if digest else "c.read_data"
        return owner.cluster.call_async(
            owner.node, owner.cluster.node(replica_id), verb,
            (key, deadline), request_bytes=60,
            response_bytes=16 if digest else expected_bytes + 30,
            timeout=owner.spec.replica_timeout_s, deadline=deadline)

    def _alive_replicas(self, key: str) -> tuple[list[int], int]:
        """(alive replica ids in placement order, configured replication)."""
        replicas = self.owner.placement.replicas_for_key(key)
        alive = [r for r in replicas
                 if self.owner.cluster.node(r).alive]
        return alive, len(replicas)

    def _plan(self, cl: ConsistencyLevel, alive: list[int],
              replication: int) -> tuple[int, list[int], int]:
        """(required acks, read-ordered candidates, ack-pool size).

        For datacenter-local levels the ack count is a quorum/one of the
        *coordinator's datacenter* replicas — only the first
        ``ack_pool`` candidates (the local ones) may satisfy it — and
        local replicas are preferred as read targets, which is what keeps
        geo-reads off the WAN.  On single-DC clusters this degrades to
        the plain levels.
        """
        datacenters = getattr(self.owner.cluster, "node_datacenter", None)
        if not cl.is_datacenter_local or datacenters is None:
            return cl.required(replication), alive, len(alive)
        my_dc = datacenters[self.owner.node.node_id]
        local = [r for r in alive if datacenters.get(r) == my_dc]
        remote = [r for r in alive if datacenters.get(r) != my_dc]
        if not local:
            # No local replicas: fall back to plain semantics.
            return cl.required(replication), alive, len(alive)
        required = cl.required(len(local))
        return required, local + remote, len(local)

    def _each_quorum_groups(
            self, alive: list[int]
    ) -> Optional[list[tuple[str, int, list[int]]]]:
        """Per-datacenter ``(name, quorum, alive members)`` groups.

        ``None`` when the deployment has no per-DC placement —
        single-rack clusters degrade EACH_QUORUM to plain QUORUM
        arithmetic via :meth:`_plan`.  The quorum is computed from the
        *configured* per-DC replication factor, as in Cassandra: a
        datacenter whose live replicas cannot reach its quorum makes the
        whole write unavailable.
        """
        placement = self.owner.placement
        per_dc = getattr(placement, "replication_per_dc", None)
        if not per_dc:
            return None
        node_dc = placement.node_datacenter
        groups = []
        for dc, rf in per_dc.items():
            if rf <= 0:
                continue
            members = [r for r in alive if node_dc.get(r) == dc]
            groups.append((dc, rf // 2 + 1, members))
        return groups

    def _arm_failure_hints(self, ordered: list[int], acks: list,
                           key: str, value, size: int,
                           timestamp: float) -> None:
        """Store a hint for any replica mutation that ultimately fails.

        Covers the WAN in-flight window: a replica alive at fan-out time
        that dies before the mutation lands drops it without a trace,
        and at geo propagation delays that window holds tens of
        acknowledged writes.  The hint is written when the fan-out proc
        settles with an exception value (mid-flight death, timeout,
        shed), long after the client ack — replay after heal then
        restores convergence.  Redelivery is safe: mutations are
        timestamped upserts.

        The coordinator's *own* mutation is covered too: with a bounded
        replica stage, the local apply can be shed while remote acks
        satisfy the level — leaving the coordinator itself the stale
        replica.  A self-targeted hint replays through the same loop
        once the stage has room.
        """
        store = self.owner.hints
        stats = self.stats

        def arm(replica_id: int, proc) -> None:
            def on_settle(event) -> None:
                if isinstance(event._value, Exception):
                    store.store(Hint(replica_id, key, value, size,
                                     timestamp))
                    stats["hints_stored"] += 1
            if proc.callbacks is None:
                if isinstance(proc.value, Exception):
                    store.store(Hint(replica_id, key, value, size,
                                     timestamp))
                    stats["hints_stored"] += 1
            else:
                proc.callbacks.append(on_settle)

        for replica_id, proc in zip(ordered, acks):
            arm(replica_id, proc)

    # -- write path -------------------------------------------------------

    def handle_write(self, payload) -> Generator:
        """Coordinate one write: fan out, wait for CL acks."""
        self._admit()
        self.inflight += 1
        try:
            result = yield from self._write(payload)
            return result
        finally:
            self.inflight -= 1

    def _write(self, payload) -> Generator:
        key, value, size, timestamp, cl_name, *rest = payload
        deadline = rest[0] if rest else None
        cl = _CL_BY_VALUE.get(cl_name) or ConsistencyLevel(cl_name)
        stats = self.stats
        stats["writes"] += 1
        # Per-CL breakdown: under an adaptive policy a single run mixes
        # levels, and the decision-log cross-check sums these.
        key_by_cl = _WRITES_KEY[cl]
        stats[key_by_cl] = stats.get(key_by_cl, 0) + 1
        node = self.owner.node
        end = node.reserve_cpu(_COORD_CPU_S)
        env = node.env
        if end > env._now:
            yield Timeout(env, end - env._now)
        alive, replication = self._alive_replicas(key)
        groups = (self._each_quorum_groups(alive)
                  if cl is ConsistencyLevel.EACH_QUORUM else None)
        if groups is not None:
            # EACH_QUORUM: every datacenter must be able to reach its
            # own quorum *before* any mutation is sent — an unreachable
            # datacenter is a definitive UnavailableError naming it, not
            # a timeout.
            for dc, quorum, members in groups:
                if len(members) < quorum:
                    raise UnavailableError(
                        f"write EACH_QUORUM needs {quorum} replicas in "
                        f"datacenter {dc!r}, {len(members)} alive")
            required, ordered, ack_pool = 0, alive, len(alive)
        else:
            required, ordered, ack_pool = self._plan(cl, alive, replication)
            if len(alive) < required:
                raise UnavailableError(
                    f"write {cl.value} needs {required} replicas, "
                    f"{len(alive)} alive")
        # Mutations go to every live replica; only the ack wait differs.
        # For LOCAL_* levels only acks from the coordinator's datacenter
        # (the first ``ack_pool`` candidates) satisfy the level.
        pending = getattr(self.owner.placement, "pending", None)
        if pending:
            # A topology change is streaming: double-write to the moved
            # arcs' gainers.  Appended *after* the first ``ack_pool``
            # slots, so they receive every mutation (or a hint on
            # failure) without ever counting toward the level.
            ordered = ordered + [
                r for r in pending.targets_for_token(token_of(key))
                if r not in ordered and self.owner.cluster.node(r).alive]
        acks = [self._replica_mutate(r, key, value, size, timestamp,
                                     deadline=deadline)
                for r in ordered]
        dead = [r for r in self.owner.placement.replicas_for_key(key)
                if r not in alive]
        for replica_id in dead:
            self.owner.hints.store(Hint(replica_id, key, value, size,
                                        timestamp))
            self.stats["hints_stored"] += 1
        if self._hint_on_failure:
            self._arm_failure_hints(ordered, acks, key, value, size,
                                    timestamp)
        if groups is not None:
            # All fan-out procs are already in flight, so waiting on the
            # groups one after another completes when the *slowest*
            # datacenter reaches its quorum — exactly the EACH_QUORUM
            # ack rule.
            proc_of = dict(zip(ordered, acks))
            for dc, quorum, members in groups:
                yield from wait_for_k(
                    self.env, [proc_of[r] for r in members], quorum,
                    WriteTimeoutError(
                        f"write EACH_QUORUM got < {quorum} acks in "
                        f"datacenter {dc!r}"))
            return True
        try:
            yield from wait_for_k(
                self.env, acks[:ack_pool], required,
                WriteTimeoutError(f"write {cl.value} got < {required} acks"))
        except WriteTimeoutError:
            # Keep the failure kind honest: when shed replicas alone made
            # the level unreachable, the client sees the shed, not a
            # generic timeout.
            sheds = sum(1 for p in acks[:ack_pool]
                        if p.processed and isinstance(p.value, Overloaded))
            if sheds > ack_pool - required:
                raise Overloaded(
                    f"write {cl.value}: {sheds} replicas shed") from None
            raise
        return True

    # -- read path -----------------------------------------------------

    def handle_read(self, payload) -> Generator:
        """Coordinate one read: data + digests, then maybe read repair."""
        self._admit()
        self.inflight += 1
        try:
            result = yield from self._read(payload)
            return result
        finally:
            self.inflight -= 1

    def _read(self, payload) -> Generator:
        key, cl_name, expected_bytes, *rest = payload
        deadline = rest[0] if rest else None
        cl = _CL_BY_VALUE.get(cl_name) or ConsistencyLevel(cl_name)
        if cl is ConsistencyLevel.EACH_QUORUM:
            # Cassandra rejects EACH_QUORUM reads; mirror that instead of
            # silently degrading.
            raise ValueError("EACH_QUORUM is a write-only consistency level")
        stats = self.stats
        stats["reads"] += 1
        key_by_cl = _READS_KEY[cl]
        stats[key_by_cl] = stats.get(key_by_cl, 0) + 1
        node = self.owner.node
        end = node.reserve_cpu(_COORD_CPU_S)
        env = node.env
        if end > env._now:
            yield Timeout(env, end - env._now)
        spec = self.owner.spec
        alive, replication = self._alive_replicas(key)
        required, ordered, _ack_pool = self._plan(cl, alive, replication)
        if len(alive) < required:
            raise UnavailableError(
                f"read {cl.value} needs {required} replicas, "
                f"{len(alive)} alive")
        repair_fires = (len(ordered) > required
                        and self._rng.random() < spec.read_repair_chance)
        involved = ordered if repair_fires else ordered[:required]
        # Replicas not involved in this read are speculative-retry
        # candidates — the "next-fastest" targets a hedge may duplicate
        # the data read to.
        spares = [r for r in ordered if r not in involved]

        data_proc = self._replica_read(involved[0], key, expected_bytes,
                                       digest=False, deadline=deadline)
        digest_procs = [self._replica_read(r, key, expected_bytes,
                                           digest=True, deadline=deadline)
                        for r in involved[1:]]

        # Cassandra 2.0 semantics: the response blocks on the consistency
        # level only.  Digests beyond the CL (the chance-triggered global
        # read repair) are compared asynchronously; a mismatch *within*
        # the CL-blocking set forces a foreground reconcile before the
        # client sees an answer.  ``blocking_read_repair=False`` (the
        # ablation) moves even that reconcile off the latency path.
        blocking_digests = required - 1
        data_resp, data_replica = yield from self._await_data(
            data_proc, involved[0], key, expected_bytes, spares, deadline)
        if isinstance(data_resp, Exception):
            # Sheds and spent budgets keep their kind; anything else
            # (replica timeout, cancelled wait) is a read timeout.
            if isinstance(data_resp, (Overloaded, DeadlineExceeded)):
                raise data_resp
            raise ReadTimeoutError(f"data read on {data_replica} failed")
        if blocking_digests:
            yield from wait_for_k(
                self.env, digest_procs[:blocking_digests], blocking_digests,
                ReadTimeoutError(
                    f"read {cl.value} got < {blocking_digests} digests"))

        # Only the CL-blocking digests may force a foreground reconcile;
        # the beyond-CL digests exist solely because ``read_repair_chance``
        # fired and are reconciled off the latency path even when they
        # happen to have completed already (e.g. the coordinator-local
        # fast path) — otherwise the chance-triggered global repair leaks
        # into client latency and overstates the RF-driven read climb.
        data_ts = data_resp[1] if data_resp is not None else None
        digests: list[tuple[int, Optional[float]]] = []
        for replica_id, proc in zip(involved[1:1 + blocking_digests],
                                    digest_procs[:blocking_digests]):
            if proc.processed and not isinstance(proc.value, Exception):
                digests.append((replica_id, proc.value))
        async_replicas = list(involved[1 + blocking_digests:])
        async_procs = digest_procs[blocking_digests:]
        if async_procs:
            from repro.cassandra.read_repair import background_reconcile
            self.env.process(
                background_reconcile(self, key, expected_bytes, data_replica,
                                     data_resp, async_replicas, async_procs),
                name="background-read-repair")

        mismatch = any(d != data_ts for _, d in digests)
        if not mismatch:
            return data_resp

        # Reconcile: full reads from the digest replicas, newest wins.
        self.stats["read_repairs"] += 1
        result = yield from self._reconcile(
            key, expected_bytes, data_replica, data_resp,
            [r for r, _ in digests], blocking=spec.blocking_read_repair)
        return result

    def _await_data(self, proc: Process, replica: int, key: str,
                    expected_bytes: int, spares: list[int],
                    deadline: Optional[float]) -> Generator:
        """Wait for the full data read, hedging to a spare when slow.

        Models Cassandra 2.0.2's rapid read protection: once the
        configured delay elapses without a primary response, the data
        read is duplicated to the next-fastest alive replica and the
        first *successful* response wins; the loser is interrupted (its
        caller-side wait is cancelled — the in-flight work drains
        server-side, where an attached deadline reclaims its queue slot).
        Returns ``(response, replica_id)``; the response is an Exception
        value when every attempt failed.
        """
        start = self.env.now
        hedge = self.hedge
        delay = hedge.delay() if hedge is not None else None
        if delay is None or not spares:
            yield proc
            if not isinstance(proc.value, Exception) and hedge is not None:
                hedge.observe(self.env.now - start)
            return proc.value, replica
        timer = self.env.timeout(delay)
        yield AnyOf(self.env, [proc, timer])
        if proc.processed and not isinstance(proc.value, Exception):
            hedge.observe(self.env.now - start)
            return proc.value, replica
        # Primary is straggling (or already failed): speculate.
        hedge.hedges += 1
        self.stats["hedged_reads"] += 1
        spare = spares[0]
        spare_proc = self._replica_read(spare, key, expected_bytes,
                                        digest=False, deadline=deadline)
        contenders = [(proc, replica), (spare_proc, spare)]
        while True:
            pending = [p for p, _ in contenders if not p.processed]
            if len(pending) == len(contenders):
                yield AnyOf(self.env, pending)
                continue
            winners = [(p, r) for p, r in contenders
                       if p.processed and not isinstance(p.value, Exception)]
            if winners:
                win_proc, win_replica = winners[0]
                if win_proc is spare_proc:
                    hedge.wins += 1
                    self.stats["hedge_wins"] += 1
                loser = next(p for p, _ in contenders if p is not win_proc)
                if loser.is_alive:
                    loser.interrupt("hedge lost")
                hedge.observe(self.env.now - start)
                return win_proc.value, win_replica
            if not pending:
                # Both attempts failed; surface the primary's error.
                return proc.value, replica
            yield pending[0]

    def _reconcile(self, key: str, expected_bytes: int, data_replica: int,
                   data_resp, digest_replicas: list[int],
                   blocking: bool) -> Generator:
        """Full-data reads + repair mutations; returns the newest version."""
        full_procs = [self._replica_read(r, key, expected_bytes, digest=False)
                      for r in digest_replicas]
        if full_procs:
            yield AllOf(self.env, full_procs)
        versions: list[tuple[int, object, Optional[float]]] = [
            (data_replica, *(data_resp if data_resp is not None
                             else (None, None)))]
        for replica_id, proc in zip(digest_replicas, full_procs):
            resp = proc.value
            if isinstance(resp, Exception):
                continue
            versions.append((replica_id, *(resp if resp is not None
                                           else (None, None))))
        newest = max(versions, key=lambda v: (v[2] is not None, v[2] or 0.0))
        _, newest_value, newest_ts = newest
        if newest_ts is None:
            return None
        stale = [v[0] for v in versions if v[2] != newest_ts]
        repair_acks = [
            self._replica_mutate(r, key, newest_value, expected_bytes,
                                 newest_ts)
            for r in stale]
        self.stats["repair_mutations"] += len(repair_acks)
        if blocking and repair_acks:
            yield from wait_for_k(
                self.env, repair_acks, len(repair_acks),
                ReadTimeoutError("read repair mutations timed out"))
        return (newest_value, newest_ts)

    # -- scan path ----------------------------------------------------

    def handle_scan(self, payload) -> Generator:
        """Token-order scan served by the start token's main replica.

        Range scans read contiguous token ranges, so regardless of the
        consistency level the rows come from one replica's local range —
        which is why the paper finds all consistency levels performing
        closely on the scan workload (§4.3).
        """
        self._admit()
        self.inflight += 1
        try:
            result = yield from self._scan(payload)
            return result
        finally:
            self.inflight -= 1

    def _scan(self, payload) -> Generator:
        start_key, limit, _cl_name, expected_bytes, *rest = payload
        deadline = rest[0] if rest else None
        self.stats["scans"] += 1
        yield from self.owner.node.cpu_work(_COORD_CPU_S)
        alive, _replication = self._alive_replicas(start_key)
        if not alive:
            raise UnavailableError("no live replica for scan start token")
        owner = self.owner
        main = alive[0]
        if main == owner.node.node_id:
            rows = yield from owner._handle_scan((start_key, limit, deadline))
            return rows
        rows = yield from owner.cluster.call(
            owner.node, owner.cluster.node(main), "c.scan",
            (start_key, limit, deadline), request_bytes=70,
            response_bytes=expected_bytes * limit,
            timeout=owner.spec.replica_timeout_s, deadline=deadline)
        return rows
