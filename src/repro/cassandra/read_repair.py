"""Background (asynchronous) read-repair tail.

Used when ``blocking_read_repair=False`` (the ablation configuration):
the coordinator answers the client at its consistency level and this
process finishes the digest comparison and pushes repair mutations off
the latency path.  The work still consumes replica CPU/disk/NIC time, so
the throughput cost of repair remains visible even in async mode — only
the per-request latency coupling disappears.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.kernel import AllOf, Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cassandra.coordinator import Coordinator

__all__ = ["background_reconcile"]


def background_reconcile(coordinator: "Coordinator", key: str,
                         expected_bytes: int, data_replica: int,
                         data_resp, digest_replicas: list[int],
                         digest_procs: list[Process]) -> Generator:
    """Compare all digests once they arrive; repair stale replicas."""
    if digest_procs:
        yield AllOf(coordinator.env, digest_procs)
    data_ts: Optional[float] = data_resp[1] if data_resp is not None else None
    responded: list[int] = []
    mismatch = False
    for replica_id, proc in zip(digest_replicas, digest_procs):
        if isinstance(proc.value, Exception):
            continue
        responded.append(replica_id)
        if proc.value != data_ts:
            mismatch = True
    if not mismatch:
        return
    coordinator.stats["background_repairs"] += 1
    yield from coordinator._reconcile(key, expected_bytes, data_replica,
                                      data_resp, responded, blocking=False)
