"""Token ring and SimpleStrategy replica placement.

Record keys in this repo are already scrambled (FNV over the insertion
index — see :mod:`repro.keyspace`), so the partitioner treats the
numeric key suffix as the token directly; statistically this matches a
random-partitioner hash while keeping key order == token order, which
lets the same keys drive both databases.
"""

from __future__ import annotations

import bisect

from repro.keyspace import KEY_DOMAIN, token_of

__all__ = ["TokenRing"]


class TokenRing:
    """Virtual-node token ring with SimpleStrategy placement."""

    def __init__(self, node_ids: list[int], vnodes: int, rng) -> None:
        if not node_ids:
            raise ValueError("ring needs at least one node")
        self.node_ids = list(node_ids)
        self.vnodes = vnodes
        #: Sorted ring positions and the owning node of each.
        self._tokens: list[int] = []
        self._owners: list[int] = []
        taken: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for node_id in node_ids:
            for _ in range(vnodes):
                token = rng.randrange(KEY_DOMAIN)
                while token in taken:
                    token = rng.randrange(KEY_DOMAIN)
                taken.add(token)
                pairs.append((token, node_id))
        pairs.sort()
        self._tokens = [t for t, _ in pairs]
        self._owners = [o for _, o in pairs]
        #: (primary ring index, replication) -> replica list.  The ring
        #: is immutable after construction, so placement per segment is
        #: too; the cache is bounded by vnode count x distinct RFs.
        #: Callers treat the returned list as read-only (they copy or
        #: comprehend, never mutate).
        self._replica_cache: dict[tuple[int, int], list[int]] = {}

    def primary_index(self, token: int) -> int:
        """Ring position owning ``token`` (first vnode clockwise)."""
        idx = bisect.bisect_right(self._tokens, token)
        return idx % len(self._tokens)

    def replicas_for_token(self, token: int, replication: int) -> list[int]:
        """SimpleStrategy: walk clockwise, collect distinct nodes.

        The first element is the *main replica* — the paper notes Cassandra
        orders replicas deterministically and always involves the first.
        """
        idx = self.primary_index(token)
        cached = self._replica_cache.get((idx, replication))
        if cached is not None:
            return cached
        capped = min(replication, len(self.node_ids))
        replicas: list[int] = []
        steps = 0
        while len(replicas) < capped and steps < len(self._tokens):
            owner = self._owners[(idx + steps) % len(self._tokens)]
            if owner not in replicas:
                replicas.append(owner)
            steps += 1
        self._replica_cache[(idx, replication)] = replicas
        return replicas

    def replicas_for_key(self, key: str, replication: int) -> list[int]:
        return self.replicas_for_token(token_of(key), replication)

    def ownership_fractions(self) -> dict[int, float]:
        """Fraction of the token space each node primarily owns."""
        totals = {n: 0 for n in self.node_ids}
        n = len(self._tokens)
        for i, owner in enumerate(self._owners):
            start = self._tokens[i - 1] if i else self._tokens[-1] - KEY_DOMAIN
            totals[owner] += self._tokens[i] - start
        return {n: t / KEY_DOMAIN for n, t in totals.items()}
