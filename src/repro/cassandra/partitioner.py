"""Token ring and SimpleStrategy replica placement.

Record keys in this repo are already scrambled (FNV over the insertion
index — see :mod:`repro.keyspace`), so the partitioner treats the
numeric key suffix as the token directly; statistically this matches a
random-partitioner hash while keeping key order == token order, which
lets the same keys drive both databases.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.keyspace import KEY_DOMAIN, token_of

__all__ = ["PendingRanges", "TokenRange", "TokenRing"]


@dataclass(frozen=True)
class TokenRange:
    """A clockwise ring arc ``[start, end)`` whose replica set changed.

    ``start`` is inclusive and ``end`` exclusive, matching the ring's
    segment convention (a vnode token owns the arc *starting* at it).
    The arc wraps through zero when ``end <= start``.
    """

    start: int
    end: int
    #: Replica sets before and after the topology change, in ring order.
    old_replicas: tuple[int, ...]
    new_replicas: tuple[int, ...]

    @property
    def width(self) -> int:
        """Token-space size of the arc (a zero-length arc is the full ring)."""
        return (self.end - self.start) % KEY_DOMAIN or KEY_DOMAIN

    @property
    def gainers(self) -> tuple[int, ...]:
        """Nodes that must *receive* this arc's data (new replicas)."""
        return tuple(n for n in self.new_replicas
                     if n not in self.old_replicas)

    @property
    def losers(self) -> tuple[int, ...]:
        """Nodes that stop replicating this arc after the change."""
        return tuple(n for n in self.old_replicas
                     if n not in self.new_replicas)

    def contains(self, token: int) -> bool:
        return (token - self.start) % KEY_DOMAIN < self.width


class PendingRanges:
    """Extra write targets while a topology change streams data.

    Cassandra's pending ranges: while a gainer (a bootstrapping joiner,
    or a survivor inheriting a leaving node's arc) streams historical
    data, every write whose token falls in a moved arc is *also* sent to
    that arc's gainers.  The gainers never count toward the consistency
    level — the ack quorum stays on the pre-change replica set — so no
    acknowledged write can be missing from the post-change replicas.
    """

    def __init__(self) -> None:
        self._arcs: tuple[TokenRange, ...] = ()

    def __bool__(self) -> bool:
        return bool(self._arcs)

    def begin(self, arcs) -> None:
        self._arcs = tuple(arcs)

    def end(self) -> None:
        self._arcs = ()

    def targets_for_token(self, token: int) -> list[int]:
        """Gainers of every pending arc containing ``token``, in order."""
        out: list[int] = []
        for arc in self._arcs:
            if arc.contains(token):
                out.extend(g for g in arc.gainers if g not in out)
        return out


class TokenRing:
    """Virtual-node token ring with SimpleStrategy placement."""

    def __init__(self, node_ids: list[int], vnodes: int, rng) -> None:
        if not node_ids:
            raise ValueError("ring needs at least one node")
        self.node_ids = list(node_ids)
        self.vnodes = vnodes
        #: Sorted ring positions and the owning node of each.
        self._tokens: list[int] = []
        self._owners: list[int] = []
        taken: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for node_id in node_ids:
            for _ in range(vnodes):
                token = rng.randrange(KEY_DOMAIN)
                while token in taken:
                    token = rng.randrange(KEY_DOMAIN)
                taken.add(token)
                pairs.append((token, node_id))
        pairs.sort()
        self._tokens = [t for t, _ in pairs]
        self._owners = [o for _, o in pairs]
        #: (primary ring index, replication) -> replica list.  Placement
        #: per segment only changes on :meth:`add_node` /
        #: :meth:`remove_node`, which clear the cache; between topology
        #: changes it is bounded by vnode count x distinct RFs.  Callers
        #: treat the returned list as read-only (they copy or comprehend,
        #: never mutate).
        self._replica_cache: dict[tuple[int, int], list[int]] = {}

    def primary_index(self, token: int) -> int:
        """Ring position owning ``token`` (first vnode clockwise)."""
        idx = bisect.bisect_right(self._tokens, token)
        return idx % len(self._tokens)

    def replicas_for_token(self, token: int, replication: int) -> list[int]:
        """SimpleStrategy: walk clockwise, collect distinct nodes.

        The first element is the *main replica* — the paper notes Cassandra
        orders replicas deterministically and always involves the first.
        """
        idx = self.primary_index(token)
        cached = self._replica_cache.get((idx, replication))
        if cached is not None:
            return cached
        capped = min(replication, len(self.node_ids))
        replicas: list[int] = []
        steps = 0
        while len(replicas) < capped and steps < len(self._tokens):
            owner = self._owners[(idx + steps) % len(self._tokens)]
            if owner not in replicas:
                replicas.append(owner)
            steps += 1
        self._replica_cache[(idx, replication)] = replicas
        return replicas

    def replicas_for_key(self, key: str, replication: int) -> list[int]:
        return self.replicas_for_token(token_of(key), replication)

    def ownership_fractions(self) -> dict[int, float]:
        """Fraction of the token space each node primarily owns."""
        totals = {n: 0 for n in self.node_ids}
        n = len(self._tokens)
        for i, owner in enumerate(self._owners):
            start = self._tokens[i - 1] if i else self._tokens[-1] - KEY_DOMAIN
            totals[owner] += self._tokens[i] - start
        return {n: t / KEY_DOMAIN for n, t in totals.items()}

    # -- elasticity --------------------------------------------------------

    def clone(self) -> "TokenRing":
        """A detached copy for *planning* a topology change.

        Apply :meth:`add_node`/:meth:`remove_node` to the clone to learn
        the moved arcs, stream data accordingly, then :meth:`adopt` the
        clone so every holder of this ring object switches to the new
        placement in one step.
        """
        twin = TokenRing.__new__(TokenRing)
        twin.node_ids = list(self.node_ids)
        twin.vnodes = self.vnodes
        twin._tokens = list(self._tokens)
        twin._owners = list(self._owners)
        twin._replica_cache = {}
        return twin

    def adopt(self, other: "TokenRing") -> None:
        """Atomically take over ``other``'s placement state.

        The commit point of a topology change: the placement strategies
        and nodes all share *this* ring object, so copying the clone's
        state in-place flips the whole deployment to the new topology
        between two events — never mid-request.
        """
        self.node_ids = list(other.node_ids)
        self._tokens = list(other._tokens)
        self._owners = list(other._owners)
        self._replica_cache.clear()

    def range_replicas(self, replication: int,
                       boundaries: list[int] | None = None,
                       ) -> dict[tuple[int, int], tuple[int, ...]]:
        """Replica set of every arc ``[b[i], b[i+1])`` of ``boundaries``.

        ``boundaries`` must be sorted and include every ring token (the
        default is the ring's own token list), so each arc is homogeneous:
        all its tokens share one replica set.  Used to diff placement
        across topology changes at a common granularity.
        """
        if boundaries is None:
            boundaries = self._tokens
        n = len(boundaries)
        out: dict[tuple[int, int], tuple[int, ...]] = {}
        for i, start in enumerate(boundaries):
            end = boundaries[(i + 1) % n]
            out[(start, end)] = tuple(
                self.replicas_for_token(start, replication))
        return out

    def _moved(self, before: dict[tuple[int, int], tuple[int, ...]],
               after: dict[tuple[int, int], tuple[int, ...]],
               ) -> list[TokenRange]:
        return [TokenRange(start, end, before[start, end], after[start, end])
                for (start, end) in before
                if before[start, end] != after[start, end]]

    def add_node(self, node_id: int, rng, replication: int,
                 ) -> list[TokenRange]:
        """Bootstrap ``node_id`` into the ring; return the moved arcs.

        Draws ``vnodes`` fresh collision-free tokens from ``rng`` (the
        ring stores no RNG of its own — pass a dedicated deterministic
        stream), inserts them, and returns every arc whose replica set
        changed at replication factor ``replication`` — exactly the data
        a streaming plan must transfer to keep every key at RF.
        """
        if node_id in self.node_ids:
            raise ValueError(f"node {node_id} is already in the ring")
        taken = set(self._tokens)
        new_tokens: list[int] = []
        for _ in range(self.vnodes):
            token = rng.randrange(KEY_DOMAIN)
            while token in taken:
                token = rng.randrange(KEY_DOMAIN)
            taken.add(token)
            new_tokens.append(token)
        boundaries = sorted(taken)
        before = self.range_replicas(replication, boundaries)
        for token in new_tokens:
            idx = bisect.bisect_left(self._tokens, token)
            self._tokens.insert(idx, token)
            self._owners.insert(idx, node_id)
        self.node_ids.append(node_id)
        self._replica_cache.clear()
        return self._moved(before,
                           self.range_replicas(replication, boundaries))

    def remove_node(self, node_id: int, replication: int,
                    ) -> list[TokenRange]:
        """Decommission ``node_id``; return the arcs that moved.

        The departing node's vnodes leave the ring and their arcs fall
        to the clockwise successors; the returned :class:`TokenRange`
        list names, per arc, which survivors must take over its data.
        """
        if node_id not in self.node_ids:
            raise ValueError(f"node {node_id} is not in the ring")
        if len(self.node_ids) == 1:
            raise ValueError("cannot remove the last ring node")
        boundaries = list(self._tokens)
        before = self.range_replicas(replication, boundaries)
        kept = [(t, o) for t, o in zip(self._tokens, self._owners)
                if o != node_id]
        self._tokens = [t for t, _ in kept]
        self._owners = [o for _, o in kept]
        self.node_ids.remove(node_id)
        self._replica_cache.clear()
        return self._moved(before,
                           self.range_replicas(replication, boundaries))
