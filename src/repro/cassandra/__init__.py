"""Cassandra-like cloud serving database.

Architecture per the paper's testbed (Cassandra 2.0.2): 15 peer storage
nodes forming a token ring (the 16th machine runs the YCSB client), no
master.  Any node can coordinate any request.

Key behaviours reproduced:

- **SimpleStrategy** replica placement over a virtual-node token ring;
- **tunable consistency**: the coordinator forwards a write to every
  replica but acknowledges after ONE / QUORUM / ALL responses (the
  paper's consistency knob), and reads block on the matching number of
  data + digest responses;
- **read repair**: digest mismatches inside the CL-blocking set force a
  foreground reconcile; with probability ``read_repair_chance`` (0.1,
  the 2.0 default the paper cites) the remaining replicas are read and
  repaired asynchronously — the background burden behind finding F4
  (read latency climbing with the replication factor);
- **hinted handoff** for writes targeting dead replicas;
- **NetworkTopologyStrategy + LOCAL_ONE/LOCAL_QUORUM** for the
  geo-distributed deployments of the paper's §6 future work.
"""

from repro.cassandra.client import CassandraSession
from repro.cassandra.consistency import ConsistencyLevel, UnavailableError
from repro.cassandra.deployment import CassandraCluster, CassandraSpec
from repro.cassandra.multidc import NetworkTopologyStrategy, SimpleStrategy
from repro.cassandra.node import CassandraNode
from repro.cassandra.partitioner import TokenRing

__all__ = [
    "CassandraCluster",
    "CassandraNode",
    "CassandraSession",
    "CassandraSpec",
    "ConsistencyLevel",
    "NetworkTopologyStrategy",
    "SimpleStrategy",
    "TokenRing",
    "UnavailableError",
]
