"""Hinted handoff.

When a write's target replica is dead, the coordinator stores a *hint*
locally and delivers it once the target comes back — keeping writes
available at consistency level ONE through node failures (the paper's
availability story for Cassandra).

Geo deployments lean on this much harder: a multi-second datacenter
partition accumulates thousands of hints per coordinator, and replaying
them one at a time over a ~75 ms WAN round trip would take minutes of
simulated time.  Replay therefore ships hints in bounded concurrent
batches, and targets that fail delivery back off exponentially (doubling
from ``base_backoff_s`` up to ``max_backoff_s``) instead of being
hammered every interval.  Hints are never dropped: an acknowledged write
stays durable until the healed replica has taken the mutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cassandra.node import CassandraNode

__all__ = ["Hint", "HintStore"]


class _BatchIncomplete(Exception):
    """Internal wait_for_k sentinel: some hints in a batch failed."""


@dataclass(frozen=True)
class Hint:
    target_node_id: int
    key: str
    value: object
    size: int
    timestamp: float


class HintStore:
    """Per-coordinator hint queue with a periodic delivery loop."""

    def __init__(self, owner: "CassandraNode",
                 replay_interval_s: float = 1.0,
                 replay_batch: int = 32,
                 base_backoff_s: float = 0.5,
                 max_backoff_s: float = 8.0) -> None:
        self.owner = owner
        self.replay_interval_s = replay_interval_s
        #: Max concurrent deliveries per replay wave (bounds WAN fan-in
        #: on a freshly healed datacenter).
        self.replay_batch = replay_batch
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self._hints: list[Hint] = []
        #: target node id -> earliest next delivery attempt (sim time).
        self._not_before: dict[int, float] = {}
        #: target node id -> current backoff (doubles per failure).
        self._backoff: dict[int, float] = {}
        self.stored = 0
        self.delivered = 0
        self.attempts = 0
        self.failures = 0
        owner.node.env.process(self._replayer(),
                               name=f"hints-{owner.node.node_id}")

    def __len__(self) -> int:
        return len(self._hints)

    def pending_for(self, cluster) -> int:
        """Hints whose target is currently alive (deliverable backlog)."""
        return sum(1 for h in self._hints
                   if cluster.node(h.target_node_id).alive)

    def store(self, hint: Hint) -> None:
        self._hints.append(hint)
        self.stored += 1
        # A hint is a local mutation (system.hints table): buffered append.
        self.owner.node.disk.append_buffered(hint.size + 64)

    def _replayer(self) -> Generator:
        from repro.cassandra.coordinator import wait_for_k
        cluster = self.owner.cluster
        env = self.owner.node.env
        while True:
            yield env.timeout(self.replay_interval_s)
            # A dead coordinator cannot deliver its own hints: replay
            # pauses while the owner is down and resumes after restart
            # (the hints sit in the owner's local system.hints table).
            if not self.owner.node.alive:
                continue
            now = env.now
            deliverable = [
                h for h in self._hints
                if cluster.node(h.target_node_id).alive
                and now >= self._not_before.get(h.target_node_id, 0.0)]
            index = 0
            while index < len(deliverable):
                if not self.owner.node.alive:
                    break  # owner crashed mid-replay
                batch = deliverable[index:index + self.replay_batch]
                index += self.replay_batch
                procs = [cluster.call_async(
                    self.owner.node, cluster.node(h.target_node_id),
                    "c.mutate", (h.key, h.value, h.size, h.timestamp),
                    request_bytes=h.size + 60, response_bytes=20,
                    timeout=2.0) for h in batch]
                try:
                    # k == len(procs): completes once every delivery in
                    # the wave has finished (successes early-exit, the
                    # failure path settles when all are processed).
                    yield from wait_for_k(env, procs, len(procs),
                                          _BatchIncomplete())
                except _BatchIncomplete:
                    pass
                for hint, proc in zip(batch, procs):
                    self.attempts += 1
                    ok = (proc.processed
                          and not isinstance(proc.value, Exception))
                    target = hint.target_node_id
                    if ok:
                        self._hints.remove(hint)
                        self.delivered += 1
                        self._not_before.pop(target, None)
                        self._backoff.pop(target, None)
                    else:
                        # Target died again (or timed out): keep the
                        # hint, back the target off exponentially.
                        self.failures += 1
                        backoff = self._backoff.get(
                            target, self.base_backoff_s)
                        self._not_before[target] = env.now + backoff
                        self._backoff[target] = min(
                            backoff * 2.0, self.max_backoff_s)
