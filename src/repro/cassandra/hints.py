"""Hinted handoff.

When a write's target replica is dead, the coordinator stores a *hint*
locally and delivers it once the target comes back — keeping writes
available at consistency level ONE through node failures (the paper's
availability story for Cassandra).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cassandra.node import CassandraNode

__all__ = ["Hint", "HintStore"]


@dataclass(frozen=True)
class Hint:
    target_node_id: int
    key: str
    value: object
    size: int
    timestamp: float


class HintStore:
    """Per-coordinator hint queue with a periodic delivery loop."""

    def __init__(self, owner: "CassandraNode",
                 replay_interval_s: float = 1.0) -> None:
        self.owner = owner
        self.replay_interval_s = replay_interval_s
        self._hints: list[Hint] = []
        self.stored = 0
        self.delivered = 0
        owner.node.env.process(self._replayer(),
                               name=f"hints-{owner.node.node_id}")

    def __len__(self) -> int:
        return len(self._hints)

    def store(self, hint: Hint) -> None:
        self._hints.append(hint)
        self.stored += 1
        # A hint is a local mutation (system.hints table): buffered append.
        self.owner.node.disk.append_buffered(hint.size + 64)

    def _replayer(self) -> Generator:
        cluster = self.owner.cluster
        env = self.owner.node.env
        while True:
            yield env.timeout(self.replay_interval_s)
            # A dead coordinator cannot deliver its own hints: replay
            # pauses while the owner is down and resumes after restart
            # (the hints sit in the owner's local system.hints table).
            if not self.owner.node.alive:
                continue
            deliverable = [h for h in self._hints
                           if cluster.node(h.target_node_id).alive]
            for hint in deliverable:
                if not self.owner.node.alive:
                    break  # owner crashed mid-replay
                try:
                    yield from cluster.call(
                        self.owner.node, cluster.node(hint.target_node_id),
                        "c.mutate",
                        (hint.key, hint.value, hint.size, hint.timestamp),
                        request_bytes=hint.size + 60, response_bytes=20,
                        timeout=2.0)
                except Exception:
                    continue  # target died again; keep the hint
                self._hints.remove(hint)
                self.delivered += 1
