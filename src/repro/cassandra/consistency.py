"""Consistency levels and ack arithmetic."""

from __future__ import annotations

import enum

__all__ = ["ConsistencyLevel", "UnavailableError"]


class UnavailableError(Exception):
    """Fewer live replicas than the consistency level requires."""


class ConsistencyLevel(enum.Enum):
    """How many replicas must respond before the coordinator answers.

    The paper benchmarks ONE, QUORUM and "write ALL" (write at ALL, read
    at ONE); TWO/THREE exist in Cassandra and are included for
    completeness.
    """

    ONE = "ONE"
    TWO = "TWO"
    THREE = "THREE"
    QUORUM = "QUORUM"
    ALL = "ALL"
    #: Datacenter-local levels (geo deployments, the paper's §6 future
    #: work).  On a single-rack cluster they degrade to ONE / QUORUM.
    LOCAL_ONE = "LOCAL_ONE"
    LOCAL_QUORUM = "LOCAL_QUORUM"
    #: A quorum *in every datacenter*.  Write-only in Cassandra; the
    #: coordinator does per-DC quorum accounting on geo clusters and
    #: degrades to plain QUORUM arithmetic on a single rack.
    EACH_QUORUM = "EACH_QUORUM"

    @property
    def is_datacenter_local(self) -> bool:
        return self in (ConsistencyLevel.LOCAL_ONE,
                        ConsistencyLevel.LOCAL_QUORUM)

    def required(self, replication: int) -> int:
        """Number of replica responses needed at replication factor
        ``replication``.

        For the LOCAL_* levels ``replication`` should be the number of
        replicas *in the coordinator's datacenter* (the coordinator passes
        that); on single-datacenter clusters it is simply the total.
        """
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if self in (ConsistencyLevel.ONE, ConsistencyLevel.LOCAL_ONE):
            needed = 1
        elif self is ConsistencyLevel.TWO:
            needed = 2
        elif self is ConsistencyLevel.THREE:
            needed = 3
        elif self in (ConsistencyLevel.QUORUM,
                      ConsistencyLevel.LOCAL_QUORUM,
                      ConsistencyLevel.EACH_QUORUM):
            # EACH_QUORUM counts per datacenter on geo clusters (the
            # coordinator handles that); here it degrades to a plain
            # quorum of whatever replica pool the caller passed.
            needed = replication // 2 + 1
        else:
            needed = replication
        if needed > replication:
            raise UnavailableError(
                f"consistency {self.value} needs {needed} replicas but the "
                f"replication factor is only {replication}")
        return needed

    def is_strong_with(self, other: "ConsistencyLevel",
                       replication: int) -> bool:
        """True when (read=self, write=other) overlap: R + W > N."""
        return (self.required(replication) + other.required(replication)
                > replication)
