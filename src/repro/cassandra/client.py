"""Driver session: round-robin coordinators, per-request consistency."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cassandra.consistency import ConsistencyLevel
from repro.cassandra.coordinator import ReadTimeoutError, WriteTimeoutError
from repro.cassandra.deployment import CassandraCluster
from repro.cluster.node import Node
from repro.cluster.topology import (DEFAULT_CLIENT_OVERHEAD_S,
                                    DeadlineExceeded, DeadNodeError,
                                    RpcTimeout)
from repro.sim.resources import Overloaded

__all__ = ["CassandraSession"]

#: Failures the driver retries on another coordinator: the request may
#: never have reached the ring (coordinator died) or timed out waiting on
#: a replica that a healthier coordinator can route around.  All paper
#: operations are timestamped upserts, so the retry is idempotent.
#: ``Overloaded`` (a shed request) retries against the next host too —
#: but under cluster-wide overload the final attempt's shed surfaces to
#: the caller under its own name.  ``UnavailableError`` is *not* here —
#: it is a definitive answer (too few live replicas for the CL) that no
#: coordinator choice can fix.
RETRYABLE_ERRORS = (RpcTimeout, DeadNodeError,
                    ReadTimeoutError, WriteTimeoutError, Overloaded)


class CassandraSession:
    """Client-side session (the DataStax-driver analogue).

    Requests round-robin over the live ring members, as the paper's YCSB
    client did; read and write consistency levels are set separately
    (paper §2) and can be overridden per request.
    """

    def __init__(self, cassandra: CassandraCluster, client_node: Node,
                 read_cl: ConsistencyLevel = ConsistencyLevel.ONE,
                 write_cl: ConsistencyLevel = ConsistencyLevel.ONE,
                 op_timeout_s: float = 10.0,
                 dc_aware: bool = True,
                 retries: int = 1,
                 deadline_s: Optional[float] = None,
                 client_overhead_s: float = DEFAULT_CLIENT_OVERHEAD_S) -> None:
        self.cassandra = cassandra
        self.cluster = cassandra.cluster
        self.client_node = client_node
        self.read_cl = read_cl
        self.write_cl = write_cl
        self.op_timeout_s = op_timeout_s
        #: End-to-end per-operation budget.  The absolute deadline rides
        #: the request envelope to the coordinator and its replica RPCs;
        #: once spent, queued replica work is withdrawn and the op fails
        #: with :class:`DeadlineExceeded` (never retried — the budget
        #: covers retries too).  ``None`` = no deadline propagation.
        self.deadline_s = deadline_s
        #: Extra attempts on :data:`RETRYABLE_ERRORS`, each against the
        #: next round-robin coordinator (the DataStax driver's default
        #: RetryPolicy next-host behaviour).
        self.retries = retries
        #: Driver-side CPU per operation (serialization, bookkeeping),
        #: charged on the client node ahead of the first attempt's request
        #: serialization — fused into the RPC's own core reservation so it
        #: costs no extra kernel event (see ``Cluster._rpc_body``).
        self.client_overhead_s = client_overhead_s
        self._rr_index = 0
        #: On geo clusters, prefer coordinators in the client's own
        #: datacenter (the driver's DCAwareRoundRobinPolicy default).
        self.dc_aware = dc_aware

    def _coordinator_pool(self) -> list[Node]:
        members = self.cassandra.coordinator_nodes
        datacenters = getattr(self.cluster, "node_datacenter", None)
        if not self.dc_aware or datacenters is None:
            return members
        my_dc = datacenters.get(self.client_node.node_id)
        local = [n for n in members
                 if datacenters.get(n.node_id) == my_dc and n.alive]
        if local:
            return local
        # The whole home DC is down.  LOCAL_QUORUM's guarantee is "a
        # quorum of *one* DC's replicas" — it only composes into strong
        # reads while every operation coordinates in the same DC.
        # Falling back to a remote coordinator would silently turn it
        # into "a quorum of whichever DC answered" (no overlap between
        # a eu-west write quorum and a us-west read quorum), so like
        # the DataStax DCAware policy we refuse and fail the operation
        # honestly.  Weaker levels (LOCAL_ONE) promise nothing a remote
        # coordinator can break: they degrade gracefully over the WAN.
        if ConsistencyLevel.LOCAL_QUORUM in (self.read_cl, self.write_cl):
            return []
        return members

    def _next_coordinator(self) -> Node:
        members = self._coordinator_pool()
        for _ in range(len(members)):
            node = members[self._rr_index % len(members)]
            self._rr_index += 1
            if node.alive:
                return node
        raise DeadNodeError("no live Cassandra coordinator")

    def _op_deadline(self) -> Optional[float]:
        """Absolute deadline for an operation starting now (incl. retries)."""
        if self.deadline_s is None:
            return None
        return self.cluster.env.now + self.deadline_s

    def _call(self, handler: str, make_payload, request_bytes: int,
              response_bytes: int,
              deadline: Optional[float] = None) -> Generator:
        """One coordinator RPC, retried per the session's retry policy.

        ``make_payload`` is re-evaluated per attempt so write timestamps
        stay fresh across retries.
        """
        for attempt in range(self.retries + 1):
            coordinator = self._next_coordinator()
            try:
                result = yield from self.cluster.call(
                    self.client_node, coordinator, handler, make_payload(),
                    request_bytes=request_bytes,
                    response_bytes=response_bytes,
                    timeout=self.op_timeout_s, deadline=deadline,
                    src_cpu_s=self.client_overhead_s if attempt == 0 else 0.0)
            except DeadlineExceeded:
                # The op's end-to-end budget is spent; retrying cannot
                # help (the deadline covers all attempts).
                raise
            except RETRYABLE_ERRORS:
                if attempt == self.retries:
                    raise
                continue
            return result

    # -- operations -----------------------------------------------------

    def insert(self, key: str, value: Any, size: int,
               cl: Optional[ConsistencyLevel] = None) -> Generator:
        """Write one row at the session's (or given) write CL."""
        cl = cl or self.write_cl
        deadline = self._op_deadline()
        result = yield from self._call(
            "c.coord_write",
            lambda: (key, value, size, self.cluster.env.now, cl.value,
                     deadline),
            request_bytes=size + 80, response_bytes=20, deadline=deadline)
        return result

    def read(self, key: str, expected_bytes: int = 1024,
             cl: Optional[ConsistencyLevel] = None) -> Generator:
        """Read one row; returns ``(value, timestamp)`` or None."""
        cl = cl or self.read_cl
        deadline = self._op_deadline()
        result = yield from self._call(
            "c.coord_read", lambda: (key, cl.value, expected_bytes, deadline),
            request_bytes=70, response_bytes=expected_bytes + 30,
            deadline=deadline)
        return result

    def scan(self, start_key: str, limit: int, record_bytes: int = 1024,
             cl: Optional[ConsistencyLevel] = None) -> Generator:
        """Token-order scan from ``start_key``."""
        cl = cl or self.read_cl
        deadline = self._op_deadline()
        rows = yield from self._call(
            "c.coord_scan",
            lambda: (start_key, limit, cl.value, record_bytes, deadline),
            request_bytes=80, response_bytes=record_bytes * limit,
            deadline=deadline)
        return rows
