"""Driver session: round-robin coordinators, per-request consistency."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cassandra.consistency import ConsistencyLevel
from repro.cassandra.deployment import CassandraCluster
from repro.cluster.node import Node
from repro.cluster.topology import DeadNodeError, RpcTimeout

__all__ = ["CassandraSession"]


class CassandraSession:
    """Client-side session (the DataStax-driver analogue).

    Requests round-robin over the live ring members, as the paper's YCSB
    client did; read and write consistency levels are set separately
    (paper §2) and can be overridden per request.
    """

    def __init__(self, cassandra: CassandraCluster, client_node: Node,
                 read_cl: ConsistencyLevel = ConsistencyLevel.ONE,
                 write_cl: ConsistencyLevel = ConsistencyLevel.ONE,
                 op_timeout_s: float = 10.0,
                 dc_aware: bool = True) -> None:
        self.cassandra = cassandra
        self.cluster = cassandra.cluster
        self.client_node = client_node
        self.read_cl = read_cl
        self.write_cl = write_cl
        self.op_timeout_s = op_timeout_s
        self._rr_index = 0
        #: On geo clusters, prefer coordinators in the client's own
        #: datacenter (the driver's DCAwareRoundRobinPolicy default).
        self.dc_aware = dc_aware

    def _coordinator_pool(self) -> list[Node]:
        members = self.cassandra.server_nodes
        datacenters = getattr(self.cluster, "node_datacenter", None)
        if not self.dc_aware or datacenters is None:
            return members
        my_dc = datacenters.get(self.client_node.node_id)
        local = [n for n in members
                 if datacenters.get(n.node_id) == my_dc and n.alive]
        return local or members

    def _next_coordinator(self) -> Node:
        members = self._coordinator_pool()
        for _ in range(len(members)):
            node = members[self._rr_index % len(members)]
            self._rr_index += 1
            if node.alive:
                return node
        raise DeadNodeError("no live Cassandra coordinator")

    # -- operations -----------------------------------------------------

    def insert(self, key: str, value: Any, size: int,
               cl: Optional[ConsistencyLevel] = None) -> Generator:
        """Write one row at the session's (or given) write CL."""
        cl = cl or self.write_cl
        coordinator = self._next_coordinator()
        result = yield from self.cluster.call(
            self.client_node, coordinator, "c.coord_write",
            (key, value, size, self.cluster.env.now, cl.value),
            request_bytes=size + 80, response_bytes=20,
            timeout=self.op_timeout_s)
        return result

    def read(self, key: str, expected_bytes: int = 1024,
             cl: Optional[ConsistencyLevel] = None) -> Generator:
        """Read one row; returns ``(value, timestamp)`` or None."""
        cl = cl or self.read_cl
        coordinator = self._next_coordinator()
        result = yield from self.cluster.call(
            self.client_node, coordinator, "c.coord_read",
            (key, cl.value, expected_bytes),
            request_bytes=70, response_bytes=expected_bytes + 30,
            timeout=self.op_timeout_s)
        return result

    def scan(self, start_key: str, limit: int, record_bytes: int = 1024,
             cl: Optional[ConsistencyLevel] = None) -> Generator:
        """Token-order scan from ``start_key``."""
        cl = cl or self.read_cl
        coordinator = self._next_coordinator()
        rows = yield from self.cluster.call(
            self.client_node, coordinator, "c.coord_scan",
            (start_key, limit, cl.value, record_bytes),
            request_bytes=80, response_bytes=record_bytes * limit,
            timeout=self.op_timeout_s)
        return rows
