"""Multi-datacenter replica placement (NetworkTopologyStrategy).

Implements the paper's §6 future-work scenario: Cassandra spanning
geo-distributed datacenters (cf. Bermbach et al., the geo-consistency
study the paper cites in §5).  ``NetworkTopologyStrategy`` places a
configured number of replicas in *each* datacenter by walking the token
ring and taking the first distinct nodes per datacenter; combined with
the LOCAL_ONE / LOCAL_QUORUM consistency levels it gives low geo-read
latency with tunable cross-DC consistency.
"""

from __future__ import annotations

from typing import Protocol

from repro.cassandra.partitioner import PendingRanges, TokenRing
from repro.keyspace import token_of

__all__ = ["NetworkTopologyStrategy", "SimpleStrategy"]


class PlacementStrategy(Protocol):
    """What the coordinator needs from a replica-placement policy."""

    def replicas_for_key(self, key: str) -> list[int]:
        ...

    @property
    def total_replicas(self) -> int:
        ...


class SimpleStrategy:
    """Single-ring placement: first RF distinct nodes clockwise."""

    def __init__(self, ring: TokenRing, replication: int) -> None:
        self.ring = ring
        self.replication = replication
        #: Armed during bootstrap/decommission streaming: extra write
        #: targets that never count toward the consistency level.
        self.pending = PendingRanges()

    def replicas_for_key(self, key: str) -> list[int]:
        return self.ring.replicas_for_key(key, self.replication)

    @property
    def total_replicas(self) -> int:
        return min(self.replication, len(self.ring.node_ids))


class NetworkTopologyStrategy:
    """Per-datacenter replica counts over one global token ring.

    ``replication_per_dc`` maps datacenter name -> replica count; the
    walk order follows the ring, so each datacenter's replicas are the
    first of its nodes encountered clockwise from the key's token —
    matching Cassandra's semantics.
    """

    def __init__(self, ring: TokenRing, node_datacenter: dict[int, str],
                 replication_per_dc: dict[str, int]) -> None:
        unknown = {dc for dc in replication_per_dc
                   if dc not in set(node_datacenter.values())}
        if unknown:
            raise ValueError(f"replication configured for unknown "
                             f"datacenters: {sorted(unknown)}")
        self.ring = ring
        self.node_datacenter = dict(node_datacenter)
        self.replication_per_dc = dict(replication_per_dc)
        #: See :class:`SimpleStrategy` — same double-write contract.
        self.pending = PendingRanges()
        for dc, count in replication_per_dc.items():
            available = sum(1 for d in node_datacenter.values() if d == dc)
            if count > available:
                raise ValueError(
                    f"datacenter {dc!r} has {available} nodes but "
                    f"replication {count} requested")

    def replicas_for_key(self, key: str) -> list[int]:
        token = token_of(key)
        wanted = dict(self.replication_per_dc)
        replicas: list[int] = []
        idx = self.ring.primary_index(token)
        ring_size = len(self.ring._tokens)
        for step in range(ring_size):
            owner = self.ring._owners[(idx + step) % ring_size]
            if owner in replicas:
                continue
            dc = self.node_datacenter.get(owner)
            if wanted.get(dc, 0) > 0:
                replicas.append(owner)
                wanted[dc] -= 1
            if all(count == 0 for count in wanted.values()):
                break
        return replicas

    @property
    def total_replicas(self) -> int:
        return sum(self.replication_per_dc.values())

    def replicas_in_dc(self, replicas: list[int], dc: str) -> list[int]:
        return [r for r in replicas if self.node_datacenter.get(r) == dc]
