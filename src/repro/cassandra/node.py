"""A Cassandra storage node: local LSM engine + replica verbs.

Every node is also a potential coordinator; the coordination logic lives
in :mod:`repro.cassandra.coordinator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.cassandra.coordinator import Coordinator
from repro.cassandra.hints import HintStore
from repro.cassandra.partitioner import TokenRing
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.storage.lsm import LocalDiskMedium, LsmTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cassandra.deployment import CassandraSpec

__all__ = ["CassandraNode"]

#: CPU charged per replica-verb invocation (StorageProxy bookkeeping).
_VERB_CPU_S = 1.0e-5


class CassandraNode:
    """One ring member: replica storage + request coordination."""

    def __init__(self, cluster: Cluster, node: Node, ring: TokenRing,
                 spec: "CassandraSpec", rng, placement=None) -> None:
        from repro.cassandra.multidc import SimpleStrategy
        self.cluster = cluster
        self.node = node
        self.ring = ring
        self.spec = spec
        self.placement = placement or SimpleStrategy(ring, spec.replication)
        self.tree = LsmTree(node.env, node, LocalDiskMedium(node),
                            spec.storage, name=f"cassandra{node.node_id}")
        self.hints = HintStore(self, spec.hint_replay_interval_s)
        self.coordinator = Coordinator(self, rng)
        self.ops = {"mutate": 0, "read_data": 0, "read_digest": 0, "scan": 0}
        node.register("c.mutate", self._handle_mutate)
        node.register("c.read_data", self._handle_read_data)
        node.register("c.read_digest", self._handle_read_digest)
        node.register("c.scan", self._handle_scan)
        node.register("c.coord_write", self.coordinator.handle_write)
        node.register("c.coord_read", self.coordinator.handle_read)
        node.register("c.coord_scan", self.coordinator.handle_scan)

    # -- replica verbs -------------------------------------------------

    def _handle_mutate(self, payload) -> Generator:
        """Apply one mutation: commit log + memtable."""
        key, value, size, timestamp = payload
        self.ops["mutate"] += 1
        yield from self.node.cpu_work(_VERB_CPU_S)
        yield from self.tree.put(key, value, size, timestamp)
        return True

    def _handle_read_data(self, key: str) -> Generator:
        """Full read: returns ``(value, timestamp)`` or None."""
        self.ops["read_data"] += 1
        yield from self.node.cpu_work(_VERB_CPU_S)
        result = yield from self.tree.get(key)
        return result

    def _handle_read_digest(self, key: str) -> Generator:
        """Digest read: same local I/O as a data read, tiny response.

        The digest is modelled as the newest local timestamp — two
        replicas' digests match exactly when their newest versions match.
        """
        self.ops["read_digest"] += 1
        yield from self.node.cpu_work(_VERB_CPU_S)
        result = yield from self.tree.get(key)
        return None if result is None else result[1]

    def _handle_scan(self, payload) -> Generator:
        """Token-order scan over this node's local range."""
        start_key, limit = payload
        self.ops["scan"] += 1
        yield from self.node.cpu_work(_VERB_CPU_S)
        rows = yield from self.tree.scan(start_key, limit)
        return rows

    # -- local fast paths (coordinator == replica) -----------------------

    def local_mutate(self, key: str, value, size: int,
                     timestamp: float) -> Generator:
        result = yield from self._handle_mutate((key, value, size, timestamp))
        return result

    def local_read_data(self, key: str) -> Generator:
        result = yield from self._handle_read_data(key)
        return result

    def local_read_digest(self, key: str) -> Generator:
        result = yield from self._handle_read_digest(key)
        return result

    def newest_timestamp(self, key: str) -> Optional[float]:
        """Zero-cost inspection for tests/probes (no simulated I/O)."""
        best: Optional[float] = None
        for memtable in [self.tree.active, *self.tree.flushing]:
            found = memtable.get(key)
            if found is not None and (best is None or found[1] > best):
                best = found[1]
        for table in self.tree.sstables:
            found = table.get(key)
            if found is not None and (best is None or found[1] > best):
                best = found[1]
        return best
