"""A Cassandra storage node: local LSM engine + replica verbs.

Every node is also a potential coordinator; the coordination logic lives
in :mod:`repro.cassandra.coordinator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.cassandra.coordinator import Coordinator
from repro.cassandra.hints import HintStore
from repro.cassandra.partitioner import TokenRing
from repro.cluster.node import Node
from repro.cluster.topology import Cluster, DeadlineExceeded
from repro.sim.kernel import AnyOf
from repro.sim.resources import BoundedResource
from repro.storage.lsm import LocalDiskMedium, LsmTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cassandra.deployment import CassandraSpec

__all__ = ["CassandraNode"]

#: CPU charged per replica-verb invocation (StorageProxy bookkeeping).
_VERB_CPU_S = 1.0e-5


class CassandraNode:
    """One ring member: replica storage + request coordination."""

    def __init__(self, cluster: Cluster, node: Node, ring: TokenRing,
                 spec: "CassandraSpec", rng, placement=None) -> None:
        from repro.cassandra.multidc import SimpleStrategy
        self.cluster = cluster
        self.node = node
        self.ring = ring
        self.spec = spec
        self.placement = placement or SimpleStrategy(ring, spec.replication)
        self.tree = LsmTree(node.env, node, LocalDiskMedium(node),
                            spec.storage, name=f"cassandra{node.node_id}")
        self.hints = HintStore(self, spec.hint_replay_interval_s)
        self.coordinator = Coordinator(self, rng)
        #: Bounded replica-stage pool (concurrent_reads/writes analogue).
        #: ``None`` when ``max_handler_queue`` is unset — the pre-defense
        #: unbounded behaviour, so existing experiments are unchanged.
        self.replica_pool: Optional[BoundedResource] = None
        if spec.max_handler_queue is not None:
            self.replica_pool = BoundedResource(
                node.env, capacity=spec.handler_slots,
                max_queue=spec.max_handler_queue)
        self.ops = {"mutate": 0, "read_data": 0, "read_digest": 0, "scan": 0}
        node.register("c.mutate", self._handle_mutate)
        node.register("c.read_data", self._handle_read_data)
        node.register("c.read_digest", self._handle_read_digest)
        node.register("c.scan", self._handle_scan)
        node.register("c.coord_write", self.coordinator.handle_write)
        node.register("c.coord_read", self.coordinator.handle_read)
        node.register("c.coord_scan", self.coordinator.handle_scan)

    # -- replica-stage admission ---------------------------------------

    def _acquire_slot(self, deadline: Optional[float]) -> Generator:
        """Claim a replica-stage slot (or ``None`` when pools are off).

        Raises :class:`~repro.sim.resources.Overloaded` synchronously when
        the bounded queue is full; when the request's propagated deadline
        expires while still queued, the slot claim is withdrawn (lazy
        deletion) and :class:`DeadlineExceeded` is raised — the queued
        work never runs.
        """
        pool = self.replica_pool
        if pool is None:
            return None
        req = pool.request()
        if req.triggered:
            return req
        if deadline is None:
            yield req
            return req
        remaining = deadline - self.node.env.now
        if remaining <= 0:
            req.cancel()
            raise DeadlineExceeded("deadline spent before replica queue")
        timer = self.node.env.timeout(remaining)
        outcome = yield AnyOf(self.node.env, [req, timer])
        if req in outcome:
            return req
        req.cancel()
        raise DeadlineExceeded("deadline expired in replica queue")

    def _release_slot(self, slot) -> None:
        if slot is not None:
            self.replica_pool.release(slot)

    # -- replica verbs -------------------------------------------------

    def _handle_mutate(self, payload) -> Generator:
        """Apply one mutation: commit log + memtable."""
        key, value, size, timestamp, *rest = payload
        deadline = rest[0] if rest else None
        self.ops["mutate"] += 1
        slot = yield from self._acquire_slot(deadline)
        try:
            # The verb's CPU charge rides the same core reservation as
            # the storage-engine put (one timeout event, same total
            # service time).
            yield from self.tree.put(key, value, size, timestamp,
                                     extra_cpu_s=_VERB_CPU_S)
        finally:
            self._release_slot(slot)
        return True

    def _handle_read_data(self, payload) -> Generator:
        """Full read: returns ``(value, timestamp)`` or None."""
        key, deadline = (payload if isinstance(payload, tuple)
                         else (payload, None))
        self.ops["read_data"] += 1
        slot = yield from self._acquire_slot(deadline)
        try:
            result = yield from self.tree.get(key, extra_cpu_s=_VERB_CPU_S)
        finally:
            self._release_slot(slot)
        return result

    def _handle_read_digest(self, payload) -> Generator:
        """Digest read: same local I/O as a data read, tiny response.

        The digest is modelled as the newest local timestamp — two
        replicas' digests match exactly when their newest versions match.
        """
        key, deadline = (payload if isinstance(payload, tuple)
                         else (payload, None))
        self.ops["read_digest"] += 1
        slot = yield from self._acquire_slot(deadline)
        try:
            result = yield from self.tree.get(key, extra_cpu_s=_VERB_CPU_S)
        finally:
            self._release_slot(slot)
        return None if result is None else result[1]

    def _handle_scan(self, payload) -> Generator:
        """Token-order scan over this node's local range."""
        start_key, limit, *rest = payload
        deadline = rest[0] if rest else None
        self.ops["scan"] += 1
        slot = yield from self._acquire_slot(deadline)
        try:
            yield from self.node.cpu_work(_VERB_CPU_S)
            rows = yield from self.tree.scan(start_key, limit)
        finally:
            self._release_slot(slot)
        return rows

    # -- local fast paths (coordinator == replica) -----------------------

    def local_mutate(self, key: str, value, size: int, timestamp: float,
                     deadline: Optional[float] = None) -> Generator:
        result = yield from self._handle_mutate(
            (key, value, size, timestamp, deadline))
        return result

    def local_read_data(self, key: str,
                        deadline: Optional[float] = None) -> Generator:
        result = yield from self._handle_read_data((key, deadline))
        return result

    def local_read_digest(self, key: str,
                          deadline: Optional[float] = None) -> Generator:
        result = yield from self._handle_read_digest((key, deadline))
        return result

    def newest_timestamp(self, key: str) -> Optional[float]:
        """Zero-cost inspection for tests/probes (no simulated I/O)."""
        best: Optional[float] = None
        for memtable in [self.tree.active, *self.tree.flushing]:
            found = memtable.get(key)
            if found is not None and (best is None or found[1] > best):
                best = found[1]
        for table in self.tree.sstables:
            found = table.get(key)
            if found is not None and (best is None or found[1] > best):
                best = found[1]
        return best
