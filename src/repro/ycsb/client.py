"""Closed-loop YCSB client: worker threads + target-throughput throttle.

The paper's methodology (§3.1, §4.2) maps onto three pieces:

- **client threads** — each worker issues its next operation only after
  the previous one completed (closed loop), which is why "the runtime
  throughput is inverted-related with the latency in all tests";
- **target throughput** — a per-thread pacing schedule: each worker owns
  ``target / n_threads`` operations per second and sleeps whenever it is
  ahead of schedule, exactly like YCSB's ``-target`` option;
- **warm-up** — the first fraction of operations is executed but not
  recorded, the paper's countermeasure against cold-start effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.cassandra.consistency import UnavailableError
from repro.cassandra.coordinator import ReadTimeoutError, WriteTimeoutError
from repro.cluster.topology import (DEFAULT_CLIENT_OVERHEAD_S, DeadNodeError,
                                    RpcTimeout)
from repro.keyspace import key_for_index
from repro.sim.kernel import AllOf, Environment
from repro.sim.resources import Overloaded
from repro.ycsb.db import DbBinding
from repro.ycsb.measurements import Measurements
from repro.ycsb.workload import OperationType, Workload

__all__ = ["DEFAULT_CLIENT_OVERHEAD_S", "LoadResult", "RunResult",
           "YcsbClient"]

#: Exceptions recorded as failed operations rather than crashing the run.
#: ``Overloaded`` is a bounded queue shedding load — an explicit error in
#: place of unbounded queueing latency; ``DeadlineExceeded`` (a
#: ``RpcTimeout`` subclass) is a spent end-to-end budget.  Both show up
#: under their own names in ``errors_by_type``.
OPERATION_ERRORS = (UnavailableError, ReadTimeoutError, WriteTimeoutError,
                    RpcTimeout, DeadNodeError, Overloaded)


@dataclass(frozen=True)
class LoadResult:
    records: int
    duration_s: float
    throughput: float


@dataclass(frozen=True)
class RunResult:
    workload: str
    operations: int
    not_found: int
    duration_s: float
    #: Achieved (runtime) throughput, ops/s.
    throughput: float
    #: Requested target throughput (None = unthrottled full speed).
    target_throughput: Optional[float]
    measurements: Measurements
    #: Cluster energy over the cell (an
    #: :class:`repro.energy.EnergyReport`), when metering is on.
    energy: Optional[object] = None
    #: Dollars for that energy (a :class:`repro.energy.CostReport`):
    #: electricity + instance-hours, priced by the cell's ``CostSpec``.
    cost: Optional[object] = None
    #: JSON-safe availability report (see
    #: :func:`repro.core.failover.build_failover_report`) attached when
    #: the cell ran with fault injection enabled.
    failover: Optional[dict] = None
    #: JSON-safe consistency report (see
    #: :func:`repro.consistency.oracle.build_consistency_report`)
    #: attached when the cell ran with history recording enabled.
    consistency: Optional[dict] = None
    #: JSON-safe adaptive-consistency decision log (see
    #: :meth:`repro.adaptive.controller.AdaptiveController.summary`)
    #: attached when the cell ran under an adaptive policy.
    decisions: Optional[dict] = None
    #: Total arrivals offered by an open-loop run (``None`` marks a
    #: closed-loop run, where offered load is not an independent input).
    offered: Optional[int] = None
    #: JSON-safe client-tier accounting (breaker/retry/limiter/leveler/
    #: cache counters — see :meth:`repro.clienttier.ClientTier.stats`)
    #: attached when the cell ran through the resilient client tier.
    clienttier: Optional[dict] = None
    #: JSON-safe elasticity report (see
    #: :func:`repro.cluster.elasticity.build_scale_report`) attached when
    #: the cell ran with a scale engine armed (``repro-bench scale``).
    scale: Optional[dict] = None

    def stats(self, op: str):
        return self.measurements.stats(op)

    def overall(self):
        return self.measurements.overall_stats()


class YcsbClient:
    """Drives one workload against one database binding.

    ``client_overhead_s`` defaults to 0 because the database driver
    sessions charge :data:`DEFAULT_CLIENT_OVERHEAD_S` themselves, fused
    into each operation's first RPC (``Cluster.call(..., src_cpu_s=...)``)
    so the charge costs no extra kernel event.  Pass a non-zero value
    only to model *additional* workload-generator CPU on top of that.
    """

    def __init__(self, env: Environment, db: DbBinding, workload: Workload,
                 rng, client_node=None,
                 client_overhead_s: float = 0.0) -> None:
        self.env = env
        self.db = db
        self.workload = workload
        self._rng = rng
        self.client_node = client_node
        self.client_overhead_s = client_overhead_s

    # -- load phase ------------------------------------------------------

    def load(self, record_count: int, n_threads: int = 16) -> Generator:
        """Insert ``record_count`` records (a simulation process)."""
        started = self.env.now
        indexes = list(range(record_count))
        shards = [indexes[i::n_threads] for i in range(n_threads)]
        workers = [self.env.process(self._load_worker(shard),
                                    name=f"load-{i}")
                   for i, shard in enumerate(shards) if shard]
        if workers:
            yield AllOf(self.env, workers)
        duration = self.env.now - started
        return LoadResult(records=record_count, duration_s=duration,
                          throughput=record_count / duration
                          if duration > 0 else 0.0)

    def _client_overhead(self) -> Generator:
        if self.client_node is not None and self.client_overhead_s > 0:
            yield from self.client_node.cpu_work(self.client_overhead_s)

    def _load_worker(self, indexes: list[int]) -> Generator:
        size = self.workload.spec.record_bytes
        for index in indexes:
            payload, _ = self.workload.next_value()
            try:
                yield from self._client_overhead()
                yield from self.db.insert(key_for_index(index), payload, size)
            except OPERATION_ERRORS:
                continue

    # -- run phase ------------------------------------------------------

    def run(self, operation_count: int, n_threads: int = 16,
            target_throughput: Optional[float] = None,
            warmup_fraction: float = 0.1,
            measurements: Optional[Measurements] = None) -> Generator:
        """Execute the workload mix (a simulation process).

        ``measurements`` lets the caller share the live sample store with
        an observer running alongside the workload (the elasticity
        campaign's autoscaler polls per-window p95 from it mid-run).
        """
        if measurements is None:
            measurements = Measurements()
        state = {
            "issued": 0,
            "not_found": 0,
            "warmup_remaining": int(operation_count * warmup_fraction),
        }
        per_thread_rate = (target_throughput / n_threads
                           if target_throughput else None)
        started = self.env.now
        measurements.started_at = started
        workers = [
            self.env.process(
                self._run_worker(operation_count, state, measurements,
                                 per_thread_rate),
                name=f"ycsb-{i}")
            for i in range(n_threads)
        ]
        yield AllOf(self.env, workers)
        measurements.finished_at = self.env.now
        if measurements.samples:
            first = min(t - lat for samples in measurements.samples.values()
                        for t, lat in samples)
            measurements.started_at = first
        duration = measurements.duration
        return RunResult(
            workload=self.workload.spec.name,
            operations=measurements.total_ops,
            not_found=state["not_found"],
            duration_s=duration,
            throughput=measurements.throughput,
            target_throughput=target_throughput,
            measurements=measurements,
        )

    def _run_worker(self, operation_count: int, state: dict,
                    measurements: Measurements,
                    per_thread_rate: Optional[float]) -> Generator:
        env = self.env
        next_deadline = env.now
        interval = 1.0 / per_thread_rate if per_thread_rate else 0.0
        while state["issued"] < operation_count:
            state["issued"] += 1
            if interval:
                if env.now < next_deadline:
                    yield env.timeout(next_deadline - env.now)
                next_deadline = max(next_deadline + interval,
                                    env.now - 5 * interval)
            warm = state["warmup_remaining"] > 0
            if warm:
                state["warmup_remaining"] -= 1
            op = self.workload.next_operation()
            t0 = env.now
            try:
                yield from self._client_overhead()
                found = yield from self._execute(op)
            except OPERATION_ERRORS as exc:
                if not warm:
                    measurements.record_error(op.value,
                                              kind=type(exc).__name__,
                                              at=env.now)
                continue
            if not found:
                state["not_found"] += 1
            if not warm:
                measurements.record(op.value, env.now, env.now - t0)

    def _execute(self, op: OperationType) -> Generator:
        """Perform one operation; returns False for a not-found read."""
        workload = self.workload
        size = workload.spec.record_bytes
        if op is OperationType.INSERT:
            payload, _ = workload.next_value()
            yield from self.db.insert(workload.next_insert_key(), payload, size)
            return True
        if op is OperationType.UPDATE:
            payload, _ = workload.next_value()
            yield from self.db.update(workload.next_read_key(), payload, size)
            return True
        if op is OperationType.READ:
            result = yield from self.db.read(workload.next_read_key(), size)
            return result is not None
        if op is OperationType.SCAN:
            rows = yield from self.db.scan(workload.next_read_key(),
                                           workload.next_scan_length(), size)
            return bool(rows)
        # Read-modify-write: both halves count as one operation (YCSB).
        key = workload.next_read_key()
        result = yield from self.db.read(key, size)
        payload, _ = workload.next_value()
        yield from self.db.update(key, payload, size)
        return result is not None
