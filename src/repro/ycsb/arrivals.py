"""Open-loop arrival processes: traffic that does not slow down.

The paper's YCSB methodology is closed-loop — every client thread waits
for its previous operation before issuing the next, so offered load
falls automatically whenever the store slows down.  Real serving
traffic does not behave that way: users keep clicking through an
outage, which is precisely what turns a latency blip into a retry-storm
collapse.  This module provides the missing half: deterministic
non-homogeneous Poisson arrival streams (thinning method) plus a
zipf-skewed population of simulated users, all driven off named
:class:`~repro.sim.rng.RngRegistry` streams so a run is bit-identical
no matter which worker process executes it.

All processes yield *absolute offsets in seconds from the stream's
start*; the open-loop client adds its own epoch.  Rates are arrivals
per second.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.ycsb.generators import ScrambledZipfianGenerator

__all__ = ["ArrivalProcess", "DiurnalArrivals", "FlashCrowdArrivals",
           "PoissonArrivals", "UserSessions", "make_arrivals"]


class ArrivalProcess:
    """Non-homogeneous Poisson arrivals by Lewis–Shedler thinning.

    Subclasses define the instantaneous rate ``rate_at(t)`` and its
    upper bound ``peak_rate``; candidates are drawn from a homogeneous
    process at the peak rate and accepted with probability
    ``rate_at(t) / peak_rate``.  Every subclass draws exactly one
    exponential and one uniform variate per candidate — including the
    homogeneous case — so switching shapes never perturbs how many
    variates an accepted arrival consumed.
    """

    peak_rate: float = 0.0

    def __init__(self, rng) -> None:
        self._rng = rng

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def times(self) -> Iterator[float]:
        """Unbounded stream of arrival offsets, strictly increasing."""
        peak = self.peak_rate
        if peak <= 0:
            raise ValueError("peak_rate must be positive")
        rng = self._rng
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak <= self.rate_at(t):
                yield t


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at a constant rate."""

    def __init__(self, rate: float, rng) -> None:
        super().__init__(rng)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.peak_rate = rate

    def rate_at(self, t: float) -> float:
        return self.rate


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night load: rate oscillates around ``base_rate``.

    ``peak_factor`` is the peak-to-base ratio (peak = base x factor,
    trough = base x (2 - factor), floored at zero), ``period_s`` one
    full day.  The cycle starts at the trough so a short run ramps *up*
    into its busy period.
    """

    def __init__(self, base_rate: float, rng, period_s: float = 60.0,
                 peak_factor: float = 2.0) -> None:
        super().__init__(rng)
        if base_rate <= 0 or period_s <= 0:
            raise ValueError("base_rate and period_s must be positive")
        if peak_factor < 1.0:
            raise ValueError("peak_factor must be >= 1")
        self.base_rate = base_rate
        self.period_s = period_s
        self.amplitude = base_rate * (peak_factor - 1.0)
        self.peak_rate = base_rate + self.amplitude

    def rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * (t / self.period_s)
        return max(0.0, self.base_rate - self.amplitude * math.cos(phase))


class FlashCrowdArrivals(ArrivalProcess):
    """Steady traffic with a rectangular spike: the 10x flash crowd.

    Outside ``[spike_at_s, spike_at_s + spike_duration_s)`` the rate is
    ``base_rate``; inside it is ``base_rate * spike_factor``.  The step
    shape is deliberate — the surge campaign wants the worst case (no
    ramp for defenses to adapt during), matching the thundering-herd
    arrivals a cache expiry or a celebrity post produces.
    """

    def __init__(self, base_rate: float, rng, spike_at_s: float,
                 spike_factor: float = 10.0,
                 spike_duration_s: float = 5.0) -> None:
        super().__init__(rng)
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if spike_factor < 1.0:
            raise ValueError("spike_factor must be >= 1")
        if spike_at_s < 0 or spike_duration_s < 0:
            raise ValueError("spike window must be non-negative")
        self.base_rate = base_rate
        self.spike_at_s = spike_at_s
        self.spike_factor = spike_factor
        self.spike_duration_s = spike_duration_s
        self.peak_rate = base_rate * spike_factor

    def rate_at(self, t: float) -> float:
        if self.spike_at_s <= t < self.spike_at_s + self.spike_duration_s:
            return self.peak_rate
        return self.base_rate


class UserSessions:
    """Zipf-skewed population of simulated users behind the arrivals.

    Each arrival belongs to one of ``n_users`` users (scrambled-zipfian
    popularity: a small hot set of heavy users, a long tail of
    occasional ones, spread over the id space so hot users are not
    adjacent) and each user maps statically onto one of ``n_tenants``
    tenants — the unit the per-tenant rate limiter meters.  The mapping
    is ``user % n_tenants``: because user popularity is skewed, tenant
    load is skewed too, which is what makes per-tenant limiting a
    meaningful defense rather than a uniform tax.
    """

    def __init__(self, n_users: int, rng, n_tenants: int = 1) -> None:
        if n_users < 1:
            raise ValueError("need at least one user")
        if n_tenants < 1:
            raise ValueError("need at least one tenant")
        self.n_users = n_users
        self.n_tenants = n_tenants
        self._gen = ScrambledZipfianGenerator(n_users, rng)

    def next_user(self) -> int:
        return self._gen.next()

    def tenant_of(self, user: int) -> int:
        return user % self.n_tenants


def make_arrivals(process: str, rate: float, rng, *,
                  period_s: float = 60.0, peak_factor: float = 2.0,
                  spike_at_s: float = 5.0, spike_factor: float = 10.0,
                  spike_duration_s: float = 5.0) -> ArrivalProcess:
    """Build the named arrival process (the config-facing constructor)."""
    if process == "poisson":
        return PoissonArrivals(rate, rng)
    if process == "diurnal":
        return DiurnalArrivals(rate, rng, period_s=period_s,
                               peak_factor=peak_factor)
    if process == "flash_crowd":
        return FlashCrowdArrivals(rate, rng, spike_at_s=spike_at_s,
                                  spike_factor=spike_factor,
                                  spike_duration_s=spike_duration_s)
    raise ValueError(f"unknown arrival process {process!r}; choose from "
                     f"('poisson', 'diurnal', 'flash_crowd')")
