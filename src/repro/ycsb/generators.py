"""Key-choice and value generators (ports of the YCSB generator family).

Each generator draws from an injected ``random.Random`` stream so whole
experiments stay reproducible (see :class:`repro.sim.rng.RngRegistry`).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.keyspace import fnv64

__all__ = [
    "CounterGenerator",
    "DiscreteGenerator",
    "HotspotGenerator",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
]


class CounterGenerator:
    """Monotonic counter — the insertion-order key sequence."""

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    def last(self) -> int:
        """Highest value handed out so far (-1 if none)."""
        return self._next - 1


class UniformGenerator:
    """Uniform integers over ``[lo, hi]`` inclusive."""

    def __init__(self, lo: int, hi: int, rng) -> None:
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self._rng = rng

    def next(self) -> int:
        return self._rng.randint(self.lo, self.hi)


class ZipfianGenerator:
    """Zipfian over ``[0, n_items)`` — popular items are the low ranks.

    Implements the Gray et al. rejection-free method YCSB uses, with the
    zeta constant computed once for the item count (kept fixed per run,
    as YCSB's ScrambledZipfian does).
    """

    ZIPFIAN_CONSTANT = 0.99

    def __init__(self, n_items: int, rng,
                 theta: float = ZIPFIAN_CONSTANT) -> None:
        if n_items < 1:
            raise ValueError("need at least one item")
        self.n_items = n_items
        self.theta = theta
        self._rng = rng
        self._zeta = self._zeta_static(n_items, theta)
        self._zeta2 = self._zeta_static(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        # For n_items <= 2 every draw resolves in the uz < 1 + 0.5**theta
        # fast paths of next(), so eta is unused — and its denominator is
        # exactly zero at n_items == 2 (zeta == zeta2).
        if n_items <= 2:
            self._eta = 0.0
        else:
            self._eta = ((1 - (2.0 / n_items) ** (1 - theta))
                         / (1 - self._zeta2 / self._zeta))

    @staticmethod
    def _zeta_static(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zeta
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        # As u -> 1 the base (eta*u - eta + 1) can round up to exactly
        # 1.0, making the product n_items itself — outside the
        # [0, n_items) contract — so clamp to the last rank.
        rank = int(self.n_items
                   * (self._eta * u - self._eta + 1) ** self._alpha)
        return rank if rank < self.n_items else self.n_items - 1


class ScrambledZipfianGenerator:
    """Zipfian popularity spread uniformly over the item space.

    YCSB hashes the zipfian rank so the hottest records are not adjacent
    — the defence against the paper's "local trap" (§3.1).
    """

    def __init__(self, n_items: int, rng) -> None:
        self.n_items = n_items
        self._zipf = ZipfianGenerator(n_items, rng)

    def next(self) -> int:
        return fnv64(self._zipf.next()) % self.n_items

    def next_below(self, limit: int) -> int:
        """Scrambled zipfian over the first ``limit`` items."""
        if limit < 1:
            return 0
        return fnv64(self._zipf.next() % limit) % limit


class LatestGenerator:
    """Skewed towards the most recently inserted records.

    ``next()`` returns ``last_insert - zipfian()`` (clamped at 0): rank 0
    is the newest record — the paper's *read latest* workload (feeds on
    Twitter/Google+).
    """

    def __init__(self, counter: CounterGenerator, rng) -> None:
        self._counter = counter
        self._rng = rng
        self._zipf_cache: ZipfianGenerator | None = None

    def next(self) -> int:
        last = self._counter.last()
        if last <= 0:
            return 0
        zipf = self._zipf_cache
        if zipf is None or zipf.n_items != last + 1:
            # Item count grows with inserts; rebuilding zeta each time
            # would be O(n) per op, so reuse until the count grew 10 %.
            if zipf is None or last + 1 > zipf.n_items * 1.1:
                zipf = ZipfianGenerator(last + 1, self._rng)
                self._zipf_cache = zipf
        offset = zipf.next()
        return max(0, last - min(offset, last))


class HotspotGenerator:
    """A fraction of operations hit a small hot set (YCSB hotspot)."""

    def __init__(self, lo: int, hi: int, hot_set_fraction: float,
                 hot_op_fraction: float, rng) -> None:
        if not 0 <= hot_set_fraction <= 1 or not 0 <= hot_op_fraction <= 1:
            raise ValueError("fractions must be in [0, 1]")
        self.lo = lo
        self.hi = hi
        self.hot_set_fraction = hot_set_fraction
        self.hot_op_fraction = hot_op_fraction
        self._rng = rng
        interval = hi - lo + 1
        self._hot_items = max(1, int(hot_set_fraction * interval))

    def next(self) -> int:
        if self._rng.random() < self.hot_op_fraction:
            return self.lo + self._rng.randrange(self._hot_items)
        cold = (self.hi - self.lo + 1) - self._hot_items
        if cold <= 0:
            return self.lo + self._rng.randrange(self._hot_items)
        return self.lo + self._hot_items + self._rng.randrange(cold)


class DiscreteGenerator:
    """Weighted choice over labelled outcomes (YCSB operation chooser)."""

    def __init__(self, weighted: Sequence[tuple[str, float]], rng) -> None:
        if not weighted:
            raise ValueError("need at least one outcome")
        total = sum(w for _, w in weighted)
        if total <= 0 or any(w < 0 for _, w in weighted):
            raise ValueError("weights must be non-negative and sum > 0")
        self._labels = [label for label, _ in weighted]
        self._cumulative: list[float] = []
        acc = 0.0
        for _, weight in weighted:
            acc += weight / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0  # guard against float drift
        self._rng = rng

    def next(self) -> str:
        u = self._rng.random()
        for label, edge in zip(self._labels, self._cumulative):
            if u <= edge:
                return label
        return self._labels[-1]  # pragma: no cover - float guard

    @property
    def labels(self) -> list[str]:
        return list(self._labels)


def zipfian_pmf(n_items: int, theta: float = ZipfianGenerator.ZIPFIAN_CONSTANT) \
        -> list[float]:
    """Exact zipfian probabilities (testing aid, O(n))."""
    zeta = ZipfianGenerator._zeta_static(n_items, theta)
    return [1.0 / (i ** theta) / zeta for i in range(1, n_items + 1)]
