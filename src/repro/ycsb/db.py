"""Database bindings: the YCSB ``DB`` interface for both systems."""

from __future__ import annotations

from typing import Any, Generator, Optional, Protocol

from repro.cassandra.client import CassandraSession
from repro.cassandra.consistency import ConsistencyLevel
from repro.hbase.client import HBaseClient

__all__ = ["CassandraBinding", "DbBinding", "HBaseBinding"]


class DbBinding(Protocol):
    """What a workload thread needs from a database."""

    def insert(self, key: str, value: Any, size: int) -> Generator:
        ...

    def update(self, key: str, value: Any, size: int) -> Generator:
        ...

    def read(self, key: str, size: int) -> Generator:
        """Returns ``(value, timestamp)`` or None."""
        ...

    def scan(self, start_key: str, limit: int, record_bytes: int) -> Generator:
        ...


class HBaseBinding:
    """YCSB binding for the HBase model (puts are upserts)."""

    name = "hbase"

    def __init__(self, client: HBaseClient) -> None:
        self.client = client

    def insert(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self.client.put(key, value, size)
        return result

    def update(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self.client.put(key, value, size)
        return result

    def read(self, key: str, size: int) -> Generator:
        result = yield from self.client.get(key, expected_bytes=size)
        return result

    def scan(self, start_key: str, limit: int, record_bytes: int) -> Generator:
        rows = yield from self.client.scan(start_key, limit,
                                           record_bytes=record_bytes)
        return rows


class CassandraBinding:
    """YCSB binding for the Cassandra model.

    Consistency levels ride on the session; per-run overrides mirror the
    paper's §4.3 method ("Cassandra allows specifying the consistency
    level in request time").
    """

    name = "cassandra"

    def __init__(self, session: CassandraSession,
                 read_cl: Optional[ConsistencyLevel] = None,
                 write_cl: Optional[ConsistencyLevel] = None) -> None:
        self.session = session
        if read_cl is not None:
            session.read_cl = read_cl
        if write_cl is not None:
            session.write_cl = write_cl

    def insert(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self.session.insert(key, value, size)
        return result

    def update(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self.session.insert(key, value, size)
        return result

    def read(self, key: str, size: int) -> Generator:
        result = yield from self.session.read(key, expected_bytes=size)
        return result

    def scan(self, start_key: str, limit: int, record_bytes: int) -> Generator:
        rows = yield from self.session.scan(start_key, limit,
                                            record_bytes=record_bytes)
        return rows
