"""Latency and throughput measurement.

Per-operation-type latency samples with timestamps (so SLA windows and
failover timelines can be reconstructed), summarized into the statistics
YCSB reports: mean, min, max, and the 50th/95th/99th/99.9th percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import merge
from typing import Optional

__all__ = ["LatencyStats", "Measurements"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one operation type's latency samples (seconds)."""

    count: int
    errors: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    #: 99.9th percentile — the tail the defense layer (hedging,
    #: deadlines, load shedding) is judged on.
    p999: float = 0.0

    @property
    def mean_ms(self) -> float:
        return self.mean * 1000.0

    @property
    def p99_ms(self) -> float:
        return self.p99 * 1000.0

    @property
    def p999_ms(self) -> float:
        return self.p999 * 1000.0

    @staticmethod
    def empty() -> "LatencyStats":
        return LatencyStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted samples.

    Standard nearest-rank definition: the smallest value with at least
    ``fraction`` of the samples at or below it, i.e. index
    ``ceil(fraction * n) - 1``.  (An earlier ``round(fraction * (n - 1))``
    variant used banker's rounding and misranked small samples — e.g. the
    median of 4 samples came out as the third one.)
    """
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


class Measurements:
    """Collects (timestamp, latency) samples per operation type."""

    def __init__(self) -> None:
        #: op name -> list of (completion time, latency seconds).
        self.samples: dict[str, list[tuple[float, float]]] = {}
        #: op name -> arrivals offered (open-loop runs).  Offered counts
        #: every intended request — completed, errored, shed or rate
        #: limited — which is the denominator goodput is judged against.
        self.offered: dict[str, int] = {}
        self.first_arrival_at: Optional[float] = None
        self.last_arrival_at: Optional[float] = None
        self.errors: dict[str, int] = {}
        #: error kind (exception class name) -> count.  Distinguishes an
        #: ``RpcTimeout`` burst (slow/unreachable coordinator) from
        #: ``UnavailableError`` (not enough live replicas for the CL) from
        #: ``DeadNodeError`` (no coordinator at all) in failover reports.
        self.errors_by_type: dict[str, int] = {}
        #: (time, op, kind) per error, for error-aware timelines.  Errors
        #: recorded without a timestamp are counted above but not placed.
        self.error_events: list[tuple[float, str, str]] = []
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: op -> (sample count covered, sorted latencies).  ``samples``
        #: is append-only, so a cache entry stays valid as long as the
        #: count matches; on a miss only the new tail is sorted and
        #: merged.  This is what keeps repeated :meth:`stats` calls (the
        #: adaptive monitor polls every window) from re-sorting the full
        #: history each time.
        self._sorted_cache: dict[str, tuple[int, list[float]]] = {}

    def record(self, op: str, completed_at: float, latency: float) -> None:
        self.samples.setdefault(op, []).append((completed_at, latency))

    def record_arrival(self, op: str, at: float) -> None:
        """Count one offered (intended) request at its arrival time.

        Open-loop clients call this for *every* arrival before knowing
        its fate; latency recorded later must be measured from this
        arrival (not from dequeue), so queueing delay is charged rather
        than coordinated-omitted.
        """
        self.offered[op] = self.offered.get(op, 0) + 1
        if self.first_arrival_at is None or at < self.first_arrival_at:
            self.first_arrival_at = at
        if self.last_arrival_at is None or at > self.last_arrival_at:
            self.last_arrival_at = at

    def _sorted_latencies(self, op: str) -> list[float]:
        samples = self.samples.get(op)
        if not samples:
            return []
        n = len(samples)
        cached = self._sorted_cache.get(op)
        if cached is not None and cached[0] == n:
            return cached[1]
        if cached is not None and cached[0] < n:
            tail = sorted(lat for _, lat in samples[cached[0]:])
            latencies = list(merge(cached[1], tail))
        else:
            latencies = sorted(lat for _, lat in samples)
        self._sorted_cache[op] = (n, latencies)
        return latencies

    def record_error(self, op: str, kind: str = "error",
                     at: Optional[float] = None) -> None:
        self.errors[op] = self.errors.get(op, 0) + 1
        self.errors_by_type[kind] = self.errors_by_type.get(kind, 0) + 1
        if at is not None:
            self.error_events.append((at, op, kind))

    @property
    def total_ops(self) -> int:
        return sum(len(v) for v in self.samples.values())

    @property
    def total_errors(self) -> int:
        return sum(self.errors.values())

    @property
    def duration(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float:
        """Runtime throughput: completed operations per second."""
        duration = self.duration
        return self.total_ops / duration if duration > 0 else 0.0

    @property
    def offered_total(self) -> int:
        """Total arrivals offered (0 for closed-loop runs)."""
        return sum(self.offered.values())

    @property
    def offered_throughput(self) -> float:
        """Offered load over the arrival span, arrivals per second.

        Measured over first-to-last *arrival* rather than the run's
        full duration: the drain tail after the last arrival carries no
        offered load, and including it would understate the pressure
        the system was actually under.
        """
        offered = self.offered_total
        if (offered < 2 or self.first_arrival_at is None
                or self.last_arrival_at is None
                or self.last_arrival_at <= self.first_arrival_at):
            return 0.0
        return offered / (self.last_arrival_at - self.first_arrival_at)

    def stats(self, op: str) -> LatencyStats:
        samples = self.samples.get(op, [])
        errors = self.errors.get(op, 0)
        if not samples:
            return LatencyStats(0, errors, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        latencies = self._sorted_latencies(op)
        return LatencyStats(
            count=len(latencies),
            errors=errors,
            mean=sum(latencies) / len(latencies),
            minimum=latencies[0],
            maximum=latencies[-1],
            p50=percentile(latencies, 0.50),
            p95=percentile(latencies, 0.95),
            p99=percentile(latencies, 0.99),
            p999=percentile(latencies, 0.999),
        )

    def overall_stats(self) -> LatencyStats:
        merged: list[float] = []
        for op in self.samples:
            # Reuse the per-op sorted caches; concatenated sorted runs
            # re-sort in near-linear time (timsort run detection).
            merged.extend(self._sorted_latencies(op))
        if not merged:
            return LatencyStats(0, self.total_errors,
                                0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        merged.sort()
        return LatencyStats(
            count=len(merged),
            errors=self.total_errors,
            mean=sum(merged) / len(merged),
            minimum=merged[0],
            maximum=merged[-1],
            p50=percentile(merged, 0.50),
            p95=percentile(merged, 0.95),
            p99=percentile(merged, 0.99),
            p999=percentile(merged, 0.999),
        )

    def timeline(self, bucket_s: float, by: str = "completion"
                 ) -> list[tuple[float, int, float, float, float]]:
        """(bucket start, ops, mean, p95, p99 latency) per time bucket.

        Used by the failover probe to plot throughput/latency around a
        crash, the way Pokluda et al. (paper §5) present theirs, and by
        the adaptive monitor / SLA reports, which need per-window
        percentiles rather than means.  The percentiles use the same
        nearest-rank definition as :func:`percentile`.

        ``by="arrival"`` keys each sample by when its request *arrived*
        (completion minus latency) instead of when it completed.  For
        open-loop runs that is the honest axis: a flash-crowd bucket
        should show the latency of the requests that arrived during the
        spike, not dilute them across whenever they finally finished.
        """
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if by not in ("completion", "arrival"):
            raise ValueError(f"unknown timeline key {by!r}; "
                             f"choose 'completion' or 'arrival'")
        all_samples = sorted(
            (t - lat if by == "arrival" else t, lat)
            for op_samples in self.samples.values()
            for t, lat in op_samples)
        if not all_samples:
            return []

        def bucket(start: float, acc: list[float]
                   ) -> tuple[float, int, float, float, float]:
            if not acc:
                return (start, 0, 0.0, 0.0, 0.0)
            acc = sorted(acc)
            return (start, len(acc), sum(acc) / len(acc),
                    percentile(acc, 0.95), percentile(acc, 0.99))

        out: list[tuple[float, int, float, float, float]] = []
        bucket_start = (all_samples[0][0] // bucket_s) * bucket_s
        acc: list[float] = []
        for t, lat in all_samples:
            while t >= bucket_start + bucket_s:
                out.append(bucket(bucket_start, acc))
                bucket_start += bucket_s
                acc = []
            acc.append(lat)
        out.append(bucket(bucket_start, acc))
        return out

    def timeline_with_errors(
            self, bucket_s: float) -> list[tuple[float, int, float, int]]:
        """(bucket start, ops, mean latency, errors) per time bucket.

        Unlike :meth:`timeline`, buckets are laid out over the union of
        success *and* error timestamps (an outage window where nothing
        completes but everything errors still shows up), and the run is
        zero-filled out to ``finished_at`` so a throughput dip at the end
        of the recording is visible rather than truncated.
        """
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        all_samples = sorted(
            (t, lat) for op_samples in self.samples.values()
            for t, lat in op_samples)
        error_times = sorted(t for t, _, _ in self.error_events)
        if not all_samples and not error_times:
            return []
        starts = []
        if all_samples:
            starts.append(all_samples[0][0])
        if error_times:
            starts.append(error_times[0])
        first = min(starts)
        ends = []
        if all_samples:
            ends.append(all_samples[-1][0])
        if error_times:
            ends.append(error_times[-1])
        if self.finished_at is not None:
            ends.append(self.finished_at)
        last = max(ends)
        out: list[tuple[float, int, float, int]] = []
        bucket_start = (first // bucket_s) * bucket_s
        si = ei = 0
        while bucket_start <= last:
            bucket_end = bucket_start + bucket_s
            lats: list[float] = []
            while si < len(all_samples) and all_samples[si][0] < bucket_end:
                lats.append(all_samples[si][1])
                si += 1
            errors = 0
            while ei < len(error_times) and error_times[ei] < bucket_end:
                errors += 1
                ei += 1
            mean = sum(lats) / len(lats) if lats else 0.0
            out.append((bucket_start, len(lats), mean, errors))
            bucket_start = bucket_end
        return out
