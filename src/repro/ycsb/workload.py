"""Workload definitions — Table 1 of the paper plus the micro workloads.

The stress workloads (paper §3.3, Table 1):

========================  ==================  =========================  ============
Workload                  Typical usage       Operations                 Distribution
========================  ==================  =========================  ============
``read_mostly``           online tagging      read/update 95/5           zipfian
``read_latest``           feeds reading       read/insert 80/20          latest
``read_update``           shopping cart       read/update 50/50          zipfian
``read_modify_write``     user profile        read/RMW 50/50             zipfian
``scan_short_ranges``     topic retrieving    scan/insert 95/5           zipfian
========================  ==================  =========================  ============

The micro workloads (§3.3, §4.1) are single-operation workloads over tiny
records, used to measure the atomic insert/read/update/scan costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.keyspace import key_for_index
from repro.ycsb.generators import (
    CounterGenerator,
    DiscreteGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)

__all__ = ["MICRO_WORKLOADS", "OperationType", "STRESS_WORKLOADS",
           "Workload", "WorkloadSpec"]


class OperationType(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    READ_MODIFY_WRITE = "read_modify_write"


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one workload mix."""

    name: str
    #: Operation mix, fractions summing to 1.
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    #: "zipfian" | "latest" | "uniform" — how read/update keys are chosen.
    request_distribution: str = "zipfian"
    #: Value payload size (paper: 1000 B stress, tiny micro records).
    record_bytes: int = 1000
    max_scan_length: int = 50
    #: Table 1's "typical usage" column.
    typical_usage: str = ""

    def __post_init__(self) -> None:
        total = (self.read_proportion + self.update_proportion
                 + self.insert_proportion + self.scan_proportion
                 + self.read_modify_write_proportion)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: proportions sum to {total}, not 1")
        if self.request_distribution not in ("zipfian", "latest", "uniform"):
            raise ValueError(
                f"unknown request distribution {self.request_distribution!r}")

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that mutate data (RMW counts once)."""
        return (self.update_proportion + self.insert_proportion
                + self.read_modify_write_proportion)


class Workload:
    """Runtime state: key generators bound to a record population."""

    def __init__(self, spec: WorkloadSpec, record_count: int, rng) -> None:
        if record_count < 1:
            raise ValueError("record_count must be >= 1")
        self.spec = spec
        self.record_count = record_count
        self._rng = rng
        self.insert_counter = CounterGenerator(start=record_count)
        self._op_chooser = DiscreteGenerator(
            [(OperationType.READ.value, spec.read_proportion),
             (OperationType.UPDATE.value, spec.update_proportion),
             (OperationType.INSERT.value, spec.insert_proportion),
             (OperationType.SCAN.value, spec.scan_proportion),
             (OperationType.READ_MODIFY_WRITE.value,
              spec.read_modify_write_proportion)],
            rng)
        self._zipfian = ScrambledZipfianGenerator(record_count, rng)
        self._uniform = UniformGenerator(0, record_count - 1, rng)
        self._latest = LatestGenerator(self.insert_counter, rng)
        self._scan_len = UniformGenerator(1, spec.max_scan_length, rng)
        self._op_sequence = 0

    # -- choices ---------------------------------------------------------

    def next_operation(self) -> OperationType:
        return OperationType(self._op_chooser.next())

    def next_read_index(self) -> int:
        """Record index for a read/update/scan-start/RMW target."""
        dist = self.spec.request_distribution
        if dist == "latest":
            return self._latest.next()
        if dist == "uniform":
            hi = self.insert_counter.last()
            if hi < self.record_count:
                hi = self.record_count - 1
            return self._rng.randint(0, hi)
        # Zipfian over everything inserted so far (hot heads scrambled).
        total = max(self.record_count, self.insert_counter.last() + 1)
        return self._zipfian.next_below(total)

    def next_read_key(self) -> str:
        return key_for_index(self.next_read_index())

    def next_insert_key(self) -> str:
        return key_for_index(self.insert_counter.next())

    def next_scan_length(self) -> int:
        return self._scan_len.next()

    def next_value(self) -> tuple[int, int]:
        """(payload, size): payload is a unique op sequence number so
        staleness probes can tell record versions apart."""
        self._op_sequence += 1
        return self._op_sequence, self.spec.record_bytes


def _stress(name: str, usage: str, **kwargs) -> WorkloadSpec:
    return WorkloadSpec(name=name, typical_usage=usage, record_bytes=1000,
                        **kwargs)


#: Table 1 — the five stress workloads.
STRESS_WORKLOADS: dict[str, WorkloadSpec] = {
    "read_mostly": _stress(
        "read_mostly", "Online tagging",
        read_proportion=0.95, update_proportion=0.05,
        request_distribution="zipfian"),
    "read_latest": _stress(
        "read_latest", "Feeds reading",
        read_proportion=0.80, insert_proportion=0.20,
        request_distribution="latest"),
    "read_update": _stress(
        "read_update", "Online shopping cart",
        read_proportion=0.50, update_proportion=0.50,
        request_distribution="zipfian"),
    "read_modify_write": _stress(
        "read_modify_write", "User profile",
        read_proportion=0.50, read_modify_write_proportion=0.50,
        request_distribution="zipfian"),
    "scan_short_ranges": _stress(
        "scan_short_ranges", "Topic retrieving",
        scan_proportion=0.95, insert_proportion=0.05,
        request_distribution="zipfian", max_scan_length=20),
}

#: §4.1 — single-operation micro workloads over tiny records.
MICRO_WORKLOADS: dict[str, WorkloadSpec] = {
    "update": WorkloadSpec(name="micro_update", update_proportion=1.0,
                           record_bytes=64, request_distribution="zipfian",
                           typical_usage="atomic update"),
    "read": WorkloadSpec(name="micro_read", read_proportion=1.0,
                         record_bytes=64, request_distribution="zipfian",
                         typical_usage="atomic read"),
    "insert": WorkloadSpec(name="micro_insert", insert_proportion=1.0,
                           record_bytes=64, typical_usage="atomic insert"),
    "scan": WorkloadSpec(name="micro_scan", scan_proportion=1.0,
                         record_bytes=64, max_scan_length=20,
                         request_distribution="zipfian",
                         typical_usage="atomic scan"),
}
