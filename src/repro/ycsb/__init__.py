"""YCSB-like benchmark framework.

Re-implements the parts of the Yahoo! Cloud Serving Benchmark the paper
uses: key-choice distributions (:mod:`repro.ycsb.generators`), the core
workload engine with the paper's five stress workloads
(:mod:`repro.ycsb.workload`), database bindings (:mod:`repro.ycsb.db`),
closed-loop client threads with a target-throughput throttle
(:mod:`repro.ycsb.client`), and latency/throughput measurement
(:mod:`repro.ycsb.measurements`).
"""

from repro.ycsb.client import LoadResult, RunResult, YcsbClient
from repro.ycsb.db import CassandraBinding, DbBinding, HBaseBinding
from repro.ycsb.generators import (
    CounterGenerator,
    DiscreteGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.ycsb.measurements import LatencyStats, Measurements
from repro.ycsb.workload import (
    MICRO_WORKLOADS,
    STRESS_WORKLOADS,
    OperationType,
    Workload,
    WorkloadSpec,
)

__all__ = [
    "CassandraBinding",
    "CounterGenerator",
    "DbBinding",
    "DiscreteGenerator",
    "HBaseBinding",
    "HotspotGenerator",
    "LatencyStats",
    "LatestGenerator",
    "LoadResult",
    "MICRO_WORKLOADS",
    "Measurements",
    "OperationType",
    "RunResult",
    "STRESS_WORKLOADS",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "Workload",
    "WorkloadSpec",
    "YcsbClient",
    "ZipfianGenerator",
]
