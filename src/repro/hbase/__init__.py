"""HBase-like cloud serving database.

Architecture per the paper's testbed (HBase 0.96 on HDFS 2.2): one
HMaster co-located with the NameNode and the YCSB client on the last
node, 15 RegionServers co-located with DataNodes.  Strong consistency:
every row is owned by exactly one RegionServer; replication happens one
layer down, inside HDFS.

Key behaviours reproduced:

- writes append to a RegionServer-wide WAL with **group commit** through
  the HDFS pipeline (in-memory acks), then update the MemStore — the
  replication factor only adds in-rack pipeline hops (paper finding F2);
- reads are served by the owning RegionServer from MemStore / block
  cache / short-circuit local HFile reads — the replication factor is
  invisible to reads (finding F1);
- the HMaster reassigns regions on RegionServer failure, costing a
  visible availability gap and a loss of HFile locality (failover probe).
"""

from repro.hbase.client import HBaseClient
from repro.hbase.deployment import HBaseCluster, HBaseSpec
from repro.hbase.master import HMaster
from repro.hbase.region import Region, RegionMedium
from repro.hbase.regionserver import GroupCommitWal, RegionServer

__all__ = [
    "GroupCommitWal",
    "HBaseClient",
    "HBaseCluster",
    "HBaseSpec",
    "HMaster",
    "Region",
    "RegionMedium",
    "RegionServer",
]
