"""Regions: contiguous key ranges served by exactly one RegionServer."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.cluster.disk import BACKGROUND, FOREGROUND
from repro.keyspace import key_for_token
from repro.storage.lsm import LsmTree, StorageSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hbase.regionserver import RegionServer

__all__ = ["Region", "RegionMedium"]


class RegionMedium:
    """Storage medium wiring a region's LSM tree to its current server.

    - log appends go to the *RegionServer-wide* group-commit WAL (all
      regions on a server share one WAL, as in HBase),
    - HFile reads/writes go through the server's DFS client, so a region
      that moved after failover transparently loses short-circuit locality
      (its HFiles' replicas still live on the old server's datanode).

    The ``server`` reference is swapped by the HMaster on reassignment.
    """

    def __init__(self, server: "RegionServer") -> None:
        self.server = server

    def append_log(self, size: int, sync: bool) -> Generator:
        """Route the region's WAL record into the server-wide group commit."""
        yield from self.server.wal.append(size)

    def read_block(self, size: int, priority: int = FOREGROUND,
                   handle=None) -> Generator:
        """Random-read one HFile block (short-circuit when local)."""
        yield from self.server.dfs.read(handle, size, sequential=False,
                                        priority=priority)

    def read_run(self, size: int, handle=None) -> Generator:
        """Sequentially read an HFile (compaction input)."""
        yield from self.server.dfs.read(handle, size, sequential=True,
                                        priority=BACKGROUND)

    def write_run(self, size: int) -> Generator:
        """Create a new HFile through the HDFS pipeline; returns its handle."""
        file = yield from self.server.dfs.create("hfile", size)
        yield from self.server.dfs.append(file, size, sync=False)
        return file


class Region:
    """One key-range shard: ``[start_token, end_token)`` over the key domain."""

    def __init__(self, region_id: int, start_token: int, end_token: int) -> None:
        if end_token <= start_token:
            raise ValueError("empty region range")
        self.region_id = region_id
        self.start_token = start_token
        self.end_token = end_token
        #: Set when the region is opened on a server.
        self.tree: Optional[LsmTree] = None
        self.medium: Optional[RegionMedium] = None
        #: Simulated time until which the region is unavailable (WAL
        #: replay after a move); requests earlier than this wait.
        self.available_at = 0.0

    def contains(self, token: int) -> bool:
        """True when ``token`` falls inside this region's key range."""
        return self.start_token <= token < self.end_token

    def open_on(self, server: "RegionServer", spec: StorageSpec) -> None:
        """First open: create the region's LSM tree on ``server``."""
        self.medium = RegionMedium(server)
        self.tree = LsmTree(server.node.env, server.node, self.medium, spec,
                            name=f"region{self.region_id}")

    def split(self, daughter_id: int, spec: StorageSpec) -> "Region":
        """Split at the midpoint token; returns the new top-half daughter.

        The parent shrinks to ``[start, mid)`` and the daughter opens on
        the same server with ``[mid, end)``.  Like real HBase, no data is
        copied at split time: the daughter adopts the top-half entries as
        a reference run and the parent's stores filter them out until the
        next compaction rewrites both sides (see
        :meth:`~repro.storage.lsm.LsmTree.drop_range`).
        """
        if self.end_token - self.start_token < 2:
            raise ValueError(f"region {self.region_id} too small to split")
        assert self.tree is not None and self.medium is not None
        mid = self.start_token + (self.end_token - self.start_token) // 2
        daughter = Region(daughter_id, mid, self.end_token)
        self.end_token = mid
        server = self.medium.server
        daughter.open_on(server, spec)
        split_key = key_for_token(mid)
        top = [e for e in self.tree.snapshot_entries() if e[0] >= split_key]
        daughter.tree.ingest_run(top)
        self.tree.drop_range(split_key)
        return daughter

    def move_to(self, server: "RegionServer", recovery_s: float) -> None:
        """Reassign to ``server`` (failover): same data, new home.

        Real HBase replays the WAL to rebuild the MemStore; the model
        keeps the data (the WAL pipeline made it durable on other nodes)
        and charges the replay as an unavailability window.
        """
        assert self.tree is not None and self.medium is not None
        self.medium.server = server
        self.tree.node = server.node
        self.available_at = server.node.env.now + recovery_s

    def __repr__(self) -> str:
        return (f"<Region {self.region_id} "
                f"[{self.start_token:#x}, {self.end_token:#x})>")
