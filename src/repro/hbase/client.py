"""HTable-style client with a cached region map and failover retries."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cluster.node import Node
from repro.cluster.topology import Cluster, DeadNodeError, RpcTimeout
from repro.keyspace import key_for_token, token_of
from repro.hbase.deployment import HBaseCluster

__all__ = ["HBaseClient"]


class HBaseClient:
    """Issues get/put/scan against the owning RegionServer.

    The region map is cached client-side (as the real client caches META)
    and refreshed from the HMaster when an operation times out — which is
    how clients ride out a RegionServer failover.
    """

    def __init__(self, hbase: HBaseCluster, client_node: Node,
                 op_timeout_s: float = 5.0, max_retries: int = 4,
                 retry_backoff_s: float = 0.5) -> None:
        self.hbase = hbase
        self.cluster: Cluster = hbase.cluster
        self.client_node = client_node
        self.op_timeout_s = op_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        #: region_id -> node_id (META cache).
        self._assignment = dict(hbase.master.assignment)
        self.retries = 0

    def _server_node(self, region_id: int) -> Node:
        return self.cluster.node(self._assignment[region_id])

    def _refresh_assignment(self) -> Generator:
        self._assignment = yield from self.cluster.call(
            self.client_node, self.hbase.master_node, "master.locate",
            request_bytes=30, response_bytes=20 * len(self._assignment),
            timeout=self.op_timeout_s)

    def _call_region(self, region_id: int, verb: str, payload: Any,
                     request_bytes: int, response_bytes: int) -> Generator:
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.retries += 1
                yield self.cluster.env.timeout(self.retry_backoff_s * attempt)
                yield from self._refresh_assignment()
            try:
                result = yield from self.cluster.call(
                    self.client_node, self._server_node(region_id), verb,
                    payload, request_bytes, response_bytes,
                    timeout=self.op_timeout_s)
                return result
            except (RpcTimeout, DeadNodeError) as exc:
                last_error = exc
        raise RpcTimeout(f"{verb} on region {region_id} failed after "
                         f"{self.max_retries} retries") from last_error

    # -- operations -----------------------------------------------------

    def put(self, key: str, value: Any, size: int) -> Generator:
        """Insert or update one row."""
        region = self.hbase.region_for_token(token_of(key))
        payload = (region.region_id, key, value, size,
                   self.cluster.env.now)
        result = yield from self._call_region(
            region.region_id, "rs.put", payload,
            request_bytes=size + 60, response_bytes=20)
        return result

    def get(self, key: str, expected_bytes: int = 1024) -> Generator:
        """Read one row; returns ``(value, timestamp)`` or None."""
        region = self.hbase.region_for_token(token_of(key))
        result = yield from self._call_region(
            region.region_id, "rs.get", (region.region_id, key),
            request_bytes=60, response_bytes=expected_bytes)
        return result

    def scan(self, start_key: str, limit: int,
             record_bytes: int = 1024) -> Generator:
        """Range scan from ``start_key``, possibly spanning regions."""
        rows: list[tuple[str, Any, float]] = []
        region = self.hbase.region_for_token(token_of(start_key))
        cursor = start_key
        while True:
            remaining = limit - len(rows)
            batch = yield from self._call_region(
                region.region_id, "rs.scan",
                (region.region_id, cursor, remaining),
                request_bytes=70, response_bytes=record_bytes * remaining)
            rows.extend(batch)
            next_index = region.region_id + 1
            if len(rows) >= limit or next_index >= len(self.hbase.regions):
                break
            region = self.hbase.regions[next_index]
            cursor = key_for_token(region.start_token)
        return rows[:limit]
