"""HTable-style client with a cached region map and failover retries."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cluster.hedging import HedgePolicy
from repro.cluster.node import Node
from repro.cluster.topology import (Cluster, DEFAULT_CLIENT_OVERHEAD_S,
                                    DeadlineExceeded, DeadNodeError,
                                    RpcTimeout)
from repro.keyspace import KEY_DOMAIN, key_for_token, token_of
from repro.hbase.deployment import HBaseCluster
from repro.hbase.regionserver import NotServingRegion
from repro.sim.kernel import AnyOf
from repro.sim.resources import Overloaded

__all__ = ["HBaseClient", "backoff_delay"]


def backoff_delay(base_s: float, attempt: int, cap_s: float,
                  rng=None) -> float:
    """Exponential backoff for retry ``attempt`` (1-based), with jitter.

    The uncapped delay doubles per attempt (``base_s * 2**(attempt-1)``),
    is clamped to ``cap_s``, then equal-jittered into
    ``[delay/2, delay)`` when an ``rng`` is supplied — drawn from the sim
    RNG so the schedule is deterministic per seed.  ``rng=None`` gives
    the pure exponential schedule (used by the pinning unit test).
    """
    delay = min(cap_s, base_s * (2 ** (attempt - 1)))
    if rng is not None:
        delay *= 0.5 + rng.random() / 2
    return delay


class HBaseClient:
    """Issues get/put/scan against the owning RegionServer.

    The region map is cached client-side (as the real client caches META)
    and refreshed from the HMaster when an operation times out — which is
    how clients ride out a RegionServer failover.  Retries back off
    exponentially with deterministic jitter; reads can be hedged
    (speculatively duplicated after ``speculative_retry``'s delay) and
    every operation can carry an end-to-end deadline that replica-side
    work honours.
    """

    def __init__(self, hbase: HBaseCluster, client_node: Node,
                 op_timeout_s: float = 5.0, max_retries: int = 4,
                 retry_backoff_s: float = 0.5,
                 backoff_cap_s: float = 5.0,
                 rng=None,
                 speculative_retry: Optional[str] = None,
                 deadline_s: Optional[float] = None,
                 client_overhead_s: float = DEFAULT_CLIENT_OVERHEAD_S) -> None:
        self.hbase = hbase
        self.cluster: Cluster = hbase.cluster
        self.client_node = client_node
        self.op_timeout_s = op_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.backoff_cap_s = backoff_cap_s
        #: Sim RNG stream for backoff jitter (``None`` = no jitter).
        self._rng = rng
        #: Speculative read retry; ``None`` disables hedging.
        self.hedge = (HedgePolicy(speculative_retry)
                      if speculative_retry else None)
        #: End-to-end per-operation budget (covers retries); ``None`` =
        #: no deadline propagation.
        self.deadline_s = deadline_s
        #: Client-side CPU per operation (serialization, bookkeeping),
        #: charged ahead of the first attempt's request serialization —
        #: fused into the RPC's own core reservation so it costs no extra
        #: kernel event (see ``Cluster._rpc_body``).
        self.client_overhead_s = client_overhead_s
        #: region_id -> node_id (META cache).
        self._assignment = dict(hbase.master.assignment)
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0

    def _server_node(self, region_id: int) -> Node:
        return self.cluster.node(self._assignment[region_id])

    def _refresh_assignment(self) -> Generator:
        self._assignment = yield from self.cluster.call(
            self.client_node, self.hbase.master_node, "master.locate",
            request_bytes=30, response_bytes=20 * len(self._assignment),
            timeout=self.op_timeout_s)

    def _call_region(self, region_id: int, verb: str, payload: Any,
                     request_bytes: int, response_bytes: int,
                     token: Optional[int] = None) -> Generator:
        env = self.cluster.env
        deadline = (env.now + self.deadline_s
                    if self.deadline_s is not None else None)
        base = payload
        if deadline is not None:
            payload = (*payload, deadline)
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.retries += 1
                delay = backoff_delay(self.retry_backoff_s, attempt,
                                      self.backoff_cap_s, self._rng)
                if deadline is not None:
                    remaining = deadline - env.now
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            f"{verb} on region {region_id}: budget spent "
                            f"after {attempt - 1} retries") from last_error
                    delay = min(delay, remaining)
                yield env.timeout(delay)
                yield from self._refresh_assignment()
                if token is not None:
                    # The region may have split since the last attempt
                    # (NotServingRegion): re-resolve and re-address.
                    region_id = self.hbase.region_for_token(token).region_id
                    payload = (region_id, *base[1:])
                    if deadline is not None:
                        payload = (*payload, deadline)
            if region_id not in self._assignment:
                # A region born after our last META refresh (split
                # daughter / newly activated server).
                yield from self._refresh_assignment()
            try:
                result = yield from self._attempt(
                    region_id, verb, payload, request_bytes, response_bytes,
                    deadline,
                    src_cpu_s=self.client_overhead_s if attempt == 0 else 0.0)
                return result
            except DeadlineExceeded:
                # The end-to-end budget covers retries; it is spent.
                raise
            except (RpcTimeout, DeadNodeError, Overloaded,
                    NotServingRegion) as exc:
                last_error = exc
        raise RpcTimeout(f"{verb} on region {region_id} failed after "
                         f"{self.max_retries} retries") from last_error

    def _attempt(self, region_id: int, verb: str, payload: Any,
                 request_bytes: int, response_bytes: int,
                 deadline: Optional[float],
                 src_cpu_s: float = 0.0) -> Generator:
        """One RPC attempt, speculatively duplicated for straggling reads.

        With a hedge policy configured, a read (never a put — only reads
        are latency-critical and side-effect-free here) that has not
        answered after the policy's delay is re-located via the HMaster
        and duplicated; the first successful response wins and the loser
        is interrupted.
        """
        env = self.cluster.env
        start = env.now
        hedge = self.hedge if verb != "rs.put" else None
        delay = hedge.delay() if hedge is not None else None
        primary = self.cluster.call_async(
            self.client_node, self._server_node(region_id), verb, payload,
            request_bytes, response_bytes, timeout=self.op_timeout_s,
            deadline=deadline, src_cpu_s=src_cpu_s)
        if delay is not None:
            yield AnyOf(env, [primary, env.timeout(delay)])
        if delay is None or (primary.processed
                             and not isinstance(primary.value, Exception)):
            if not primary.processed:
                yield primary
            result = primary.value
            if isinstance(result, Exception):
                raise result
            if hedge is not None:
                hedge.observe(env.now - start)
            return result
        # Primary is straggling (or already failed): re-locate the region
        # (it may have failed over) and race a duplicate read against it.
        hedge.hedges += 1
        self.hedges += 1
        yield from self._refresh_assignment()
        spare = self.cluster.call_async(
            self.client_node, self._server_node(region_id), verb, payload,
            request_bytes, response_bytes, timeout=self.op_timeout_s,
            deadline=deadline)
        contenders = [primary, spare]
        while True:
            pending = [p for p in contenders if not p.processed]
            if len(pending) == len(contenders):
                yield AnyOf(env, pending)
                continue
            winners = [p for p in contenders
                       if p.processed and not isinstance(p.value, Exception)]
            if winners:
                winner = winners[0]
                if winner is spare:
                    hedge.wins += 1
                    self.hedge_wins += 1
                loser = next(p for p in contenders if p is not winner)
                if loser.is_alive:
                    loser.interrupt("hedge lost")
                hedge.observe(env.now - start)
                return winner.value
            if not pending:
                raise primary.value
            yield pending[0]

    # -- operations -----------------------------------------------------

    def put(self, key: str, value: Any, size: int) -> Generator:
        """Insert or update one row."""
        token = token_of(key)
        region = self.hbase.region_for_token(token)
        payload = (region.region_id, key, value, size,
                   self.cluster.env.now)
        result = yield from self._call_region(
            region.region_id, "rs.put", payload,
            request_bytes=size + 60, response_bytes=20, token=token)
        return result

    def get(self, key: str, expected_bytes: int = 1024) -> Generator:
        """Read one row; returns ``(value, timestamp)`` or None."""
        token = token_of(key)
        region = self.hbase.region_for_token(token)
        result = yield from self._call_region(
            region.region_id, "rs.get", (region.region_id, key),
            request_bytes=60, response_bytes=expected_bytes, token=token)
        return result

    def scan(self, start_key: str, limit: int,
             record_bytes: int = 1024) -> Generator:
        """Range scan from ``start_key``, possibly spanning regions.

        Walks regions in *token* order (a split inserts its daughter
        mid-list, so region-id order no longer matches key order).
        """
        rows: list[tuple[str, Any, float]] = []
        cursor_token = token_of(start_key)
        cursor = start_key
        while True:
            region = self.hbase.region_for_token(cursor_token)
            remaining = limit - len(rows)
            batch = yield from self._call_region(
                region.region_id, "rs.scan",
                (region.region_id, cursor, remaining),
                request_bytes=70, response_bytes=record_bytes * remaining,
                token=cursor_token)
            if rows and batch:
                # A split between batches can shrink the previous
                # region after it answered; never re-emit keys already
                # returned by the earlier (wider) batch.
                last = rows[-1][0]
                batch = [r for r in batch if r[0] > last]
            rows.extend(batch)
            # The region object's bounds are live (a concurrent split
            # shrinks them), so its current end is the exact resume point.
            next_token = region.end_token
            if len(rows) >= limit or next_token >= KEY_DOMAIN:
                break
            cursor_token = next_token
            cursor = key_for_token(next_token)
        return rows[:limit]
