"""RegionServer: WAL group commit + region request handlers."""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.node import Node
from repro.cluster.topology import DeadlineExceeded
from repro.hdfs.block import DfsFile
from repro.hdfs.client import WAL_SEGMENT_BYTES, DfsClient
from repro.hbase.region import Region
from repro.keyspace import token_of
from repro.sim.kernel import AnyOf, Environment, Event
from repro.sim.resources import BoundedResource, Resource

__all__ = ["GroupCommitWal", "NotServingRegion", "RegionServer"]

#: CPU charged per request on the RegionServer (handler bookkeeping).
_HANDLER_CPU_S = 1.2e-5


class NotServingRegion(Exception):
    """The addressed region is not here, or no longer covers the key.

    HBase's ``NotServingRegionException``: the client's META cache is
    stale (the region moved, or a split shrank it); the client refreshes
    its region map and retries against the current owner.
    """


class GroupCommitWal:
    """One WAL per RegionServer, written through the HDFS pipeline.

    Appends from concurrent handlers are batched: a writer loop drains
    everything that accumulated since the last round and pushes it as one
    append (HBase's FSHLog ring-buffer sync batching), and up to
    ``pipeline_depth`` rounds travel the HDFS pipeline concurrently (the
    real WAL streams packets without waiting for the previous ack).
    Batching plus in-flight overlap is why HBase's *throughput* stays flat
    as the replication factor grows even though each individual ack chain
    gets longer.
    """

    def __init__(self, env: Environment, dfs: DfsClient, name: str,
                 sync: bool = False, pipeline_depth: int = 4) -> None:
        self.env = env
        self.dfs = dfs
        self.name = name
        self.sync = sync
        self._pending: list[tuple[int, Event]] = []
        self._kick: Optional[Event] = None
        self._wal_file: Optional[DfsFile] = None
        self._in_flight = Resource(env, capacity=pipeline_depth)
        self.batches = 0
        self.appends = 0
        env.process(self._writer(), name=f"wal-{name}")

    def append(self, size: int) -> Generator:
        """Enqueue ``size`` bytes; returns once they are pipeline-acked."""
        done = self.env.event()
        self._pending.append((size, done))
        if self._kick is not None and not self._kick.triggered:
            self._kick.succeed()
        yield done

    def _writer(self) -> Generator:
        while True:
            if not self._pending:
                self._kick = self.env.event()
                yield self._kick
                self._kick = None
            batch, self._pending = self._pending, []
            if self._wal_file is None or \
                    self._wal_file.size_bytes >= WAL_SEGMENT_BYTES:
                self._wal_file = yield from self.dfs.create(f"wal/{self.name}")
            slot = self._in_flight.request()
            yield slot
            self.env.process(self._round(batch, self._wal_file, slot),
                             name=f"wal-round-{self.name}")

    def _round(self, batch: list[tuple[int, Event]], wal_file: DfsFile,
               slot) -> Generator:
        try:
            total = sum(size for size, _ in batch)
            yield from self.dfs.append(wal_file, total, sync=self.sync)
            self.batches += 1
            self.appends += len(batch)
            for _, done in batch:
                done.succeed()
        finally:
            self._in_flight.release(slot)


class RegionServer:
    """Serves get/put/scan for the regions assigned to it."""

    def __init__(self, env: Environment, node: Node, dfs: DfsClient,
                 wal_sync: bool = False, handler_slots: int = 16,
                 max_handler_queue: Optional[int] = None) -> None:
        self.env = env
        self.node = node
        self.dfs = dfs
        self.wal = GroupCommitWal(env, dfs, f"rs{node.node_id}", sync=wal_sync)
        #: region_id -> Region, maintained by the HMaster.
        self.regions: dict[int, Region] = {}
        #: Bounded handler pool (hbase.regionserver.handler.count plus a
        #: bounded call queue).  ``None`` when ``max_handler_queue`` is
        #: unset — the pre-defense unbounded behaviour.
        self.handler_pool: Optional[BoundedResource] = None
        if max_handler_queue is not None:
            self.handler_pool = BoundedResource(
                env, capacity=handler_slots, max_queue=max_handler_queue)
        self.ops = {"put": 0, "get": 0, "scan": 0}
        node.register("rs.put", self._handle_put)
        node.register("rs.get", self._handle_get)
        node.register("rs.scan", self._handle_scan)

    def _region(self, region_id: int, key: Optional[str] = None) -> Region:
        region = self.regions.get(region_id)
        if region is None:
            raise NotServingRegion(
                f"region {region_id} not on server {self.node.node_id}")
        if key is not None and not region.contains(token_of(key)):
            # A split shrank the region after the client resolved it —
            # applying the op here would strand the write outside the
            # range readers are routed to.
            raise NotServingRegion(
                f"region {region_id} no longer covers key {key!r}")
        return region

    def _wait_available(self, region: Region) -> Generator:
        if region.available_at > self.env.now:
            yield self.env.timeout(region.available_at - self.env.now)

    def _acquire_slot(self, deadline: Optional[float]) -> Generator:
        """Claim a handler slot (``None`` when pools are unbounded).

        Raises :class:`~repro.sim.resources.Overloaded` synchronously on a
        full call queue; a request whose propagated deadline expires while
        queued withdraws its claim (lazy deletion) and fails with
        :class:`DeadlineExceeded` without ever running.
        """
        pool = self.handler_pool
        if pool is None:
            return None
        req = pool.request()
        if req.triggered:
            return req
        if deadline is None:
            yield req
            return req
        remaining = deadline - self.env.now
        if remaining <= 0:
            req.cancel()
            raise DeadlineExceeded("deadline spent before handler queue")
        timer = self.env.timeout(remaining)
        outcome = yield AnyOf(self.env, [req, timer])
        if req in outcome:
            return req
        req.cancel()
        raise DeadlineExceeded("deadline expired in handler call queue")

    def _release_slot(self, slot) -> None:
        if slot is not None:
            self.handler_pool.release(slot)

    def _handle_put(self, payload) -> Generator:
        region_id, key, value, size, timestamp, *rest = payload
        deadline = rest[0] if rest else None
        region = self._region(region_id, key)
        slot = yield from self._acquire_slot(deadline)
        try:
            yield from self._wait_available(region)
            # Handler CPU rides the same core reservation as the engine
            # put (one timeout event, same total service time).
            yield from region.tree.put(key, value, size, timestamp,
                                       extra_cpu_s=_HANDLER_CPU_S)
            self.ops["put"] += 1
        finally:
            self._release_slot(slot)
        return True

    def _handle_get(self, payload) -> Generator:
        region_id, key, *rest = payload
        deadline = rest[0] if rest else None
        region = self._region(region_id, key)
        slot = yield from self._acquire_slot(deadline)
        try:
            yield from self._wait_available(region)
            result = yield from region.tree.get(key,
                                                extra_cpu_s=_HANDLER_CPU_S)
            self.ops["get"] += 1
        finally:
            self._release_slot(slot)
        return result

    def _handle_scan(self, payload) -> Generator:
        region_id, start_key, limit, *rest = payload
        deadline = rest[0] if rest else None
        region = self._region(region_id, start_key)
        slot = yield from self._acquire_slot(deadline)
        try:
            yield from self._wait_available(region)
            yield from self.node.cpu_work(_HANDLER_CPU_S)
            rows = yield from region.tree.scan(start_key, limit)
            self.ops["scan"] += 1
        finally:
            self._release_slot(slot)
        return rows
