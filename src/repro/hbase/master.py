"""HMaster: region assignment and failover."""

from __future__ import annotations

from typing import Generator

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.hbase.region import Region
from repro.hbase.regionserver import RegionServer

__all__ = ["HMaster"]


class HMaster:
    """Owns the region → RegionServer assignment.

    A background monitor plays the ZooKeeper session-expiry role: when a
    RegionServer's node dies, its regions are redistributed round-robin
    over the survivors after ``detection_s``, and each moved region pays
    ``recovery_s`` of WAL-replay unavailability.
    """

    def __init__(self, cluster: Cluster, node: Node,
                 servers: dict[int, RegionServer], regions: list[Region],
                 detection_s: float = 3.0, recovery_s: float = 2.0) -> None:
        self.cluster = cluster
        self.node = node
        self.servers = servers
        self.regions = {r.region_id: r for r in regions}
        #: region_id -> node_id of the serving RegionServer.
        self.assignment: dict[int, int] = {}
        self.detection_s = detection_s
        self.recovery_s = recovery_s
        self.failovers: list[tuple[float, int, int]] = []
        self._handled_deaths: set[int] = set()
        node.register("master.locate", self._handle_locate)
        cluster.env.process(self._monitor(), name="hmaster-monitor")

    def assign(self, region: Region, server: RegionServer) -> None:
        """Record (and effect) one region's assignment."""
        previous = self.assignment.get(region.region_id)
        if previous is not None and previous in self.servers:
            self.servers[previous].regions.pop(region.region_id, None)
        self.assignment[region.region_id] = server.node.node_id
        server.regions[region.region_id] = region

    def _handle_locate(self, payload) -> Generator:
        yield from self.node.cpu_work(1e-5)
        return dict(self.assignment)

    def _alive_servers(self) -> list[RegionServer]:
        return [s for s in self.servers.values() if s.node.alive]

    def _monitor(self) -> Generator:
        while True:
            yield self.cluster.env.timeout(self.detection_s)
            for node_id, server in self.servers.items():
                if server.node.alive:
                    self._handled_deaths.discard(node_id)
                    continue
                if node_id in self._handled_deaths:
                    continue
                self._handled_deaths.add(node_id)
                self._failover(server)

    def _failover(self, dead: RegionServer) -> None:
        survivors = self._alive_servers()
        if not survivors:
            return
        moved = [self.regions[rid] for rid, nid in self.assignment.items()
                 if nid == dead.node.node_id]
        for i, region in enumerate(moved):
            target = survivors[i % len(survivors)]
            region.move_to(target, self.recovery_s)
            self.assign(region, target)
            self.failovers.append(
                (self.cluster.env.now, region.region_id, target.node.node_id))
        dead.regions.clear()
