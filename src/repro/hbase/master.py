"""HMaster: region assignment, failover, splits and rebalancing."""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.hbase.region import Region
from repro.hbase.regionserver import RegionServer

__all__ = ["HMaster"]


class HMaster:
    """Owns the region → RegionServer assignment.

    A background monitor plays the ZooKeeper session-expiry role: when a
    RegionServer's node dies, its regions are redistributed round-robin
    over the survivors after ``detection_s``, and each moved region pays
    ``recovery_s`` of WAL-replay unavailability.  When a dead server
    *returns*, the monitor rebalances regions back onto it — without
    that, every failover permanently piles regions onto the survivors.

    Planned moves (rebalance, activate, decommission) pay ``move_s``
    instead: a graceful move closes the region — flushing its MemStore,
    so nothing is left to replay — and reopens it on the target, a
    sub-second window rather than a crash recovery.

    ``standby`` servers are provisioned but out of service: they receive
    no regions until :meth:`activate` brings them in (scale-out), and
    :meth:`decommission` drains a server back to standby (scale-in).
    """

    def __init__(self, cluster: Cluster, node: Node,
                 servers: dict[int, RegionServer], regions: list[Region],
                 detection_s: float = 3.0, recovery_s: float = 2.0,
                 move_s: float = 0.25,
                 standby: Iterable[int] = ()) -> None:
        self.cluster = cluster
        self.node = node
        self.servers = servers
        self.regions = {r.region_id: r for r in regions}
        #: region_id -> node_id of the serving RegionServer.
        self.assignment: dict[int, int] = {}
        self.detection_s = detection_s
        self.recovery_s = recovery_s
        self.move_s = move_s
        self.failovers: list[tuple[float, int, int]] = []
        #: (time, region_id, target_node_id) for every balancing move
        #: (rejoin rebalance, activate, decommission drain).
        self.rebalances: list[tuple[float, int, int]] = []
        #: Provisioned-but-idle servers (see class docstring).
        self.standby: set[int] = set(standby)
        self._handled_deaths: set[int] = set()
        node.register("master.locate", self._handle_locate)
        cluster.env.process(self._monitor(), name="hmaster-monitor")

    def assign(self, region: Region, server: RegionServer) -> None:
        """Record (and effect) one region's assignment."""
        previous = self.assignment.get(region.region_id)
        if previous is not None and previous in self.servers:
            self.servers[previous].regions.pop(region.region_id, None)
        self.assignment[region.region_id] = server.node.node_id
        server.regions[region.region_id] = region

    def _handle_locate(self, payload) -> Generator:
        yield from self.node.cpu_work(1e-5)
        return dict(self.assignment)

    def _alive_servers(self) -> list[RegionServer]:
        return [s for nid, s in sorted(self.servers.items())
                if s.node.alive and nid not in self.standby]

    def _monitor(self) -> Generator:
        while True:
            yield self.cluster.env.timeout(self.detection_s)
            for node_id, server in self.servers.items():
                if server.node.alive:
                    if node_id in self._handled_deaths:
                        # The server came back: it is empty (its regions
                        # failed over), so spread load back onto it.
                        self._handled_deaths.discard(node_id)
                        self.rebalance()
                    continue
                if node_id in self._handled_deaths:
                    continue
                self._handled_deaths.add(node_id)
                self._failover(server)

    def _failover(self, dead: RegionServer) -> None:
        survivors = self._alive_servers()
        if not survivors:
            return
        moved = [self.regions[rid] for rid, nid in self.assignment.items()
                 if nid == dead.node.node_id]
        for i, region in enumerate(moved):
            target = survivors[i % len(survivors)]
            region.move_to(target, self.recovery_s)
            self.assign(region, target)
            self.failovers.append(
                (self.cluster.env.now, region.region_id, target.node.node_id))
        dead.regions.clear()

    # -- balancing / elasticity -------------------------------------------

    def _region_counts(self,
                       servers: list[RegionServer]) -> dict[int, int]:
        counts = {s.node.node_id: 0 for s in servers}
        for nid in self.assignment.values():
            if nid in counts:
                counts[nid] += 1
        return counts

    def _move(self, region: Region, target: RegionServer) -> None:
        region.move_to(target, self.move_s)
        self.assign(region, target)
        self.rebalances.append(
            (self.cluster.env.now, region.region_id, target.node.node_id))

    def rebalance(self) -> int:
        """Even out region counts across in-service servers.

        Deterministic minimal-moves plan: the remainder slots of the
        ideal ``total/servers`` distribution go to the currently fullest
        servers (so already-balanced servers never trade regions), then
        donors shed their highest-id regions down to target and
        receivers fill in node-id order.  Each move pays ``move_s`` of
        region unavailability (a graceful close/flush/reopen, not a
        WAL replay).  Returns the number of moves.
        """
        alive = self._alive_servers()
        if not alive:
            return 0
        counts = self._region_counts(alive)
        base, extra = divmod(sum(counts.values()), len(alive))
        order = sorted(alive, key=lambda s: (-counts[s.node.node_id],
                                             s.node.node_id))
        target = {s.node.node_id: base + (1 if i < extra else 0)
                  for i, s in enumerate(order)}
        spare: list[int] = []
        for server in alive:
            nid = server.node.node_id
            owned = sorted(r for r, owner in self.assignment.items()
                           if owner == nid)
            excess = len(owned) - target[nid]
            if excess > 0:
                spare.extend(owned[-excess:])
                counts[nid] -= excess
        moves = 0
        pool = iter(spare)
        for server in alive:
            nid = server.node.node_id
            while counts[nid] < target[nid]:
                self._move(self.regions[next(pool)], server)
                counts[nid] += 1
                moves += 1
        return moves

    def most_loaded_server(self) -> Optional[RegionServer]:
        """The in-service server with the most regions (ties by node id)."""
        alive = self._alive_servers()
        if not alive:
            return None
        counts = self._region_counts(alive)
        return max(alive, key=lambda s: (counts[s.node.node_id],
                                         -s.node.node_id))

    def activate(self, node_id: int) -> int:
        """Bring a standby server into service; rebalance onto it."""
        if node_id not in self.servers:
            raise ValueError(f"unknown RegionServer node {node_id}")
        self.standby.discard(node_id)
        return self.rebalance()

    def decommission(self, node_id: int) -> int:
        """Gracefully drain a server back to standby (scale-in).

        Its regions move to the least-loaded remaining servers; returns
        the number of regions moved.
        """
        if node_id not in self.servers:
            raise ValueError(f"unknown RegionServer node {node_id}")
        self.standby.add(node_id)
        targets = self._alive_servers()
        if not targets:
            self.standby.discard(node_id)
            raise ValueError("cannot decommission the last active server")
        counts = self._region_counts(targets)
        moved = sorted(rid for rid, nid in self.assignment.items()
                       if nid == node_id)
        for region_id in moved:
            target = min(targets, key=lambda s: (counts[s.node.node_id],
                                                 s.node.node_id))
            self._move(self.regions[region_id], target)
            counts[target.node.node_id] += 1
        return len(moved)
