"""Wires a full HBase deployment onto a simulated cluster.

Topology per the paper: the last node runs HMaster + NameNode and hosts
the YCSB client; every other node runs a RegionServer co-located with a
DataNode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.topology import Cluster
from repro.keyspace import KEY_DOMAIN
from repro.hbase.master import HMaster
from repro.hbase.region import Region
from repro.hbase.regionserver import RegionServer
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.storage.lsm import StorageSpec

__all__ = ["HBaseCluster", "HBaseSpec"]


@dataclass(frozen=True)
class HBaseSpec:
    """Deployment knobs for one experiment cell."""

    #: HDFS replication factor — the paper's replication knob for HBase.
    replication: int = 3
    regions_per_server: int = 2
    storage: StorageSpec = field(default_factory=StorageSpec)
    #: Durability ablation: ack WAL pipeline packets from disk, not memory.
    wal_sync: bool = False
    failure_detection_s: float = 3.0
    region_recovery_s: float = 2.0
    #: Concurrent RPC handlers per RegionServer (hbase.regionserver
    #: .handler.count analogue).  Only enforced when
    #: ``max_handler_queue`` is set.
    handler_slots: int = 16
    #: Bounded handler call-queue depth; requests beyond it are shed with
    #: :class:`~repro.sim.resources.Overloaded`.  ``None`` = unbounded
    #: (the pre-defense behaviour).
    max_handler_queue: Optional[int] = None


class HBaseCluster:
    """An HBase instance deployed over a :class:`~repro.cluster.topology.Cluster`."""

    def __init__(self, cluster: Cluster, spec: HBaseSpec) -> None:
        if cluster.spec.n_nodes < 2:
            raise ValueError("HBase needs at least one server + one master node")
        self.cluster = cluster
        self.spec = spec
        self.master_node = cluster.node(cluster.spec.n_nodes - 1)
        self.server_nodes = cluster.nodes[:-1]

        self.datanodes = {n.node_id: DataNode(n) for n in self.server_nodes}
        self.namenode = NameNode(self.master_node, list(self.datanodes),
                                 cluster.rngs.stream("hdfs.placement"))
        self.regionservers: dict[int, RegionServer] = {}
        for n in self.server_nodes:
            dfs = DfsClient(cluster, self.namenode, self.datanodes, n,
                            spec.replication,
                            cluster.rngs.stream(f"hdfs.client.{n.node_id}"))
            self.regionservers[n.node_id] = RegionServer(
                cluster.env, n, dfs, wal_sync=spec.wal_sync,
                handler_slots=spec.handler_slots,
                max_handler_queue=spec.max_handler_queue)

        self.regions = self._presplit()
        self.master = HMaster(cluster, self.master_node, self.regionservers,
                              self.regions,
                              detection_s=spec.failure_detection_s,
                              recovery_s=spec.region_recovery_s)
        servers = list(self.regionservers.values())
        for i, region in enumerate(self.regions):
            server = servers[i % len(servers)]
            region.open_on(server, spec.storage)
            self.master.assign(region, server)

    def _presplit(self) -> list[Region]:
        n_regions = len(self.server_nodes) * self.spec.regions_per_server
        step = KEY_DOMAIN // n_regions
        regions = []
        for i in range(n_regions):
            start = i * step
            end = (i + 1) * step if i < n_regions - 1 else KEY_DOMAIN
            regions.append(Region(i, start, end))
        return regions

    def region_for_token(self, token: int) -> Region:
        """The region owning ``token`` (direct index into the even pre-split)."""
        index = min(token * len(self.regions) // KEY_DOMAIN,
                    len(self.regions) - 1)
        region = self.regions[index]
        # Pre-split is uniform, so direct indexing is correct; assert in
        # case a future split policy changes that.
        assert region.contains(token), (token, region)
        return region
