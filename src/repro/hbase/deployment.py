"""Wires a full HBase deployment onto a simulated cluster.

Topology per the paper: the last node runs HMaster + NameNode and hosts
the YCSB client; every other node runs a RegionServer co-located with a
DataNode.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cluster.topology import Cluster
from repro.keyspace import KEY_DOMAIN
from repro.hbase.master import HMaster
from repro.hbase.region import Region
from repro.hbase.regionserver import RegionServer
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.storage.lsm import StorageSpec

__all__ = ["HBaseCluster", "HBaseSpec"]


@dataclass(frozen=True)
class HBaseSpec:
    """Deployment knobs for one experiment cell."""

    #: HDFS replication factor — the paper's replication knob for HBase.
    replication: int = 3
    regions_per_server: int = 2
    storage: StorageSpec = field(default_factory=StorageSpec)
    #: Durability ablation: ack WAL pipeline packets from disk, not memory.
    wal_sync: bool = False
    failure_detection_s: float = 3.0
    region_recovery_s: float = 2.0
    #: Unavailability per *planned* region move (rebalance, activate,
    #: decommission, split): a graceful close flushes the MemStore and
    #: reopens on the target, so there is no WAL to replay — a
    #: sub-second window where crash failover pays ``region_recovery_s``.
    region_move_s: float = 0.25
    #: Concurrent RPC handlers per RegionServer (hbase.regionserver
    #: .handler.count analogue).  Only enforced when
    #: ``max_handler_queue`` is set.
    handler_slots: int = 16
    #: Bounded handler call-queue depth; requests beyond it are shed with
    #: :class:`~repro.sim.resources.Overloaded`.  ``None`` = unbounded
    #: (the pre-defense behaviour).
    max_handler_queue: Optional[int] = None
    #: Trailing server nodes provisioned but out of service (no initial
    #: regions); the elasticity campaign activates them at runtime.
    spare_servers: int = 0


class HBaseCluster:
    """An HBase instance deployed over a :class:`~repro.cluster.topology.Cluster`."""

    def __init__(self, cluster: Cluster, spec: HBaseSpec) -> None:
        if cluster.spec.n_nodes < 2:
            raise ValueError("HBase needs at least one server + one master node")
        self.cluster = cluster
        self.spec = spec
        self.master_node = cluster.node(cluster.spec.n_nodes - 1)
        self.server_nodes = cluster.nodes[:-1]

        self.datanodes = {n.node_id: DataNode(n) for n in self.server_nodes}
        self.namenode = NameNode(self.master_node, list(self.datanodes),
                                 cluster.rngs.stream("hdfs.placement"))
        self.regionservers: dict[int, RegionServer] = {}
        for n in self.server_nodes:
            dfs = DfsClient(cluster, self.namenode, self.datanodes, n,
                            spec.replication,
                            cluster.rngs.stream(f"hdfs.client.{n.node_id}"))
            self.regionservers[n.node_id] = RegionServer(
                cluster.env, n, dfs, wal_sync=spec.wal_sync,
                handler_slots=spec.handler_slots,
                max_handler_queue=spec.max_handler_queue)

        if not 0 <= spec.spare_servers < len(self.server_nodes):
            raise ValueError("spare_servers must leave at least one "
                             "in-service RegionServer")
        spare_ids = [n.node_id for n in
                     self.server_nodes[len(self.server_nodes)
                                       - spec.spare_servers:]]

        self.regions = self._presplit()
        #: Region start tokens, parallel to ``regions`` (kept sorted by
        #: ``_reindex`` as splits add daughters).
        self._starts: list[int] = []
        self._reindex()
        #: (time, parent_region_id, daughter_region_id) per split.
        self.splits: list[tuple[float, int, int]] = []
        self.master = HMaster(cluster, self.master_node, self.regionservers,
                              self.regions,
                              detection_s=spec.failure_detection_s,
                              recovery_s=spec.region_recovery_s,
                              move_s=spec.region_move_s,
                              standby=spare_ids)
        servers = [s for nid, s in sorted(self.regionservers.items())
                   if nid not in spare_ids]
        for i, region in enumerate(self.regions):
            server = servers[i % len(servers)]
            region.open_on(server, spec.storage)
            self.master.assign(region, server)

    def _presplit(self) -> list[Region]:
        n_servers = len(self.server_nodes) - self.spec.spare_servers
        n_regions = n_servers * self.spec.regions_per_server
        step = KEY_DOMAIN // n_regions
        regions = []
        for i in range(n_regions):
            start = i * step
            end = (i + 1) * step if i < n_regions - 1 else KEY_DOMAIN
            regions.append(Region(i, start, end))
        return regions

    def _reindex(self) -> None:
        self.regions.sort(key=lambda r: r.start_token)
        self._starts = [r.start_token for r in self.regions]

    def region_for_token(self, token: int) -> Region:
        """The region owning ``token`` (bisect over the sorted starts)."""
        index = bisect.bisect_right(self._starts, token) - 1
        region = self.regions[index]
        assert region.contains(token), (token, region)
        return region

    # -- elasticity --------------------------------------------------------

    def scale_out_candidate(self) -> Optional[int]:
        """The standby server a scale-out would activate (lowest id)."""
        standby = sorted(nid for nid in self.master.standby
                         if self.cluster.node(nid).alive)
        return standby[0] if standby else None

    def scale_in_candidate(self) -> Optional[int]:
        """The server a scale-in would drain (highest live id), or
        ``None`` when only one in-service server would remain."""
        active = sorted(nid for nid, s in self.regionservers.items()
                        if s.node.alive and nid not in self.master.standby)
        return active[-1] if len(active) > 1 else None

    def apply_scale_out(self, node_id: int) -> Generator:
        """Activate a standby server; regions rebalanced onto it pay the
        graceful close/reopen window before the transfer counts as done."""
        self.master.activate(node_id)
        yield self.cluster.env.timeout(self.spec.region_move_s)

    def apply_scale_in(self, node_id: int) -> Generator:
        """Drain a server back to standby (same move accounting)."""
        self.master.decommission(node_id)
        yield self.cluster.env.timeout(self.spec.region_move_s)

    def split_region(self, region: Region) -> Region:
        """Split ``region`` at its midpoint token; returns the daughter.

        The daughter opens on the same server (real HBase moves it only
        when the balancer later decides to) and both halves pay the
        graceful close/reopen window (``region_move_s``).
        """
        daughter_id = max(r.region_id for r in self.regions) + 1
        daughter = region.split(daughter_id, self.spec.storage)
        self.regions.append(daughter)
        self._reindex()
        server = self.regionservers[region.medium.server.node.node_id]
        self.master.regions[daughter.region_id] = daughter
        self.master.assign(daughter, server)
        now = self.cluster.env.now
        until = now + self.spec.region_move_s
        region.available_at = max(region.available_at, until)
        daughter.available_at = max(daughter.available_at, until)
        self.splits.append((now, region.region_id, daughter.region_id))
        return daughter
