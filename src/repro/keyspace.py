"""The shared key space.

YCSB identifies records by an insertion index and *scrambles* it so that
hot indexes (zipfian heads, "latest" tails) spread across the cluster —
the paper's "local trap" warning.  Both databases shard on the scrambled
value: HBase by range over pre-split regions, Cassandra by token ring.

Keys are ``user`` + zero-padded decimal so lexicographic order equals
numeric order (HBase range scans rely on this).
"""

from __future__ import annotations

from functools import lru_cache

__all__ = ["KEY_DOMAIN", "fnv64", "key_for_index", "key_for_token", "token_of"]

#: Tokens live in [0, KEY_DOMAIN).
KEY_DOMAIN = 1 << 63

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


@lru_cache(maxsize=131072)
def fnv64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's hash).

    Cached: zipfian-skewed workloads hash the same hot ranks over and
    over, and the pure-Python 8-round loop is a measurable slice of the
    per-op profile.  ``fnv64`` is a pure function, so caching cannot
    perturb determinism.
    """
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


def key_for_token(token: int) -> str:
    """Render a token as a record key (fixed width, order-preserving)."""
    return f"user{token:019d}"


@lru_cache(maxsize=131072)
def key_for_index(index: int) -> str:
    """Key of the ``index``-th inserted record (scrambled placement).

    Cached for the same reason as :func:`fnv64`: the zipfian head means
    a handful of indexes account for most rendered keys.
    """
    return key_for_token(fnv64(index) % KEY_DOMAIN)


def token_of(key: str) -> int:
    """Inverse of :func:`key_for_token`."""
    return int(key[4:])
