"""Operation histories: what every client saw, as intervals.

A :class:`HistoryRecorder` wraps any :class:`~repro.ycsb.db.DbBinding`
(so the same hook covers the HBase client, the Cassandra session, and
anything driving them — YCSB workers, probes) and logs one
:class:`HistoryOp` per operation: the invocation/response interval in
simulated time, the session (the issuing process's name, e.g.
``ycsb-3``), the consistency level in force, and the outcome.

Outcome classification is the part correctness hinges on:

- ``ok`` — the database acknowledged the operation;
- ``fail`` — the operation definitively did not take effect.  For
  writes that is only :class:`~repro.cassandra.consistency.UnavailableError`
  (raised before any replica mutation is issued); failed reads have no
  effect by construction.
- ``indeterminate`` — a write that errored *after* it may have reached
  replicas (timeouts, dead coordinators, shed requests, spent
  deadlines).  The checkers must allow such a write to take effect at
  any later point — or never (Jepsen's "info" operations).

Write tagging: with ``tag_writes`` (the default) every recorded write
replaces its payload with a unique tag (``h<op_id>``).  Record values
are opaque to the simulation — the byte size travels separately — so
tagging changes no timing, but it makes the register history *unique
write values*, which the linearizability search requires to map a read
back to the write it observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.cassandra.consistency import UnavailableError
from repro.ycsb.client import OPERATION_ERRORS

__all__ = ["History", "HistoryOp", "HistoryRecorder"]


@dataclass(frozen=True)
class HistoryOp:
    """One recorded operation interval."""

    op_id: int
    #: Issuing process name (``ycsb-N``, ``staleness-probe``, ...).
    session: str
    #: "write" | "read" | "scan".
    kind: str
    key: str
    invoke_s: float
    response_s: float
    #: "ok" | "fail" | "indeterminate" (see module docstring).
    outcome: str
    #: Written tag (writes) / returned value (reads) / row count (scans).
    value: Any = None
    #: Server-side write timestamp an ``ok`` read returned with its value.
    timestamp: Optional[float] = None
    #: Consistency level in force, when the binding has one.
    cl: Optional[str] = None
    #: Exception type name for non-ok outcomes.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


@dataclass
class History:
    """All operations one recorded run observed, in completion order."""

    ops: list[HistoryOp] = field(default_factory=list)

    def add(self, op: HistoryOp) -> None:
        self.ops.append(op)

    def per_key(self) -> dict[str, list[HistoryOp]]:
        """Register sub-histories: non-scan ops grouped by key, in
        invocation order (scans touch key ranges, not registers)."""
        grouped: dict[str, list[HistoryOp]] = {}
        for op in self.ops:
            if op.kind == "scan":
                continue
            grouped.setdefault(op.key, []).append(op)
        for ops in grouped.values():
            ops.sort(key=lambda o: (o.invoke_s, o.op_id))
        return grouped

    def sessions(self) -> set[str]:
        return {op.session for op in self.ops}

    def summary(self) -> dict:
        """JSON-safe op counts (the report's header block)."""
        kinds = {"write": 0, "read": 0, "scan": 0}
        outcomes = {"ok": 0, "fail": 0, "indeterminate": 0}
        for op in self.ops:
            kinds[op.kind] += 1
            outcomes[op.outcome] += 1
        return {
            "ops": len(self.ops),
            "writes": kinds["write"],
            "reads": kinds["read"],
            "scans": kinds["scan"],
            "ok": outcomes["ok"],
            "failed": outcomes["fail"],
            "indeterminate": outcomes["indeterminate"],
            "keys": len({op.key for op in self.ops if op.kind != "scan"}),
            "sessions": len(self.sessions()),
        }


class HistoryRecorder:
    """Records a :class:`History` while delegating to a real binding.

    Implements the :class:`~repro.ycsb.db.DbBinding` protocol, so it
    drops transparently between the YCSB client and either database
    client.  ``read_cl``/``write_cl`` are zero-argument callables
    returning the CL name in force (Cassandra's session can change CLs
    per run); leave them ``None`` for engines without per-request CLs.
    """

    def __init__(self, inner, env, history: Optional[History] = None,
                 tag_writes: bool = True,
                 read_cl: Optional[Callable[[], str]] = None,
                 write_cl: Optional[Callable[[], str]] = None,
                 tag_prefix: str = "h") -> None:
        self.inner = inner
        self.env = env
        self.history = history if history is not None else History()
        self.tag_writes = tag_writes
        #: Tag namespace.  When several recorded runs share one database
        #: (a geo cell measures once per client region), a bare ``h<id>``
        #: from an earlier run survives in the store and would alias a
        #: *different* op id in the next run's history — the checker
        #: would map a stale-but-legitimate pre-run value onto one of its
        #: own writes.  Callers therefore pass a per-run prefix.
        self.tag_prefix = tag_prefix
        self._read_cl = read_cl
        self._write_cl = write_cl
        self._next_id = 0

    def _session(self) -> str:
        process = self.env.active_process
        return process.name if process is not None else "main"

    def _record(self, **kwargs) -> None:
        self.history.add(HistoryOp(response_s=self.env.now, **kwargs))

    def _write(self, method, key: str, value: Any, size: int) -> Generator:
        self._next_id += 1
        op_id = self._next_id
        tag = f"{self.tag_prefix}{op_id}" if self.tag_writes else value
        session = self._session()
        cl = self._write_cl() if self._write_cl is not None else None
        invoke = self.env.now
        try:
            result = yield from method(key, tag, size)
        except OPERATION_ERRORS as exc:
            # UnavailableError is raised before any replica mutation is
            # issued — a definitive no.  Every other failure leaves the
            # write's effect unknown: it may have landed on some
            # replicas, may land later (hints), or never.
            outcome = ("fail" if isinstance(exc, UnavailableError)
                       else "indeterminate")
            self._record(op_id=op_id, session=session, kind="write", key=key,
                         invoke_s=invoke, outcome=outcome, value=tag, cl=cl,
                         error=type(exc).__name__)
            raise
        self._record(op_id=op_id, session=session, kind="write", key=key,
                     invoke_s=invoke, outcome="ok", value=tag, cl=cl)
        return result

    def insert(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self._write(self.inner.insert, key, value, size)
        return result

    def update(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self._write(self.inner.update, key, value, size)
        return result

    def read(self, key: str, size: int) -> Generator:
        self._next_id += 1
        op_id = self._next_id
        session = self._session()
        cl = self._read_cl() if self._read_cl is not None else None
        invoke = self.env.now
        try:
            result = yield from self.inner.read(key, size)
        except OPERATION_ERRORS as exc:
            # A failed read has no effect on the register.
            self._record(op_id=op_id, session=session, kind="read", key=key,
                         invoke_s=invoke, outcome="fail", cl=cl,
                         error=type(exc).__name__)
            raise
        value, timestamp = result if result is not None else (None, None)
        self._record(op_id=op_id, session=session, kind="read", key=key,
                     invoke_s=invoke, outcome="ok", value=value,
                     timestamp=timestamp, cl=cl)
        return result

    def scan(self, start_key: str, limit: int, record_bytes: int) -> Generator:
        self._next_id += 1
        op_id = self._next_id
        session = self._session()
        cl = self._read_cl() if self._read_cl is not None else None
        invoke = self.env.now
        try:
            rows = yield from self.inner.scan(start_key, limit, record_bytes)
        except OPERATION_ERRORS as exc:
            self._record(op_id=op_id, session=session, kind="scan",
                         key=start_key, invoke_s=invoke, outcome="fail",
                         cl=cl, error=type(exc).__name__)
            raise
        self._record(op_id=op_id, session=session, kind="scan", key=start_key,
                     invoke_s=invoke, outcome="ok",
                     value=len(rows) if rows else 0, cl=cl)
        return rows
