"""Seed exploration: hunt for consistency violations across schedules.

Fans N seeds x one fault-schedule template (crash / flap / partition /
slow from :mod:`repro.cluster.failure`) through the parallel cell
runner as ordinary benchmark cells with history recording switched on
(``RunSpec.check``), then aggregates the per-seed consistency reports
into one sweep verdict:

- violation totals by kind across the whole matrix;
- the seeds that violated, and the **minimal reproducing seed**;
- a replay verification: the minimal seed is re-executed from scratch
  (bypassing the cell cache) and must reproduce its report exactly —
  the deterministic kernel makes every found violation a repeatable
  test case, which is the point of exploring seeds instead of wall
  clocks.

Wired to the CLI as ``repro-bench check`` (see :mod:`repro.core.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

from repro.cassandra.consistency import ConsistencyLevel
from repro.cluster.failure import FaultSpec
from repro.consistency.oracle import (SESSION_KINDS, VIOLATION_KINDS,
                                      unexpected_violations)
from repro.core.config import default_check_config, scaled_stress_storage
from repro.core.runner import CellRunner, CellSpec, RunSpec, execute_cell

__all__ = [
    "CHECK_CL_MODES",
    "CheckScale",
    "QUICK_CHECK_SCALE",
    "check_cells",
    "check_sweep",
]

#: Consistency rounds the explorer can drive (read CL, write CL) —
#: the paper's §4.3 modes.  QUORUM and ALL are strong (R+W > RF at
#: RF 3); ONE is the eventually consistent round the session checkers
#: target.  HBase has no per-request CL and always runs one "n/a" mode.
CHECK_CL_MODES: dict[str, tuple[ConsistencyLevel, ConsistencyLevel]] = {
    "ONE": (ConsistencyLevel.ONE, ConsistencyLevel.ONE),
    "QUORUM": (ConsistencyLevel.QUORUM, ConsistencyLevel.QUORUM),
    "ALL": (ConsistencyLevel.ONE, ConsistencyLevel.ALL),
}


@dataclass(frozen=True)
class CheckScale:
    """Scale knobs for one consistency-check cell.

    Deliberately small: the oracle needs operation interleavings, not
    statistical latency mass, and a 50-seed matrix must stay cheap.
    The fault window ends well before the run does, so the history
    covers fault, heal, *and* the post-heal window where a weak CL
    serves stale replicas until hint replay / read repair catches up.
    """

    record_count: int = 300
    operation_count: int = 2_500
    n_threads: int = 8
    n_nodes: int = 6
    target_throughput: float = 1_200.0
    #: When the fault fires / how long it lasts, relative to the
    #: measured run's start (the run lasts ~operation_count/target s).
    fault_at_s: float = 0.5
    fault_duration_s: float = 0.8
    #: Service-time multiplier for the gray-failure kinds.
    severity: float = 6.0
    #: partition only: nodes on the minority side.
    span: int = 1


#: Faster settings for CI smoke and --quick runs.
QUICK_CHECK_SCALE = CheckScale(record_count=150, operation_count=1_000,
                               n_threads=6, n_nodes=5,
                               target_throughput=1_000.0,
                               fault_at_s=0.3, fault_duration_s=0.5)


def check_cells(db: str, mode: str = "QUORUM",
                seeds: Union[int, Sequence[int]] = 25,
                fault: Optional[str] = None,
                no_repair: bool = False,
                scale: Optional[CheckScale] = None) -> list[CellSpec]:
    """One cell per seed: same template, different schedule."""
    scale = scale or CheckScale()
    if db == "cassandra" and mode not in CHECK_CL_MODES:
        raise ValueError(f"unknown consistency mode {mode!r}; "
                         f"choose from {sorted(CHECK_CL_MODES)}")
    seed_list = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
    read_cl = write_cl = None
    if db == "cassandra":
        read_cl, write_cl = CHECK_CL_MODES[mode]
    cells = []
    for seed in seed_list:
        config = default_check_config(
            db,
            read_cl=read_cl or ConsistencyLevel.ONE,
            write_cl=write_cl or ConsistencyLevel.ONE,
            seed=seed, no_repair=no_repair)
        config = replace(
            config, record_count=scale.record_count,
            operation_count=scale.operation_count,
            n_threads=scale.n_threads, n_nodes=scale.n_nodes,
            target_throughput=scale.target_throughput,
            storage=scaled_stress_storage(scale.record_count, 1000,
                                          scale.n_nodes - 1))
        if fault is not None:
            # Node 0 is a server in both deployments (the client — and
            # HBase's master — live on the last node).
            config = replace(config, faults=(FaultSpec(
                kind=fault, node_id=0, at_s=scale.fault_at_s,
                duration_s=scale.fault_duration_s,
                severity=scale.severity, span=scale.span),))
        label_mode = mode if db == "cassandra" else "n/a"
        cells.append(CellSpec(
            key=seed,
            label=(f"check/{db}/cl={label_mode}/"
                   f"{fault or 'healthy'}/seed={seed}"),
            config=config,
            runs=(RunSpec(
                workload="read_update",
                target_throughput=scale.target_throughput,
                read_cl=read_cl.value if read_cl else None,
                write_cl=write_cl.value if write_cl else None,
                faults=fault is not None,
                check=True),),
            warm=None))
    return cells


def check_sweep(db: str, mode: str = "QUORUM",
                seeds: Union[int, Sequence[int]] = 25,
                fault: Optional[str] = None,
                no_repair: bool = False,
                scale: Optional[CheckScale] = None,
                runner: Optional[CellRunner] = None,
                verify_replay: bool = True) -> dict:
    """Explore ``seeds`` schedules and aggregate the violation verdict.

    Returns a JSON-safe dict; see the module docstring for the shape.
    With ``verify_replay`` the minimal violating seed is re-executed
    from scratch (no cache, in-process) and ``replay_verified`` records
    whether the fresh report matched the sweep's bit for bit.
    """
    cells = check_cells(db, mode=mode, seeds=seeds, fault=fault,
                        no_repair=no_repair, scale=scale)
    payloads = (runner or CellRunner()).run(cells)
    per_seed: dict[int, dict] = {}
    by_kind: dict[str, int] = {}
    violating: list[int] = []
    unexpected = 0
    inconclusive = 0
    total_j = total_usd = 0.0
    total_ops = 0
    metered = False
    for cell, payload in zip(cells, payloads):
        summary = payload["runs"][0]
        # Energy rolls up across the matrix: joules add, so the
        # aggregate is sum-of-joules over sum-of-ops.  ``.get`` keeps
        # payloads cached before the energy meter renderable.
        energy, cost = summary.get("energy"), summary.get("cost")
        if energy is not None and cost is not None:
            metered = True
            total_j += energy["total_j"]
            total_usd += cost["total_usd"]
            total_ops += summary["ops"]
        report = summary["consistency"]
        per_seed[cell.key] = report
        # Canonical kind order, not dict order: a payload that
        # round-tripped through the cell cache comes back with sorted
        # keys, and the aggregate must render identically either way.
        for kind in VIOLATION_KINDS:
            by_kind[kind] = (by_kind.get(kind, 0)
                             + report["violations_by_kind"].get(kind, 0))
        unexpected += unexpected_violations(report)
        inconclusive += report["inconclusive_keys"]
        if report["violations"]:
            violating.append(cell.key)

    min_repro = min(violating) if violating else None
    replay_verified: Optional[bool] = None
    if verify_replay and min_repro is not None:
        spec = cells[[cell.key for cell in cells].index(min_repro)]
        fresh = execute_cell(spec)
        replay_verified = (fresh["runs"][0]["consistency"]
                           == per_seed[min_repro])

    session_total = sum(by_kind.get(kind, 0) for kind in SESSION_KINDS)
    return {
        "db": db,
        "mode": mode if db == "cassandra" else "n/a",
        "fault": fault,
        "no_repair": no_repair,
        "seeds": [cell.key for cell in cells],
        "per_seed": per_seed,
        "violations_by_kind": by_kind,
        "total_violations": sum(by_kind.values()),
        "session_violations": session_total,
        "unexpected_violations": unexpected,
        "inconclusive_keys": inconclusive,
        "violating_seeds": violating,
        "min_repro_seed": min_repro,
        "replay_verified": replay_verified,
        "example_violations": (per_seed[min_repro]["examples"][:10]
                               if min_repro is not None else []),
        "joules_per_op": (total_j / total_ops
                          if metered and total_ops else None),
        "usd_per_mops": (total_usd / (total_ops / 1e6)
                         if metered and total_ops else None),
    }
