"""Per-key consistency checkers over recorded histories.

Every record key is an independent last-write-wins register, so each
checker works on one key's sub-history (short — hundreds of ops at
most), which is what makes the Wing & Gong linearizability search
feasible here.

Soundness notes (why a reported violation is real, never a model
artefact):

- **Linearizability** (strong configs, R+W > RF): interval search over
  unique-valued writes.  An ``indeterminate`` write's effect window
  extends to infinity and the write is *optional* — it may linearize
  anywhere after its invocation or never have happened (Jepsen's "info"
  ops).  Reads returning a value outside the tracked write set (a
  pre-run row, or no row) map to one *untracked* initial state; such a
  read must linearize before any tracked write to its key, which is
  sound because nothing else writes workload keys while recording.
- **Staleness / session guarantees** (weak CLs): reads return the
  server-side write timestamp with the value, and a write's timestamp
  is assigned inside its invocation/response interval.  So for a write
  *w* that completed before a read was invoked, ``ts_read < w.invoke``
  proves the read returned a strictly older version — strict
  comparisons keep the check sound under ties.
- **Convergence**: after quiescence every *live* replica of a key must
  store the same newest timestamp (inspected directly, no simulated
  I/O).  Checked for Cassandra only — HBase regions have a single
  serving owner, so there is nothing to diverge (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.consistency.history import History, HistoryOp

__all__ = [
    "CheckOutcome",
    "Violation",
    "check_convergence",
    "check_history",
    "check_linearizable_key",
]

#: Sentinel register value for "not written by a tracked op" — the
#: state before the first recorded write (pre-run rows and missing rows
#: both map here; a linearizable register cannot return to it once a
#: tracked write has linearized).
UNTRACKED = object()


@dataclass(frozen=True)
class Violation:
    """One checked-invariant breach, JSON-safe via :meth:`to_dict`."""

    #: "linearizability" | "stale_read" | "read_your_writes" |
    #: "monotonic_reads" | "convergence".
    kind: str
    key: str
    detail: str
    session: Optional[str] = None
    #: Simulation time of the violating observation.
    at_s: Optional[float] = None
    #: Staleness lag of the observation (seconds): how long before the
    #: read's invocation the freshest missed write had already completed.
    #: Only set for freshness violations (stale_read / read_your_writes);
    #: the adaptive sweep compares it against the declared bound S.
    lag_s: Optional[float] = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "key": self.key, "session": self.session,
                "at_s": self.at_s, "lag_s": self.lag_s,
                "detail": self.detail}


@dataclass
class CheckOutcome:
    """Everything one history check produced."""

    violations: list[Violation] = field(default_factory=list)
    #: Keys whose linearizability search exhausted its state budget
    #: (neither proven nor refuted).
    inconclusive_keys: list[str] = field(default_factory=list)
    keys_checked: int = 0
    #: Total states the linearizability searches explored.
    states_explored: int = 0

    def count(self, kind: str) -> int:
        return sum(1 for v in self.violations if v.kind == kind)

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return counts


# -- linearizability (Wing & Gong interval search) -------------------------

@dataclass(frozen=True)
class _Item:
    """One searchable op: interval + register transition."""

    op_id: int
    kind: str  # "write" | "read"
    value: object
    start: float
    end: float
    #: Must appear in the linearization ("ok" ops); indeterminate
    #: writes are optional.
    required: bool


def _items_for_key(ops: list[HistoryOp]) -> list[_Item]:
    writes = [op for op in ops if op.kind == "write" and op.outcome != "fail"]
    tracked = {op.value for op in writes}
    items = []
    for op in writes:
        indeterminate = op.outcome == "indeterminate"
        items.append(_Item(op.op_id, "write", op.value, op.invoke_s,
                           math.inf if indeterminate else op.response_s,
                           required=not indeterminate))
    for op in ops:
        if op.kind != "read" or op.outcome != "ok":
            continue
        value = op.value if op.value in tracked else UNTRACKED
        items.append(_Item(op.op_id, "read", value, op.invoke_s,
                           op.response_s, required=True))
    return items


def _search(items: list[_Item], max_states: int) -> tuple[Optional[bool], int]:
    """(linearizable?, states explored); ``None`` = budget exhausted."""
    n = len(items)
    required = [item.required for item in items]

    def done(remaining: frozenset) -> bool:
        return not any(required[i] for i in remaining)

    def candidates(remaining: frozenset) -> list[int]:
        # An op can linearize first only if no other pending op's whole
        # interval precedes it (Wing & Gong's minimal-op rule).
        min_end = min(items[i].end for i in remaining)
        cands = [i for i in remaining if items[i].start <= min_end]
        cands.sort(key=lambda i: (items[i].start, items[i].end))
        return cands

    all_ids = frozenset(range(n))
    if done(all_ids):
        return True, 0
    states = 0
    seen = {(all_ids, UNTRACKED)}
    # Each stack frame: (remaining, register value, candidate list, next
    # candidate index) — an explicit DFS, immune to recursion limits.
    stack = [(all_ids, UNTRACKED, candidates(all_ids), 0)]
    while stack:
        remaining, current, cands, at = stack.pop()
        for j in range(at, len(cands)):
            i = cands[j]
            item = items[i]
            if item.kind == "read" and item.value != current \
                    and not (item.value is UNTRACKED
                             and current is UNTRACKED):
                continue
            new_remaining = remaining - {i}
            new_current = current if item.kind == "read" else item.value
            state = (new_remaining, new_current)
            if state in seen:
                continue
            states += 1
            if states > max_states:
                return None, states
            seen.add(state)
            if done(new_remaining):
                return True, states
            stack.append((remaining, current, cands, j + 1))
            stack.append((new_remaining, new_current,
                          candidates(new_remaining), 0))
            break
    return False, states


def check_linearizable_key(key: str, ops: list[HistoryOp],
                           max_states: int = 200_000
                           ) -> tuple[Optional[Violation], bool, int]:
    """Check one key's register history for linearizability.

    Returns ``(violation, inconclusive, states_explored)``; at most one
    of the first two is truthy.  On refutation the violation pins the
    shortest invocation-order prefix that already has no linearization,
    naming the op that tipped it (best effort — skipped for very long
    histories).
    """
    items = _items_for_key(ops)
    verdict, states = _search(items, max_states)
    if verdict is None:
        return None, True, states
    if verdict:
        return None, False, states

    writes = sum(1 for item in items if item.kind == "write")
    reads = len(items) - writes
    detail = (f"no linearization of {len(items)} ops "
              f"({writes} writes, {reads} reads)")
    at_s: Optional[float] = None
    if len(items) <= 200:
        ordered = sorted(items, key=lambda item: (item.start, item.op_id))
        for k in range(1, len(ordered) + 1):
            prefix_verdict, prefix_states = _search(ordered[:k], max_states)
            states += prefix_states
            if prefix_verdict is False:
                culprit = ordered[k - 1]
                detail += (f"; first refuted by {culprit.kind} op "
                           f"#{culprit.op_id} invoked at "
                           f"{culprit.start:.4f}s")
                at_s = culprit.start
                break
            if prefix_verdict is None:
                break  # prefix budget exhausted; keep the summary detail
    return Violation(kind="linearizability", key=key, detail=detail,
                     at_s=at_s), False, states


# -- staleness + session guarantees ----------------------------------------

def _acked_writes(ops: list[HistoryOp],
                  session: Optional[str] = None) -> list[HistoryOp]:
    return [op for op in ops
            if op.kind == "write" and op.outcome == "ok"
            and (session is None or op.session == session)]


def _ok_reads(ops: list[HistoryOp],
              session: Optional[str] = None) -> list[HistoryOp]:
    return [op for op in ops
            if op.kind == "read" and op.outcome == "ok"
            and (session is None or op.session == session)]


def _freshness_violations(key: str, reads: list[HistoryOp],
                          writes: list[HistoryOp],
                          kind: str) -> list[Violation]:
    """Reads that returned a version provably older than a write already
    completed when the read was invoked (the timestamp argument in the
    module docstring).

    Each violation carries ``lag_s``: the read's invocation minus the
    earliest completion among the writes it provably missed — the
    longest the returned version had demonstrably been superseded.  The
    adaptive sweep checks this against a policy's declared staleness
    bound (a read may lawfully miss writes younger than the bound; a
    lag beyond it breaks the contract).
    """
    violations = []
    for read in reads:
        completed = [w for w in writes if w.response_s <= read.invoke_s]
        if not completed:
            continue
        bound = max(w.invoke_s for w in completed)
        if read.value is None:
            lag = read.invoke_s - min(w.response_s for w in completed)
            violations.append(Violation(
                kind=kind, key=key, session=read.session,
                at_s=read.response_s, lag_s=lag,
                detail=f"read at {read.invoke_s:.4f}s found no row after "
                       f"an acknowledged write (lag {lag:.4f}s)"))
        elif read.timestamp is not None and read.timestamp < bound:
            missed = [w for w in completed if w.invoke_s > read.timestamp]
            lag = (read.invoke_s - min(w.response_s for w in missed)
                   if missed else 0.0)
            violations.append(Violation(
                kind=kind, key=key, session=read.session,
                at_s=read.response_s, lag_s=lag,
                detail=f"read at {read.invoke_s:.4f}s returned version "
                       f"ts={read.timestamp:.4f} older than a write "
                       f"completed by {bound:.4f}s (lag {lag:.4f}s)"))
    return violations


def _monotonic_violations(key: str,
                          reads: list[HistoryOp]) -> list[Violation]:
    """Non-overlapping consecutive reads by one session whose returned
    version timestamps go backwards."""
    violations = []
    ordered = sorted(reads, key=lambda op: (op.invoke_s, op.op_id))
    for prev, cur in zip(ordered, ordered[1:]):
        if prev.response_s > cur.invoke_s:
            continue  # overlapping reads impose no order
        prev_ts = prev.timestamp if prev.value is not None else None
        cur_ts = cur.timestamp if cur.value is not None else None
        regressed = (prev_ts is not None
                     and (cur_ts is None or cur_ts < prev_ts))
        if regressed:
            violations.append(Violation(
                kind="monotonic_reads", key=key, session=cur.session,
                at_s=cur.response_s,
                detail=f"read at {cur.invoke_s:.4f}s returned "
                       f"ts={'none' if cur_ts is None else f'{cur_ts:.4f}'} "
                       f"after an earlier read saw ts={prev_ts:.4f}"))
    return violations


# -- the per-history driver ------------------------------------------------

def check_history(history: History, *, strong: bool,
                  max_states: int = 200_000) -> CheckOutcome:
    """Run every applicable checker over one recorded history.

    ``strong`` selects the guarantee under test: linearizability for
    R+W > RF configurations, session guarantees + global staleness
    otherwise.  The weak-CL checks also run for strong configs (they are
    implied by linearizability, so any hit there is a violation too).
    """
    outcome = CheckOutcome()
    for key, ops in sorted(history.per_key().items()):
        outcome.keys_checked += 1
        reads = _ok_reads(ops)
        writes = _acked_writes(ops)
        outcome.violations.extend(
            _freshness_violations(key, reads, writes, kind="stale_read"))
        for session in sorted({op.session for op in ops}):
            own_reads = _ok_reads(ops, session)
            outcome.violations.extend(_freshness_violations(
                key, own_reads, _acked_writes(ops, session),
                kind="read_your_writes"))
            outcome.violations.extend(_monotonic_violations(key, own_reads))
        if strong:
            violation, inconclusive, states = check_linearizable_key(
                key, ops, max_states=max_states)
            outcome.states_explored += states
            if violation is not None:
                outcome.violations.append(violation)
            if inconclusive:
                outcome.inconclusive_keys.append(key)
    return outcome


# -- eventual convergence --------------------------------------------------

def check_convergence(cassandra, keys) -> list[Violation]:
    """After quiescence, all *live* replicas of each key must agree.

    Agreement is on the newest stored write timestamp, inspected
    directly on every replica's LSM tree (zero simulated cost).  Call
    after the run has settled (flushes, read repair, hint replay
    drained); keys whose only writes are pre-run load data are the
    caller's concern — pass the keys the history actually wrote.
    """
    violations = []
    for key in sorted(keys):
        stamps: dict[int, Optional[float]] = {}
        for node_id in cassandra.replicas_of(key):
            replica = cassandra.nodes[node_id]
            if not replica.node.alive:
                continue  # a dead replica converges after it rejoins
            stamps[node_id] = replica.newest_timestamp(key)
        if len(set(stamps.values())) > 1:
            rendered = ", ".join(
                f"n{node_id}={'none' if ts is None else f'{ts:.4f}'}"
                for node_id, ts in sorted(stamps.items()))
            violations.append(Violation(
                kind="convergence", key=key,
                detail=f"live replicas disagree after settling: {rendered}"))
    return violations
