"""One JSON-safe consistency report per recorded run.

:func:`build_consistency_report` decides which guarantee a run's
configuration promises (R+W > RF ⇒ per-key linearizability; otherwise
session guarantees + eventual convergence), runs the matching checkers
over the recorded history, and reduces the result to plain
floats/ints/strings so it rides the cell cache byte-identically — the
same contract as :func:`repro.core.failover.build_failover_report`.
"""

from __future__ import annotations

from typing import Optional

from repro.cassandra.consistency import ConsistencyLevel
from repro.consistency.checkers import check_convergence, check_history
from repro.consistency.history import History

__all__ = ["SESSION_KINDS", "VIOLATION_KINDS", "build_consistency_report",
           "unexpected_violations"]

#: Violation kinds a weak (eventually consistent) configuration is
#: allowed to exhibit under faults — the paper's F4/F6 staleness story.
SESSION_KINDS = ("stale_read", "read_your_writes", "monotonic_reads")

#: Every kind a report may count (stable key set, zeros included).
VIOLATION_KINDS = ("linearizability",) + SESSION_KINDS + ("convergence",)


def _quorum(n: int) -> int:
    return n // 2 + 1


def _geo_strong(read_cl: ConsistencyLevel, write_cl: ConsistencyLevel,
                per_dc: dict, client_dc: Optional[str]) -> bool:
    """Overlap classification for DC-aware levels on a geo deployment.

    The session's coordinators sit in ``client_dc`` (DC-aware driver),
    so LOCAL_* levels count replicas of that datacenter.  The read
    quorum must intersect the set of replicas the write level is
    *guaranteed* to have acknowledged — locally for LOCAL_* reads,
    globally for the plain levels.  ``client_dc`` unknown ⇒ classify
    against the smallest datacenter (conservative).
    """
    total = sum(per_dc.values())
    if client_dc is not None and client_dc in per_dc:
        rf_local = per_dc[client_dc]
    else:
        rf_local = min(per_dc.values())

    #: Replica acks the write level guarantees inside the client's DC.
    write_local_min = {
        ConsistencyLevel.LOCAL_ONE: 1,
        ConsistencyLevel.LOCAL_QUORUM: _quorum(rf_local),
        ConsistencyLevel.EACH_QUORUM: _quorum(rf_local),
        ConsistencyLevel.ALL: rf_local,
    }.get(write_cl)
    if write_local_min is None:
        # Plain levels spread acks anywhere: only the acks that cannot
        # fit outside the client's DC are guaranteed local.
        acks = write_cl.required(total)
        write_local_min = max(0, acks - (total - rf_local))

    if read_cl.is_datacenter_local:
        return read_cl.required(rf_local) + write_local_min > rf_local

    #: Global reads intersect against the write's global guarantee.
    write_global_min = {
        ConsistencyLevel.LOCAL_ONE: 1,
        ConsistencyLevel.LOCAL_QUORUM: _quorum(rf_local),
        ConsistencyLevel.EACH_QUORUM: sum(_quorum(rf)
                                          for rf in per_dc.values()),
        ConsistencyLevel.ALL: total,
    }.get(write_cl)
    if write_global_min is None:
        write_global_min = write_cl.required(total)
    return read_cl.required(total) + write_global_min > total


def build_consistency_report(history: History, *, db: str,
                             read_cl: Optional[ConsistencyLevel] = None,
                             write_cl: Optional[ConsistencyLevel] = None,
                             replication: int = 3,
                             cassandra=None,
                             client_dc: Optional[str] = None,
                             max_states: int = 200_000) -> dict:
    """Check one recorded run and summarize the verdict.

    ``cassandra`` (the deployment, when there is one) enables the
    convergence check; call after the session has settled so repair and
    hint replay have drained.  HBase is always ``strong``: a region has
    one serving owner, so its reads are trivially linearizable — the
    checker then guards the client/failover path, not quorum math.

    On a geo deployment (the placement carries per-DC replication),
    ``client_dc`` names the datacenter whose client drove this history;
    the strong/weak classification then uses the DC-aware overlap rule
    (:func:`_geo_strong`) — e.g. LOCAL_QUORUM+LOCAL_QUORUM from one
    region is strong, LOCAL_ONE never is, and EACH_QUORUM writes make
    LOCAL_QUORUM reads strong from *any* region.
    """
    per_dc = (getattr(getattr(cassandra, "placement", None),
                      "replication_per_dc", None)
              if cassandra is not None else None)
    if db == "hbase":
        strong = True
    elif per_dc:
        strong = _geo_strong(read_cl or ConsistencyLevel.ONE,
                             write_cl or ConsistencyLevel.ONE,
                             per_dc, client_dc)
    else:
        strong = (read_cl or ConsistencyLevel.ONE).is_strong_with(
            write_cl or ConsistencyLevel.ONE, replication)

    outcome = check_history(history, strong=strong, max_states=max_states)
    violations = list(outcome.violations)
    if cassandra is not None:
        written_keys = {op.key for op in history.ops
                        if op.kind == "write" and op.outcome != "fail"}
        violations.extend(check_convergence(cassandra, written_keys))

    by_kind = {kind: 0 for kind in VIOLATION_KINDS}
    for violation in violations:
        by_kind[violation.kind] = by_kind.get(violation.kind, 0) + 1
    #: Worst provable staleness of any freshness violation — what an
    #: adaptive policy's declared bound S is checked against (0.0 when
    #: every read was fresh).
    max_lag = max((v.lag_s for v in violations if v.lag_s is not None),
                  default=0.0)

    report = dict(history.summary())
    report.update({
        "db": db,
        "read_cl": read_cl.value if read_cl is not None else None,
        "write_cl": write_cl.value if write_cl is not None else None,
        "replication": replication,
        "client_dc": client_dc,
        "strong": strong,
        "checked": {
            "linearizability": strong,
            "sessions": True,
            "convergence": cassandra is not None,
        },
        "violations": len(violations),
        "violations_by_kind": by_kind,
        "max_staleness_lag_s": max_lag,
        "inconclusive_keys": len(outcome.inconclusive_keys),
        "states_explored": outcome.states_explored,
        "examples": [v.to_dict() for v in violations[:20]],
    })
    return report


def unexpected_violations(report: dict) -> int:
    """Violations the run's own configuration forbids.

    A strong config (R+W > RF, or HBase) forbids everything.  A weak CL
    promises only eventual consistency: session/staleness findings are
    expected discoveries under faults, but divergence that survives
    quiescence + repair (``convergence``) is a model bug either way.
    """
    by_kind = report["violations_by_kind"]
    if report["strong"]:
        return sum(by_kind.values())
    return by_kind.get("convergence", 0)
