"""One JSON-safe consistency report per recorded run.

:func:`build_consistency_report` decides which guarantee a run's
configuration promises (R+W > RF ⇒ per-key linearizability; otherwise
session guarantees + eventual convergence), runs the matching checkers
over the recorded history, and reduces the result to plain
floats/ints/strings so it rides the cell cache byte-identically — the
same contract as :func:`repro.core.failover.build_failover_report`.
"""

from __future__ import annotations

from typing import Optional

from repro.cassandra.consistency import ConsistencyLevel
from repro.consistency.checkers import check_convergence, check_history
from repro.consistency.history import History

__all__ = ["SESSION_KINDS", "VIOLATION_KINDS", "build_consistency_report",
           "unexpected_violations"]

#: Violation kinds a weak (eventually consistent) configuration is
#: allowed to exhibit under faults — the paper's F4/F6 staleness story.
SESSION_KINDS = ("stale_read", "read_your_writes", "monotonic_reads")

#: Every kind a report may count (stable key set, zeros included).
VIOLATION_KINDS = ("linearizability",) + SESSION_KINDS + ("convergence",)


def build_consistency_report(history: History, *, db: str,
                             read_cl: Optional[ConsistencyLevel] = None,
                             write_cl: Optional[ConsistencyLevel] = None,
                             replication: int = 3,
                             cassandra=None,
                             max_states: int = 200_000) -> dict:
    """Check one recorded run and summarize the verdict.

    ``cassandra`` (the deployment, when there is one) enables the
    convergence check; call after the session has settled so repair and
    hint replay have drained.  HBase is always ``strong``: a region has
    one serving owner, so its reads are trivially linearizable — the
    checker then guards the client/failover path, not quorum math.
    """
    if db == "hbase":
        strong = True
    else:
        strong = (read_cl or ConsistencyLevel.ONE).is_strong_with(
            write_cl or ConsistencyLevel.ONE, replication)

    outcome = check_history(history, strong=strong, max_states=max_states)
    violations = list(outcome.violations)
    if cassandra is not None:
        written_keys = {op.key for op in history.ops
                        if op.kind == "write" and op.outcome != "fail"}
        violations.extend(check_convergence(cassandra, written_keys))

    by_kind = {kind: 0 for kind in VIOLATION_KINDS}
    for violation in violations:
        by_kind[violation.kind] = by_kind.get(violation.kind, 0) + 1
    #: Worst provable staleness of any freshness violation — what an
    #: adaptive policy's declared bound S is checked against (0.0 when
    #: every read was fresh).
    max_lag = max((v.lag_s for v in violations if v.lag_s is not None),
                  default=0.0)

    report = dict(history.summary())
    report.update({
        "db": db,
        "read_cl": read_cl.value if read_cl is not None else None,
        "write_cl": write_cl.value if write_cl is not None else None,
        "replication": replication,
        "strong": strong,
        "checked": {
            "linearizability": strong,
            "sessions": True,
            "convergence": cassandra is not None,
        },
        "violations": len(violations),
        "violations_by_kind": by_kind,
        "max_staleness_lag_s": max_lag,
        "inconclusive_keys": len(outcome.inconclusive_keys),
        "states_explored": outcome.states_explored,
        "examples": [v.to_dict() for v in violations[:20]],
    })
    return report


def unexpected_violations(report: dict) -> int:
    """Violations the run's own configuration forbids.

    A strong config (R+W > RF, or HBase) forbids everything.  A weak CL
    promises only eventual consistency: session/staleness findings are
    expected discoveries under faults, but divergence that survives
    quiescence + repair (``convergence``) is a model bug either way.
    """
    by_kind = report["violations_by_kind"]
    if report["strong"]:
        return sum(by_kind.values())
    return by_kind.get("convergence", 0)
