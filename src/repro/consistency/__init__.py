"""Consistency oracle: Jepsen-style history checking over the sim.

The paper's consistency findings (F4/F6) are *correctness* claims — CL
ONE leaves stale replicas that repair must catch; QUORUM/ALL reads see
the latest write.  This package verifies them instead of inferring them
from latency shapes:

- :mod:`repro.consistency.history` — a :class:`~repro.ycsb.db.DbBinding`
  wrapper that records every operation's invocation/response interval
  (op, key, value, CL, outcome — timeouts as *indeterminate*) into a
  per-run :class:`History`;
- :mod:`repro.consistency.checkers` — per-key linearizability
  (Wing & Gong interval search) for R+W > RF configurations, session
  guarantees (read-your-writes, monotonic reads) and global staleness
  for weak CLs, and eventual convergence (replica agreement after
  quiescence + repair);
- :mod:`repro.consistency.oracle` — one JSON-safe consistency report per
  recorded run;
- :mod:`repro.consistency.explorer` — fans N seeds x fault templates
  through the parallel cell runner and reports violations with the
  minimal reproducing seed.  (Imported explicitly, not re-exported here:
  it pulls in :mod:`repro.core`, which itself records histories through
  this package.)
"""

from repro.consistency.checkers import (
    CheckOutcome,
    Violation,
    check_convergence,
    check_history,
    check_linearizable_key,
)
from repro.consistency.history import History, HistoryOp, HistoryRecorder
from repro.consistency.oracle import SESSION_KINDS, build_consistency_report

__all__ = [
    "CheckOutcome",
    "History",
    "HistoryOp",
    "HistoryRecorder",
    "SESSION_KINDS",
    "Violation",
    "build_consistency_report",
    "check_convergence",
    "check_history",
    "check_linearizable_key",
]
