"""Bloom filter over SSTable keys.

A real bit-level implementation (backed by a Python integer used as a bit
set).  SSTable lookups consult it before touching the disk, so its false
positives translate into real (simulated) wasted block reads — the same
trade-off the physical systems make.
"""

from __future__ import annotations

import math
import zlib

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed-size bloom filter sized for a target false-positive rate."""

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        if expected_items < 1:
            expected_items = 1
        if not 0 < fp_rate < 1:
            raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
        # Standard sizing: m = -n ln p / (ln 2)^2 ; k = (m/n) ln 2
        self.n_bits = max(8, int(-expected_items * math.log(fp_rate)
                                 / (math.log(2) ** 2)))
        self.n_hashes = max(1, round(self.n_bits / expected_items * math.log(2)))
        self._bits = 0
        self.items_added = 0

    def _indexes(self, key: str) -> list[int]:
        data = key.encode()
        h1 = zlib.crc32(data)
        h2 = zlib.adler32(data) | 1  # odd, so strides cover the table
        return [(h1 + i * h2) % self.n_bits for i in range(self.n_hashes)]

    def add(self, key: str) -> None:
        # Hot path (every memtable flush rehashes every entry): same
        # double-hashing scheme as _indexes, without the list.
        data = key.encode()
        h = zlib.crc32(data)
        h2 = zlib.adler32(data) | 1
        n = self.n_bits
        mask = 0
        for _ in range(self.n_hashes):
            mask |= 1 << (h % n)
            h += h2
        self._bits |= mask
        self.items_added += 1

    def might_contain(self, key: str) -> bool:
        """False means *definitely absent*; True means *probably present*."""
        data = key.encode()
        h = zlib.crc32(data)
        h2 = zlib.adler32(data) | 1
        n = self.n_bits
        bits = self._bits
        for _ in range(self.n_hashes):
            if not bits >> (h % n) & 1:
                return False
            h += h2
        return True

    @property
    def size_bytes(self) -> int:
        """In-memory footprint charged against the node's RAM budget."""
        return self.n_bits // 8 + 1
