"""Write-ahead log (HBase WAL / Cassandra commit log).

Both systems append every mutation to a log before acknowledging it, and
both default to *buffered* appends (periodic sync), which is why a single
mutation's latency contains no rotational disk time.  The log is
parameterized by a :class:`~repro.storage.lsm.StorageMedium`, because the
two systems place it differently:

- Cassandra's commit log is a local file — appends hit the local page
  cache (``LocalDiskMedium``).
- HBase's WAL is an HDFS file — appends travel the replication pipeline
  (``HdfsMedium``), which is where the replication factor enters HBase's
  write path.
"""

from __future__ import annotations

from typing import Generator

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """Append-only log with buffered (default) or synchronous appends."""

    def __init__(self, medium, sync_every_append: bool = False) -> None:
        self.medium = medium
        self.sync_every_append = sync_every_append
        self.appended_bytes = 0
        self.appends = 0

    def append(self, size: int) -> Generator:
        """Append one record of ``size`` bytes (a simulation process).

        With ``sync_every_append`` the append does not return until the
        medium reports the bytes durable (used by the durability ablation
        benchmark); otherwise the medium buffers them.
        """
        self.appends += 1
        self.appended_bytes += size
        if self.sync_every_append:
            yield from self.medium.append_log(size, sync=True)
        else:
            yield from self.medium.append_log(size, sync=False)

    def truncate(self) -> None:
        """Discard log segments covered by a completed flush."""
        self.appended_bytes = 0
