"""Shared local storage engine (log-structured merge tree).

Both databases in the paper persist writes the same way — append to a log,
buffer in a sorted in-memory table, flush immutable sorted runs, compact —
so the engine lives in one place and is parameterized by a
:class:`~repro.storage.lsm.StorageMedium`:

- Cassandra nodes read and write their SSTables on the **local disk**;
- HBase regions read HFile blocks and write flushes **through HDFS**
  (short-circuit local reads, pipeline writes).

The engine tracks *real* keys and versions (so correctness is testable)
while charging *simulated* time for every block read, flush and
compaction.
"""

from repro.storage.bloom import BloomFilter
from repro.storage.cache import BlockCache
from repro.storage.lsm import LocalDiskMedium, LsmTree, StorageMedium, StorageSpec
from repro.storage.memtable import Memtable
from repro.storage.sstable import SSTable
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BlockCache",
    "BloomFilter",
    "LocalDiskMedium",
    "LsmTree",
    "Memtable",
    "SSTable",
    "StorageMedium",
    "StorageSpec",
    "WriteAheadLog",
]
