"""Sorted in-memory write buffer (HBase MemStore / Cassandra memtable)."""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

__all__ = ["Memtable"]


class Memtable:
    """A sorted map of key -> (value, timestamp, size) with byte accounting.

    Updates are last-write-wins by timestamp, matching both systems'
    cell-version semantics (Cassandra resolves by client timestamp; HBase
    by cell version — modelled identically here).
    """

    def __init__(self) -> None:
        self._data: dict[str, tuple[Any, float, int]] = {}
        self._sorted_keys: list[str] = []
        #: Accumulated bytes including superseded versions (they occupy
        #: heap until the flush rewrites the data), mirroring MemStore
        #: accounting.
        self.size_bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def put(self, key: str, value: Any, size: int, timestamp: float) -> None:
        """Insert/overwrite ``key``; stale timestamps lose (LWW)."""
        existing = self._data.get(key)
        if existing is None:
            bisect.insort(self._sorted_keys, key)
        elif timestamp < existing[1]:
            return
        self.size_bytes += size
        self._data[key] = (value, timestamp, size)

    def get(self, key: str) -> Optional[tuple[Any, float, int]]:
        """Return ``(value, timestamp, size)`` or None."""
        return self._data.get(key)

    def scan_from(self, start_key: str, limit: int) -> list[tuple[str, Any, float, int]]:
        """Up to ``limit`` entries with key >= ``start_key``, in key order."""
        idx = bisect.bisect_left(self._sorted_keys, start_key)
        out = []
        for key in self._sorted_keys[idx:idx + limit]:
            value, ts, size = self._data[key]
            out.append((key, value, ts, size))
        return out

    def items_sorted(self) -> Iterator[tuple[str, Any, float, int]]:
        """All live entries in key order (used by flush)."""
        for key in self._sorted_keys:
            value, ts, size = self._data[key]
            yield key, value, ts, size
