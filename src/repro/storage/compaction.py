"""Compaction policies (Cassandra STCS/LCS, HBase minor compaction).

Pure policy + merge logic; the I/O charging lives in
:class:`~repro.storage.lsm.LsmTree`, which drives the merge as a
background simulation process.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.storage.sstable import SSTable

__all__ = ["merge_tables", "pick_compaction", "pick_leveled_compaction"]


def pick_compaction(sstables: list[SSTable], min_batch: int = 4,
                    max_batch: int = 10,
                    bucket_ratio: float = 2.0) -> Optional[list[SSTable]]:
    """Choose a batch of similar-sized tables to merge, or None.

    Size-tiered selection: sort by size, walk buckets of tables whose
    sizes are within ``bucket_ratio`` of the bucket's smallest member, and
    return the first bucket with at least ``min_batch`` members.
    """
    if len(sstables) < min_batch:
        return None
    ordered = sorted(sstables, key=lambda t: t.size_bytes)
    bucket: list[SSTable] = []
    for table in ordered:
        if not bucket:
            bucket = [table]
            continue
        if table.size_bytes <= bucket[0].size_bytes * bucket_ratio or \
                bucket[0].size_bytes == 0:
            bucket.append(table)
            if len(bucket) == max_batch:
                return bucket
        else:
            if len(bucket) >= min_batch:
                return bucket
            bucket = [table]
    return bucket if len(bucket) >= min_batch else None


def _overlaps(a: SSTable, b: SSTable) -> bool:
    ra, rb = a.key_range, b.key_range
    if ra is None or rb is None:
        return False
    return ra[0] <= rb[1] and rb[0] <= ra[1]


def pick_leveled_compaction(sstables: list[SSTable],
                            max_batch: int = 10) -> Optional[list[SSTable]]:
    """Leveled selection: merge the newest run into every older run it
    overlaps, or None when the newest run overlaps nothing.

    The flat-list analogue of LCS: new runs are promptly merged down
    into the overlapping older data, which keeps runs-per-key near one
    (read-optimized) at the price of compacting on nearly every flush —
    higher, steadier write amplification than size-tiered batching.
    That trade is what the elasticity campaign's disk-contention
    comparison measures: streamed ranges land as fresh runs, and
    leveled rewrites them immediately while size-tiered waits for a
    full bucket.
    """
    if len(sstables) < 2:
        return None
    newest = sstables[0]
    overlapping = [t for t in sstables[1:] if _overlaps(newest, t)]
    if not overlapping:
        return None
    return [newest, *overlapping][:max_batch]


def merge_tables(tables: list[SSTable]) -> list[tuple[str, Any, float, int]]:
    """Merge entries of ``tables`` (any order) with last-write-wins.

    Returns entries sorted by key; for duplicate keys the entry with the
    greatest timestamp survives (ties broken by later table in the list,
    so pass tables oldest-first for deterministic results).
    """
    merged: dict[str, tuple[Any, float, int]] = {}
    for table in tables:
        for key, value, ts, size in table.items_sorted():
            existing = merged.get(key)
            if existing is None or ts >= existing[1]:
                merged[key] = (value, ts, size)
    return [(k, *merged[k]) for k in sorted(merged)]
