"""The LSM engine: put / get / scan with simulated I/O charging.

One :class:`LsmTree` backs one HBase region store or one Cassandra node's
column family.  All physical I/O goes through a :class:`StorageMedium`, so
the same engine serves both systems:

- ``LocalDiskMedium`` — Cassandra: commit log and SSTables on the node's
  own disk.
- ``repro.hdfs.client.HdfsMedium`` — HBase: WAL appends travel the HDFS
  pipeline (this is where the replication factor touches HBase writes);
  HFile block reads are short-circuit local reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Protocol

from repro.cluster.disk import BACKGROUND, FOREGROUND
from repro.cluster.node import Node
from repro.sim.kernel import Environment, Timeout
from repro.storage.cache import BlockCache
from repro.storage.compaction import (merge_tables, pick_compaction,
                                      pick_leveled_compaction)
from repro.storage.memtable import Memtable
from repro.storage.sstable import SSTable
from repro.storage.wal import WriteAheadLog

__all__ = ["LocalDiskMedium", "LsmTree", "StorageMedium", "StorageSpec"]


class StorageMedium(Protocol):
    """Physical placement of a tree's log, runs and blocks."""

    def append_log(self, size: int, sync: bool) -> Generator:
        """Append ``size`` bytes to the write-ahead/commit log."""
        ...

    def read_block(self, size: int, priority: int, handle=None) -> Generator:
        """Random-read one data block of the run identified by ``handle``."""
        ...

    def read_run(self, size: int, handle=None) -> Generator:
        """Sequentially read ``size`` bytes (compaction input)."""
        ...

    def write_run(self, size: int) -> Generator:
        """Sequentially write ``size`` bytes (flush/compaction output).

        Returns an opaque handle identifying the created run (``None`` for
        purely local media); the handle is stored on the SSTable and passed
        back to :meth:`read_block` / :meth:`read_run`.
        """
        ...


class LocalDiskMedium:
    """Log + runs + blocks on the owning node's local disk."""

    def __init__(self, node: Node) -> None:
        self.node = node

    def append_log(self, size: int, sync: bool) -> Generator:
        if sync:
            yield from self.node.disk.write(size, sequential=True,
                                            priority=FOREGROUND)
        else:
            self.node.disk.append_buffered(size)
            return
            yield  # pragma: no cover - keeps this a generator

    def read_block(self, size: int, priority: int = FOREGROUND,
                   handle=None) -> Generator:
        yield from self.node.disk.read(size, sequential=False,
                                       priority=priority)

    def read_run(self, size: int, handle=None) -> Generator:
        yield from self.node.disk.read(size, sequential=True,
                                       priority=BACKGROUND)

    def write_run(self, size: int) -> Generator:
        yield from self.node.disk.write(size, sequential=True,
                                        priority=BACKGROUND)
        return None


@dataclass(frozen=True)
class StorageSpec:
    """Engine tuning.

    The defaults are *scaled down* together with the workloads (see
    DESIGN.md §6): cache and memtable budgets are kept small relative to
    the dataset so that reads exercise the disk, exactly as the paper's
    record counts were chosen to defeat the page cache.
    """

    memtable_flush_bytes: int = 512 * 1024
    block_bytes: int = 8 * 1024
    block_cache_bytes: int = 1024 * 1024
    bloom_fp_rate: float = 0.01
    #: Size-tiered compaction: trigger threshold and batch bounds.
    compaction_min_batch: int = 4
    compaction_max_batch: int = 10
    #: "size_tiered" (STCS: batch similar-sized runs) or "leveled"
    #: (LCS analogue: merge each new run into the older runs it
    #: overlaps — fewer runs per read, more write amplification).
    compaction_strategy: str = "size_tiered"
    #: Synchronous log appends (durability ablation; both systems default
    #: to buffered appends with periodic sync).
    wal_sync_each_append: bool = False
    # -- CPU costs (seconds) -----------------------------------------
    cpu_put_s: float = 3e-6
    cpu_get_s: float = 4e-6
    cpu_per_table_check_s: float = 1e-6
    cpu_scan_per_entry_s: float = 4e-7
    cpu_flush_per_entry_s: float = 1e-6
    cpu_compact_per_entry_s: float = 8e-7


class LsmTree:
    """Log-structured merge tree over a :class:`StorageMedium`."""

    def __init__(self, env: Environment, node: Node, medium: StorageMedium,
                 spec: StorageSpec, name: str = "lsm") -> None:
        self.env = env
        self.node = node
        self.medium = medium
        self.spec = spec
        self.name = name
        self.wal = WriteAheadLog(medium, sync_every_append=spec.wal_sync_each_append)
        self.cache = BlockCache(spec.block_cache_bytes)
        self.active = Memtable()
        #: Memtables frozen and waiting for (or in) flush, newest first.
        self.flushing: list[Memtable] = []
        #: Immutable runs, newest first.
        self.sstables: list[SSTable] = []
        self._compacting = False
        #: Keys >= this bound were handed to a split daughter: existing
        #: runs keep them physically (HBase reference-file semantics)
        #: but every logical view filters them out, and the next
        #: flush/compaction rewrites without them.
        self._drop_from: Optional[str] = None
        self.stats = {"puts": 0, "gets": 0, "scans": 0, "flushes": 0,
                      "compactions": 0, "block_reads": 0}

    # -- write path -----------------------------------------------------

    def put(self, key: str, value: Any, size: int, timestamp: float,
            extra_cpu_s: float = 0.0) -> Generator:
        """Durably buffer one mutation (a simulation process).

        ``extra_cpu_s`` lets the caller fold its own per-request CPU
        charge (RPC-verb handling) into the same core reservation — one
        timeout event instead of two on a path every replica write takes.
        """
        yield from self.wal.append(size)
        node = self.node
        end = node.reserve_cpu(extra_cpu_s + self.spec.cpu_put_s)
        env = self.env
        now = env._now
        if end > now:
            yield Timeout(env, end - now)
        # Insert after the CPU wait: the mutation becomes visible to
        # readers when the work completes, not when the core was booked —
        # visibility timing is what the staleness oracle measures.
        self.active.put(key, value, size, timestamp)
        self.stats["puts"] += 1
        if self.active.size_bytes >= self.spec.memtable_flush_bytes:
            self._rotate()

    def _rotate(self) -> None:
        frozen, self.active = self.active, Memtable()
        self.flushing.insert(0, frozen)
        self.env.process(self._flush(frozen), name=f"{self.name}-flush")

    def _flush(self, frozen: Memtable) -> Generator:
        entries = list(frozen.items_sorted())
        if entries:
            yield from self.node.cpu_work(
                self.spec.cpu_flush_per_entry_s * len(entries))
            total = sum(e[3] for e in entries)
            handle = yield from self.medium.write_run(total)
            # A split may have landed between freeze and here; the run
            # is written (the bytes moved) but handed-off keys stay out
            # of the logical table.
            entries = self._live_entries(entries)
        if entries:
            table = SSTable(entries, self.spec.block_bytes,
                            self.spec.bloom_fp_rate)
            table.file_handle = handle
            self.sstables.insert(0, table)
            self._cache_written_blocks(table)
        self.flushing.remove(frozen)
        if not self.flushing:
            self.wal.truncate()
        self.stats["flushes"] += 1
        self._maybe_compact()

    def _cache_written_blocks(self, table: SSTable) -> None:
        """Freshly written runs are page-cache resident (they just went
        through RAM); account them in the block cache so reads of recent
        data stay memory-served exactly when the machine has the RAM for
        it — the LRU budget still evicts on small-cache configurations."""
        for block_no in range(table.n_blocks):
            self.cache.insert(table.sstable_id, block_no,
                              self.spec.block_bytes)

    # -- read path --------------------------------------------------------

    def _fetch_block(self, table: SSTable, block_no: int,
                     priority: int = FOREGROUND) -> Generator:
        if not self.cache.contains(table.sstable_id, block_no):
            yield from self.medium.read_block(self.spec.block_bytes, priority,
                                              getattr(table, "file_handle", None))
            self.cache.insert(table.sstable_id, block_no,
                              self.spec.block_bytes)
            self.stats["block_reads"] += 1

    def get(self, key: str, priority: int = FOREGROUND,
            extra_cpu_s: float = 0.0) -> Generator:
        """Return the newest ``(value, timestamp)`` for ``key`` or None.

        ``extra_cpu_s`` folds the caller's per-request CPU charge into
        the same core reservation (see :meth:`put`).
        """
        self.stats["gets"] += 1
        if self._drop_from is not None and key >= self._drop_from:
            return None
        yield from self.node.cpu_work(extra_cpu_s + self.spec.cpu_get_s)
        best: Optional[tuple[Any, float]] = None
        for memtable in [self.active, *self.flushing]:
            found = memtable.get(key)
            if found is not None and (best is None or found[1] > best[1]):
                best = (found[0], found[1])
        for table in self.sstables:
            yield from self.node.cpu_work(self.spec.cpu_per_table_check_s)
            if not table.might_contain(key):
                continue
            yield from self._fetch_block(table, table.block_of(key), priority)
            found = table.get(key)
            if found is not None and (best is None or found[1] > best[1]):
                best = (found[0], found[1])
        return best

    def scan(self, start_key: str, limit: int,
             priority: int = FOREGROUND) -> Generator:
        """Return up to ``limit`` ``(key, value, timestamp)`` from ``start_key``."""
        self.stats["scans"] += 1
        yield from self.node.cpu_work(self.spec.cpu_get_s)
        merged: dict[str, tuple[Any, float]] = {}
        for memtable in [self.active, *self.flushing]:
            for key, value, ts, _size in memtable.scan_from(start_key, limit):
                existing = merged.get(key)
                if existing is None or ts > existing[1]:
                    merged[key] = (value, ts)
        for table in self.sstables:
            blocks, entries = table.blocks_for_range(start_key, limit)
            for block_no in blocks:
                yield from self._fetch_block(table, block_no, priority)
            for key, value, ts, _size in entries:
                existing = merged.get(key)
                if existing is None or ts > existing[1]:
                    merged[key] = (value, ts)
        live = (merged if self._drop_from is None
                else [k for k in merged if k < self._drop_from])
        picked = sorted(live)[:limit]
        yield from self.node.cpu_work(
            self.spec.cpu_scan_per_entry_s * max(len(merged), 1))
        return [(k, merged[k][0], merged[k][1]) for k in picked]

    # -- compaction ---------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._compacting:
            return
        if self.spec.compaction_strategy == "leveled":
            batch = pick_leveled_compaction(self.sstables,
                                            self.spec.compaction_max_batch)
        elif self.spec.compaction_strategy == "size_tiered":
            batch = pick_compaction(self.sstables,
                                    self.spec.compaction_min_batch,
                                    self.spec.compaction_max_batch)
        else:
            raise ValueError("unknown compaction strategy "
                             f"{self.spec.compaction_strategy!r}")
        if batch:
            self._compacting = True
            self.env.process(self._compact(batch), name=f"{self.name}-compact")

    def _compact(self, batch: list[SSTable]) -> Generator:
        # Oldest-first so merge ties resolve toward newer tables.
        oldest_first = [t for t in reversed(self.sstables) if t in batch]
        for t in oldest_first:
            yield from self.medium.read_run(
                t.size_bytes, getattr(t, "file_handle", None))
        entries = self._live_entries(merge_tables(oldest_first))
        yield from self.node.cpu_work(
            self.spec.cpu_compact_per_entry_s * max(len(entries), 1))
        merged: Optional[SSTable] = None
        if entries:
            total_out = sum(e[3] for e in entries)
            handle = yield from self.medium.write_run(total_out)
            merged = SSTable(entries, self.spec.block_bytes,
                             self.spec.bloom_fp_rate)
            merged.file_handle = handle
            self._cache_written_blocks(merged)
        # Replace the batch at the position of its newest member.
        positions = [i for i, t in enumerate(self.sstables) if t in batch]
        position = min(positions) if positions else 0
        survivors = [t for t in self.sstables if t not in batch]
        if merged is not None:
            survivors.insert(min(position, len(survivors)), merged)
        self.sstables = survivors
        for table in batch:
            self.cache.evict_sstable(table.sstable_id)
        self.stats["compactions"] += 1
        self._compacting = False
        self._maybe_compact()

    # -- elasticity (split hand-off and streamed ingest) -----------------

    def _live_entries(self, entries):
        """Filter out keys handed to a split daughter (see ``drop_range``)."""
        if self._drop_from is None:
            return entries
        bound = self._drop_from
        return [e for e in entries if e[0] < bound]

    def snapshot_entries(self) -> list[tuple[str, Any, float, int]]:
        """Newest live version of every entry, in key order.

        Logical (no I/O charged): callers model the physical transfer
        themselves — region splits hand references over for free, range
        streaming charges bulk disk/NIC I/O for the bytes it ships.
        """
        merged: dict[str, tuple[Any, float, int]] = {}
        for table in reversed(self.sstables):  # oldest first: LWW ties
            for key, value, ts, size in table.items_sorted():
                existing = merged.get(key)
                if existing is None or ts >= existing[1]:
                    merged[key] = (value, ts, size)
        for memtable in [*reversed(self.flushing), self.active]:
            for key, value, ts, size in memtable.items_sorted():
                existing = merged.get(key)
                if existing is None or ts >= existing[1]:
                    merged[key] = (value, ts, size)
        return self._live_entries([(k, *merged[k]) for k in sorted(merged)])

    def ingest_run(self, entries: list[tuple[str, Any, float, int]]) -> None:
        """Adopt a pre-sorted run (streamed range / split reference file).

        No I/O is charged here — the caller models the physical bytes.
        The new run still participates in compaction, which is where the
        post-ingest write amplification (and its disk contention with
        foreground traffic) comes from.
        """
        if not entries:
            return
        table = SSTable(entries, self.spec.block_bytes,
                        self.spec.bloom_fp_rate)
        self.sstables.insert(0, table)
        self._maybe_compact()

    def drop_range(self, from_key: str) -> None:
        """Logically drop every key >= ``from_key`` (split hand-off).

        Existing runs keep the bytes — like HBase reference files, the
        physical rewrite happens at the next flush/compaction — but
        reads, scans and future runs no longer see the dropped keys.
        """
        if self._drop_from is None or from_key < self._drop_from:
            self._drop_from = from_key

    # -- introspection ---------------------------------------------------

    @property
    def n_sstables(self) -> int:
        return len(self.sstables)

    @property
    def data_bytes(self) -> int:
        return (self.active.size_bytes
                + sum(m.size_bytes for m in self.flushing)
                + sum(t.size_bytes for t in self.sstables))
