"""LRU block cache (HBase BlockCache / Cassandra key-row cache analogue).

Caches ``(sstable_id, block_no)`` keys with a byte budget.  Hit/miss
counters feed the experiment reports; the budget is deliberately small
relative to the dataset in the default configs so that — as the paper's
methodology demands — read benchmarks measure disk, not memory.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["BlockCache"]


class BlockCache:
    """Byte-budgeted LRU over storage blocks."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple[int, int], int] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, sstable_id: int, block_no: int) -> bool:
        """Check + touch: a hit refreshes the block's recency."""
        key = (sstable_id, block_no)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, sstable_id: int, block_no: int, size_bytes: int) -> None:
        """Add a block read from disk, evicting LRU blocks as needed."""
        if self.capacity_bytes == 0:
            return
        key = (sstable_id, block_no)
        if key in self._entries:
            self.used_bytes -= self._entries[key]
            self._entries.move_to_end(key)
        self._entries[key] = size_bytes
        self.used_bytes += size_bytes
        while self.used_bytes > self.capacity_bytes and self._entries:
            _, evicted_size = self._entries.popitem(last=False)
            self.used_bytes -= evicted_size

    def evict_sstable(self, sstable_id: int) -> None:
        """Drop all blocks of a compacted-away SSTable."""
        stale = [k for k in self._entries if k[0] == sstable_id]
        for key in stale:
            self.used_bytes -= self._entries.pop(key)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
