"""Immutable sorted runs (HBase HFiles / Cassandra SSTables).

An SSTable keeps its real keys and versions (for correctness) plus just
enough physical layout — a block index and a bloom filter — to charge
realistic I/O: point reads fetch one data block, scans fetch the
contiguous block range covering the scanned keys.

Entries everywhere in the storage layer are ``(key, value, timestamp,
size)`` tuples; ``size`` is the entry's on-disk footprint in bytes.
"""

from __future__ import annotations

import bisect
from typing import Any, Optional

from repro.storage.bloom import BloomFilter

__all__ = ["SSTable"]


class SSTable:
    """One immutable sorted run, split into fixed-size blocks."""

    _next_id = 0

    def __init__(self, entries: list[tuple[str, Any, float, int]],
                 block_bytes: int, bloom_fp_rate: float = 0.01) -> None:
        """Build from flush/compaction output (``entries`` sorted by key)."""
        SSTable._next_id += 1
        self.sstable_id = SSTable._next_id
        self.block_bytes = block_bytes
        self._keys: list[str] = []
        self._values: dict[str, tuple[Any, float, int]] = {}
        #: block number for each key position (parallel to ``_keys``).
        self._key_block: list[int] = []
        self.bloom = BloomFilter(max(1, len(entries)), bloom_fp_rate)
        self.size_bytes = 0

        block_no = 0
        block_fill = 0
        prev_key: Optional[str] = None
        for key, value, ts, size in entries:
            if prev_key is not None and key <= prev_key:
                raise ValueError(f"entries not strictly sorted at {key!r}")
            prev_key = key
            if block_fill + size > block_bytes and block_fill > 0:
                block_no += 1
                block_fill = 0
            self._keys.append(key)
            self._key_block.append(block_no)
            self._values[key] = (value, ts, size)
            self.bloom.add(key)
            block_fill += size
            self.size_bytes += size
        self.n_blocks = block_no + 1 if entries else 0

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def key_range(self) -> Optional[tuple[str, str]]:
        if not self._keys:
            return None
        return self._keys[0], self._keys[-1]

    def might_contain(self, key: str) -> bool:
        """Bloom-filter + key-range check — no I/O."""
        if not self._keys:
            return False
        if key < self._keys[0] or key > self._keys[-1]:
            return False
        return self.bloom.might_contain(key)

    def block_of(self, key: str) -> int:
        """Data block a point lookup for ``key`` would fetch."""
        idx = bisect.bisect_left(self._keys, key)
        if idx >= len(self._keys):
            idx = len(self._keys) - 1
        return self._key_block[idx]

    def get(self, key: str) -> Optional[tuple[Any, float, int]]:
        """Return ``(value, timestamp, size)`` or None (logical, no I/O)."""
        return self._values.get(key)

    def blocks_for_range(self, start_key: str, limit: int) \
            -> tuple[list[int], list[tuple[str, Any, float, int]]]:
        """Blocks and entries a scan of ``limit`` keys from ``start_key`` touches."""
        idx = bisect.bisect_left(self._keys, start_key)
        picked = self._keys[idx:idx + limit]
        if not picked:
            return [], []
        blocks = sorted({self._key_block[i]
                         for i in range(idx, idx + len(picked))})
        entries = [(k, *self._values[k]) for k in picked]
        return blocks, entries

    def items_sorted(self) -> list[tuple[str, Any, float, int]]:
        """All entries in key order (used by compaction)."""
        return [(k, *self._values[k]) for k in self._keys]
