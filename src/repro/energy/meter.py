"""Cluster energy metering: integrate the power model over a window.

:class:`EnergyMeter` snapshots per-node counters (CPU core-seconds,
disk busy time, NIC channel busy time, power-state ledgers) at
``start()`` and prices the deltas at ``stop()``.  Baselines are keyed
by ``node_id`` and the node set is re-read from ``nodes_source`` at
stop, so the meter survives topology changes mid-window:

- a node that *joins* mid-run is charged from ``max(window start,
  node.created_at)`` with zero counter baselines;
- a node present at start keeps billing to the end of the window even
  if the cluster list no longer carries it — matching cloud billing,
  where an instance you provisioned costs money until the meter stops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.power import PowerSpec

__all__ = ["EnergyMeter", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Joules consumed by the cluster over one measured window."""

    duration_s: float
    #: Awake-baseline energy (full ``idle_w`` draw while on/awake).
    idle_j: float
    cpu_j: float
    disk_j: float
    nic_j: float = 0.0
    #: Baseline energy spent parked (p-state + deep sleep draws).
    sleep_j: float = 0.0
    #: Sum over nodes of seconds-on-the-bill (for instance-hour cost).
    node_seconds: float = 0.0
    #: Power-state wake transitions over the window...
    wakes: int = 0
    #: ...and the sim-time latency they charged to requests.
    wake_latency_s: float = 0.0

    @property
    def total_j(self) -> float:
        return (self.idle_j + self.cpu_j + self.disk_j + self.nic_j
                + self.sleep_j)

    def joules_per_op(self, operations: int) -> float:
        """Joules per completed operation.

        ``inf`` when nothing completed: an all-errors window burned real
        energy and must not report as free.
        """
        if operations <= 0:
            return float("inf")
        return self.total_j / operations

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "idle_j": self.idle_j,
            "cpu_j": self.cpu_j,
            "disk_j": self.disk_j,
            "nic_j": self.nic_j,
            "sleep_j": self.sleep_j,
            "total_j": self.total_j,
            "node_seconds": self.node_seconds,
            "wakes": self.wakes,
            "wake_latency_s": self.wake_latency_s,
        }


class EnergyMeter:
    """Snapshots node counters and integrates power between them.

    ``nodes`` fixes the billed set up front (the historical API);
    ``nodes_source`` re-reads it at every snapshot instead, which is
    what campaign cells use so elasticity topology changes bill
    correctly.  Exactly one of the two must be provided.
    """

    def __init__(self, nodes=None, spec: PowerSpec = PowerSpec(), *,
                 nodes_source=None) -> None:
        if nodes_source is None:
            if not nodes:
                raise ValueError("meter needs at least one node")
            fixed = list(nodes)
            nodes_source = lambda: fixed
        self._nodes_source = nodes_source
        self.spec = spec
        self._start_time: float | None = None
        self._env = None
        #: node_id -> (node, cpu0, disk0, nic0, power-ledger snapshot).
        self._base: dict = {}

    @staticmethod
    def _ledger(power) -> tuple:
        return (power.awake_s, power.pstate_s, power.sleep_s,
                power.wakes, power.wake_latency_s)

    def start(self) -> None:
        nodes = list(self._nodes_source())
        if not nodes:
            raise ValueError("meter needs at least one node")
        self._env = nodes[0].env
        now = self._env.now
        self._start_time = now
        self._base = {}
        for node in nodes:
            power = getattr(node, "power", None)
            if power is not None:
                power.settle(now)
            self._base[node.node_id] = (
                node, node.cpu_time, node.disk.busy_time, node.nic.busy_s,
                self._ledger(power) if power is not None else None)

    def stop(self) -> EnergyReport:
        if self._start_time is None:
            raise RuntimeError("call start() before stop()")
        now = self._env.now
        start_t = self._start_time
        self._start_time = None
        duration = now - start_t
        if duration <= 0:
            return EnergyReport(0.0, 0.0, 0.0, 0.0)
        # Union of the billed-at-start set and the current topology:
        # joiners billed from creation, leavers billed to the end.
        billed = dict(self._base)
        for node in self._nodes_source():
            if node.node_id not in billed:
                billed[node.node_id] = (node, 0.0, 0.0, 0.0, None)
        spec = self.spec
        idle_j = cpu_j = disk_j = nic_j = sleep_j = 0.0
        node_seconds = 0.0
        wakes = 0
        wake_latency_s = 0.0
        for node, cpu0, disk0, nic0, ledger0 in billed.values():
            joined = max(start_t, getattr(node, "created_at", start_t))
            node_duration = now - joined
            if node_duration <= 0:
                continue
            node_seconds += node_duration
            # core-seconds / cores = average utilization * duration
            cpu_j += (spec.cpu_w * max(0.0, node.cpu_time - cpu0)
                      / node.spec.cores)
            disk_j += spec.disk_w * max(0.0, node.disk.busy_time - disk0)
            nic_j += spec.nic_w * max(0.0, node.nic.busy_s - nic0)
            power = getattr(node, "power", None)
            if power is None:
                idle_j += spec.idle_w * node_duration
                continue
            power.settle(now)
            a0, p0, s0, w0, wl0 = ledger0 or (0.0, 0.0, 0.0, 0, 0.0)
            idle_j += spec.idle_w * max(0.0, power.awake_s - a0)
            sleep_j += (spec.pstate_idle_w * max(0.0, power.pstate_s - p0)
                        + spec.sleep_w * max(0.0, power.sleep_s - s0))
            wakes += power.wakes - w0
            wake_latency_s += power.wake_latency_s - wl0
        return EnergyReport(duration_s=duration, idle_j=idle_j, cpu_j=cpu_j,
                            disk_j=disk_j, nic_j=nic_j, sleep_j=sleep_j,
                            node_seconds=node_seconds, wakes=wakes,
                            wake_latency_s=wake_latency_s)
