"""Dollar pricing for energy reports: $/kWh + per-instance-hour.

Two bills add up: the electricity behind the measured joules (what a
datacenter owner pays) and the instance-hours the cluster occupied
(what a cloud tenant pays).  Defaults: $0.12/kWh — a typical
industrial-power rate — and $0.10 per instance-hour, an on-demand
price of the paper's era.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.meter import EnergyReport

__all__ = ["CostReport", "CostSpec"]

#: Joules per kilowatt-hour.
_J_PER_KWH = 3.6e6


@dataclass(frozen=True)
class CostReport:
    """Dollars attributed to one measured window."""

    energy_usd: float
    instance_usd: float

    @property
    def total_usd(self) -> float:
        return self.energy_usd + self.instance_usd

    def usd_per_mops(self, operations: int) -> float:
        """Dollars per million completed operations (``inf`` when
        nothing completed — an all-errors window is not free)."""
        if operations <= 0:
            return float("inf")
        return self.total_usd / (operations / 1e6)

    def to_dict(self) -> dict:
        return {
            "energy_usd": self.energy_usd,
            "instance_usd": self.instance_usd,
            "total_usd": self.total_usd,
        }


@dataclass(frozen=True)
class CostSpec:
    usd_per_kwh: float = 0.12
    usd_per_node_hour: float = 0.10

    def price(self, report: EnergyReport) -> CostReport:
        return CostReport(
            energy_usd=report.total_j / _J_PER_KWH * self.usd_per_kwh,
            instance_usd=report.node_seconds / 3600.0
            * self.usd_per_node_hour)
