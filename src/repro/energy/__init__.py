"""Energy & cost-efficiency subsystem.

The paper's related-work section notes that BigDataBench extends YCSB
with an energy-consumption metric; García-Recuero's HBase study
(arXiv:1509.02640) shows consistency level and replication factor have
first-order energy cost.  This package prices the simulated testbed the
same way:

- :mod:`repro.energy.power` — the per-node power model: utilization
  draws (CPU / disk / NIC) plus a lazy power-state machine
  (active / DVFS P-state / deep sleep) whose wake transitions cost
  deterministic sim-time latency;
- :mod:`repro.energy.meter` — :class:`EnergyMeter` integrates the model
  over a measured window into an :class:`EnergyReport` (joules by
  component, joules/op), tolerating nodes joining mid-run;
- :mod:`repro.energy.cost` — :class:`CostSpec` prices a report in
  dollars ($/kWh + per-instance-hour), yielding $/Mops.
"""

from repro.energy.cost import CostReport, CostSpec
from repro.energy.meter import EnergyMeter, EnergyReport
from repro.energy.power import POWER_MODES, PowerManager, PowerSpec

__all__ = ["CostReport", "CostSpec", "EnergyMeter", "EnergyReport",
           "POWER_MODES", "PowerManager", "PowerSpec"]
