"""Per-node power model: utilization draws + a lazy power-state machine.

Model: each machine draws ``idle_w`` watts while awake, plus a
utilization-proportional share of ``cpu_w`` (all cores busy), ``disk_w``
(spindle busy) and ``nic_w`` (a NIC channel serializing).  Defaults
approximate a dual-socket Xeon L5640 server of the paper's era (~120 W
idle, ~80 W CPU swing, ~10 W disk, ~5 W NIC).

Power management (``race_to_sleep`` mode) layers a three-state machine
on top of the awake baseline:

- **awake** — full ``idle_w`` baseline; entered by any work, held for
  ``idle_after_s`` past the last activity;
- **p-state** — DVFS-dropped cores + spun-down disk at
  ``pstate_idle_w``; reached ``idle_after_s`` after the last activity,
  left after a deterministic ``pstate_wake_s`` clock-ramp latency;
- **deep sleep** — suspend-to-RAM at ``sleep_w``; reached
  ``sleep_after_s`` after the last activity, left after ``sleep_wake_s``
  (disk spin-up dominates).

Every wake transition is charged in *sim time*, so power management
visibly costs tail latency — the classic race-to-sleep trade.

:class:`PowerManager` is deliberately environment-free: callers pass
absolute sim times in, and the state machine materializes its schedule
lazily (no background process), exactly like the node's GC schedule —
an idle simulation still terminates.  Accounting happens at every wake
and at every :meth:`settle`, which keeps the piecewise integral exact:
between two accounting points ``busy_until`` only ever describes one
contiguous activity epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["POWER_MODES", "PowerManager", "PowerSpec"]

#: ``always_on`` — the meter's historical behavior: full idle draw
#: whenever the machine is on, no wake latency anywhere.
#: ``race_to_sleep`` — the state machine above, unconditionally.
POWER_MODES = ("always_on", "race_to_sleep")


@dataclass(frozen=True)
class PowerSpec:
    """Power-model parameters (watts, seconds)."""

    idle_w: float = 120.0
    cpu_w: float = 80.0
    disk_w: float = 10.0
    #: Per-channel serialization draw; a saturated full-duplex NIC
    #: (egress + ingress both busy) draws twice this.
    nic_w: float = 5.0
    #: Baseline draw in the DVFS P-state (cores clocked down, disk
    #: spun down, NIC in low-power idle).
    pstate_idle_w: float = 70.0
    #: Baseline draw in deep sleep (suspend-to-RAM).
    sleep_w: float = 12.0
    #: Idle time before dropping awake -> p-state.
    idle_after_s: float = 0.01
    #: Idle time before dropping p-state -> deep sleep.
    sleep_after_s: float = 0.5
    #: Deterministic wake latency out of the p-state (clock ramp).
    pstate_wake_s: float = 0.002
    #: Deterministic wake latency out of deep sleep (disk spin-up).
    sleep_wake_s: float = 0.3


#: Power-machine states, for introspection and tests.
AWAKE, PSTATE, SLEEP = "awake", "pstate", "sleep"


class PowerManager:
    """One node's power-state machine and baseline-energy ledger.

    Counters (``awake_s`` / ``pstate_s`` / ``sleep_s`` / ``wakes`` /
    ``wake_latency_s``) are monotone; the meter diffs snapshots, so one
    manager serves any number of measured windows.  The wake-transition
    interval itself is accounted as awake time (the machine burns full
    power while ramping up).
    """

    def __init__(self, spec: PowerSpec, mode: str = "race_to_sleep",
                 now: float = 0.0) -> None:
        if mode not in POWER_MODES:
            raise ValueError(
                f"unknown power mode {mode!r}; choose from {POWER_MODES}")
        self.spec = spec
        self.mode = mode
        #: Absolute time of the end of the last known activity.  Tracked
        #: in both modes (a cheap ``max``), so switching an always-on
        #: node into race-to-sleep counts idleness from its real last
        #: activity, not from the switch.
        self.busy_until = now
        self._accounted_until = now
        self.awake_s = 0.0
        self.pstate_s = 0.0
        self.sleep_s = 0.0
        self.wakes = 0
        self.wake_latency_s = 0.0

    # -- state ---------------------------------------------------------

    def state(self, at: float) -> str:
        """The machine's power state at time ``at`` (no side effects)."""
        if self.mode == "always_on":
            return AWAKE
        gap = at - self.busy_until
        if gap < self.spec.idle_after_s:
            return AWAKE
        if gap < self.spec.sleep_after_s:
            return PSTATE
        return SLEEP

    # -- accounting ----------------------------------------------------

    def _account(self, until: float) -> None:
        """Advance the energy ledger from the last accounting point.

        Piecewise over the (at most three) states the machine passed
        through since: awake until ``busy_until + idle_after_s``,
        p-state until ``busy_until + sleep_after_s``, deep sleep for the
        remainder.  Idempotent: a repeated call with the same ``until``
        adds nothing.
        """
        t = self._accounted_until
        if until <= t:
            return
        self._accounted_until = until
        if self.mode == "always_on":
            self.awake_s += until - t
            return
        awake_edge = self.busy_until + self.spec.idle_after_s
        if t < awake_edge:
            edge = until if until < awake_edge else awake_edge
            self.awake_s += edge - t
            t = edge
        if t >= until:
            return
        pstate_edge = self.busy_until + self.spec.sleep_after_s
        if t < pstate_edge:
            edge = until if until < pstate_edge else pstate_edge
            self.pstate_s += edge - t
            t = edge
        if t < until:
            self.sleep_s += until - t

    def settle(self, now: float) -> None:
        """Bring the ledger current (meters call this at snapshots)."""
        self._account(now)

    # -- activity hooks ------------------------------------------------

    def wake_for_work(self, at: float) -> float:
        """Work wants to start at ``at``: return when it actually can.

        Awake (or always-on) machines start immediately; a parked
        machine pays the deterministic wake latency first.  A second
        arrival at the same instant sees the machine already waking and
        pays nothing extra — a transition is never double-charged.
        """
        if self.mode == "always_on":
            return at
        gap = at - self.busy_until
        if gap < self.spec.idle_after_s:
            return at
        penalty = (self.spec.pstate_wake_s
                   if gap < self.spec.sleep_after_s
                   else self.spec.sleep_wake_s)
        self._account(at)
        self.wakes += 1
        self.wake_latency_s += penalty
        self.busy_until = at + penalty
        return at + penalty

    def note_busy(self, until: float) -> None:
        """Record activity lasting until the absolute time ``until``."""
        if until > self.busy_until:
            self.busy_until = until

    def set_mode(self, mode: str, at: float) -> None:
        """Switch power-management mode at time ``at``.

        Accounts under the old mode first.  Unparking (switching to
        ``always_on``) while not awake charges one wake transition at
        the switch — the operator's clock pre-warms the machine, so
        requests landing after the ramp see no wake latency.
        """
        if mode not in POWER_MODES:
            raise ValueError(
                f"unknown power mode {mode!r}; choose from {POWER_MODES}")
        if mode == self.mode:
            return
        self._account(at)
        if mode == "always_on":
            gap = at - self.busy_until
            if gap >= self.spec.idle_after_s:
                penalty = (self.spec.pstate_wake_s
                           if gap < self.spec.sleep_after_s
                           else self.spec.sleep_wake_s)
                self.wakes += 1
                self.wake_latency_s += penalty
                self.busy_until = at + penalty
        self.mode = mode
