"""Pluggable consistency-level policies for the adaptive controller.

A policy answers one question per request — *which CL should this
operation use?* — given the request's staleness risk (is the key
freshly written?) and the monitor's windowed state.  Three families,
mirroring the related work:

- :class:`StaticPolicy` — the paper's own §4.3 method: one fixed
  (read CL, write CL) pair for the whole run.  The baseline the
  adaptive policies are judged against.
- :class:`StepwisePolicy` — Zhu et al.'s latency-bounding ladder run in
  reverse: escalate ONE -> QUORUM -> ALL when a window shows staleness
  exposure beyond the SLO's tolerated rate, decay one level back after
  ``decay_windows`` consecutive clean windows, and step *down* a level
  when the latency half of the SLO breaks while staleness is clean.
- :class:`StalenessBoundPolicy` — Garcia-Recuero et al.'s
  quality-of-data bound per key: writes always at QUORUM, reads at
  QUORUM only while the key sits inside the declared staleness bound
  (per the client-side recent-writes sketch), ONE otherwise.  At RF 3,
  QUORUM reads over QUORUM writes are strong (R+W > N), so every
  at-risk read is served linearizably and only risk-free reads take the
  weak fast path.

Policies are deterministic state machines over deterministic inputs, so
a run's decision sequence is reproducible bit for bit — the property
``repro-bench adaptive`` caches and CI asserts.
"""

from __future__ import annotations

from typing import Optional

from repro.cassandra.consistency import ConsistencyLevel
from repro.adaptive.monitor import SloSpec, WindowStats

__all__ = [
    "ADAPTIVE_POLICIES",
    "ALL_POLICIES",
    "EnergyAwarePolicy",
    "Policy",
    "StalenessBoundPolicy",
    "StaticPolicy",
    "StepwisePolicy",
    "make_policy",
]

#: The escalation ladder, weakest first.
LADDER = (ConsistencyLevel.ONE, ConsistencyLevel.QUORUM,
          ConsistencyLevel.ALL)


class Policy:
    """Interface (and shared bookkeeping) for per-request CL policies."""

    name = "policy"

    def __init__(self, slo: SloSpec) -> None:
        self.slo = slo
        self.escalations = 0
        self.decays = 0
        self.latency_steps = 0

    def decide_read(self, key: str, at_risk: bool) -> ConsistencyLevel:
        raise NotImplementedError

    def decide_write(self, key: str) -> ConsistencyLevel:
        raise NotImplementedError

    def on_window(self, window: WindowStats) -> None:
        """Window-close hook (stepwise escalation lives here)."""

    def floor_cls(self) -> tuple[ConsistencyLevel, ConsistencyLevel]:
        """The weakest (read CL, write CL) this policy may ever issue —
        what the consistency oracle classifies the run's guarantee by."""
        raise NotImplementedError

    def counters(self) -> dict:
        """JSON-safe policy-state counters for the decision log."""
        return {"escalations": self.escalations, "decays": self.decays,
                "latency_steps": self.latency_steps}


class StaticPolicy(Policy):
    """Fixed CLs — the non-adaptive baseline."""

    def __init__(self, slo: SloSpec,
                 read_cl: ConsistencyLevel = ConsistencyLevel.ONE,
                 write_cl: ConsistencyLevel = ConsistencyLevel.ONE) -> None:
        super().__init__(slo)
        self.read_cl = read_cl
        self.write_cl = write_cl
        self.name = f"static-{read_cl.value.lower()}"

    def decide_read(self, key: str, at_risk: bool) -> ConsistencyLevel:
        return self.read_cl

    def decide_write(self, key: str) -> ConsistencyLevel:
        return self.write_cl

    def floor_cls(self) -> tuple[ConsistencyLevel, ConsistencyLevel]:
        return self.read_cl, self.write_cl


class StepwisePolicy(Policy):
    """Escalate on staleness exposure, decay back after clean windows.

    State is one index into :data:`LADDER`, applied to reads and writes
    alike.  A window *breaches* when the fraction of its reads that were
    both at risk (key written inside the staleness bound) and served at
    a weak CL exceeds ``slo.risk_rate``, or when the window's
    anti-entropy signals show the cluster actively repairing divergence
    (foreground read repairs, stored hints).  Breach -> one step up.
    ``decay_windows`` consecutive clean windows -> one step down (the
    hysteresis that keeps the ladder from thrashing).  A latency-only
    breach (window p95 above the SLO with staleness clean) also steps
    down — Zhu et al.'s trade of consistency for latency.

    The steady-state shape this produces: under a read-only phase the
    ladder sits at ONE (nothing at risk); under sustained write traffic
    it oscillates — exposure detected at ONE escalates to QUORUM, the
    exposure vanishes (QUORUM covers it), ``decay_windows`` clean
    windows later it probes ONE again — so the duty cycle at QUORUM is
    about ``decay_windows / (decay_windows + 1)``, and the latency
    distribution is the corresponding mixture of the two levels.
    """

    name = "stepwise"

    def __init__(self, slo: SloSpec, decay_windows: int = 3,
                 start: ConsistencyLevel = ConsistencyLevel.ONE) -> None:
        super().__init__(slo)
        if decay_windows < 1:
            raise ValueError("decay_windows must be >= 1")
        self.decay_windows = decay_windows
        self.level_index = LADDER.index(start)
        self._clean_streak = 0

    @property
    def level(self) -> ConsistencyLevel:
        return LADDER[self.level_index]

    def decide_read(self, key: str, at_risk: bool) -> ConsistencyLevel:
        return self.level

    def decide_write(self, key: str) -> ConsistencyLevel:
        return self.level

    def _exposure_breach(self, window: WindowStats) -> bool:
        return window.exposed_fraction > self.slo.risk_rate

    def _churn_breach(self, window: WindowStats) -> bool:
        # Anti-entropy activity is the server-side staleness witness:
        # foreground repairs mean CL-blocking digests disagreed; stored
        # hints mean replicas are missing writes outright, and an
        # outstanding hint *backlog* means some replica is still missing
        # them (it may be back up and serving stale state).  Churn can
        # escalate only as far as QUORUM — a quorum already masks the
        # divergence being repaired, so climbing to ALL would pay ALL's
        # tail (and its unavailability under the very fault producing
        # the hints) for no added guarantee.
        signals = window.signals
        churn = (signals.get("read_repairs", 0)
                 + signals.get("hints_stored", 0)
                 + signals.get("hint_backlog", 0))
        reads = max(1, window.reads)
        return churn / reads > self.slo.risk_rate

    def on_window(self, window: WindowStats) -> None:
        exposure = self._exposure_breach(window)
        churn = self._churn_breach(window)
        if exposure or churn:
            self._clean_streak = 0
            ceiling = (len(LADDER) - 1 if exposure
                       else LADDER.index(ConsistencyLevel.QUORUM))
            if self.level_index < ceiling:
                self.level_index += 1
                self.escalations += 1
            return
        if window.read_p95_ms > self.slo.p95_ms and self.level_index > 0:
            # Latency half of the SLO broke with staleness clean: trade
            # consistency for latency, one step at a time.
            self._clean_streak = 0
            self.level_index -= 1
            self.latency_steps += 1
            return
        self._clean_streak += 1
        if self._clean_streak >= self.decay_windows and self.level_index > 0:
            self.level_index -= 1
            self.decays += 1
            self._clean_streak = 0

    def floor_cls(self) -> tuple[ConsistencyLevel, ConsistencyLevel]:
        return LADDER[0], LADDER[0]

    def counters(self) -> dict:
        counters = super().counters()
        counters["final_level"] = self.level.value
        return counters


class StalenessBoundPolicy(Policy):
    """QoD-style per-key freshness bound.

    Writes always run at QUORUM; a read runs at QUORUM iff its key was
    written inside the declared staleness bound (``slo.staleness_s``,
    per the shared recent-writes sketch), ONE otherwise.  QUORUM reads
    over QUORUM writes are strong at any RF (R + W > N), so at-risk
    reads can never observe staleness; a risk-free read's key has been
    quiet for the whole bound — every replica long since applied the
    fan-out mutation — so the weak fast path is safe *up to the
    declared bound*, which is exactly the contract's shape.

    The sketch alone cannot see a replica that missed writes while
    down: a QUORUM-acked write leaves no trace once it ages past the
    bound, yet a rejoining replica may still serve its pre-crash state
    at CL ONE with *unbounded* lag.  The coordinator does see it — the
    hinted-handoff backlog counts exactly the mutations some replica is
    missing — so while the latest window reports outstanding hints (or
    fresh hint writes), every read takes QUORUM regardless of the
    sketch.  That keeps the declared bound honest under faults, not
    just under races.
    """

    name = "staleness-bound"

    def __init__(self, slo: SloSpec) -> None:
        super().__init__(slo)
        self.quorum_reads = 0
        self.fast_reads = 0
        self.backlog_quorum_reads = 0
        self._hint_risk = False

    def on_window(self, window: WindowStats) -> None:
        signals = window.signals
        self._hint_risk = bool(signals.get("hint_backlog", 0)
                               or signals.get("hints_stored", 0))

    def decide_read(self, key: str, at_risk: bool) -> ConsistencyLevel:
        if self._hint_risk:
            self.backlog_quorum_reads += 1
            return ConsistencyLevel.QUORUM
        if at_risk:
            self.quorum_reads += 1
            return ConsistencyLevel.QUORUM
        self.fast_reads += 1
        return ConsistencyLevel.ONE

    def decide_write(self, key: str) -> ConsistencyLevel:
        return ConsistencyLevel.QUORUM

    def floor_cls(self) -> tuple[ConsistencyLevel, ConsistencyLevel]:
        return ConsistencyLevel.ONE, ConsistencyLevel.QUORUM

    def counters(self) -> dict:
        counters = super().counters()
        counters["quorum_reads"] = self.quorum_reads
        counters["fast_reads"] = self.fast_reads
        counters["backlog_quorum_reads"] = self.backlog_quorum_reads
        return counters


class EnergyAwarePolicy(StalenessBoundPolicy):
    """Staleness-bound CL routing plus replica power management.

    The CL half is exactly :class:`StalenessBoundPolicy` — the QoD
    bound already spends the staleness budget on the cheap read path,
    which is most of the energy win (ONE touches one replica's CPU,
    disk and NIC instead of a quorum's).  On top of it, the policy
    drives a parking actuator (bound by the experiment session): after
    a *clean* window — no hint risk, exposure within the SLO's rate,
    latency within the SLO — the managed replicas' power machines drop
    into race-to-sleep; any risky window unparks the whole fleet, so
    reads recovering from a breach do not also pay wake latency.

    Without a bound actuator (power management disabled in the config)
    the policy degrades to pure CL routing.
    """

    name = "energy-aware"

    def __init__(self, slo: SloSpec) -> None:
        super().__init__(slo)
        self._set_parked = None
        self.parked = False
        self.parks = 0
        self.unparks = 0

    def bind_actuator(self, set_parked) -> None:
        """Install the session's park/unpark callable
        (``set_parked(parked: bool)``)."""
        self._set_parked = set_parked

    def on_window(self, window: WindowStats) -> None:
        super().on_window(window)
        if self._set_parked is None:
            return
        risky = (self._hint_risk
                 or window.exposed_fraction > self.slo.risk_rate
                 or window.read_p95_ms > self.slo.p95_ms)
        if risky and self.parked:
            self.parked = False
            self.unparks += 1
            self._set_parked(False)
        elif not risky and not self.parked:
            self.parked = True
            self.parks += 1
            self._set_parked(True)

    def counters(self) -> dict:
        counters = super().counters()
        counters["parks"] = self.parks
        counters["unparks"] = self.unparks
        counters["parked"] = self.parked
        return counters


#: Policy names ``repro-bench adaptive`` sweeps (stable order: the two
#: static baselines first, then the adaptive contenders).
ADAPTIVE_POLICIES = ("static-one", "static-quorum", "stepwise",
                     "staleness-bound")

#: Every registered policy name (``repro-bench energy`` adds the
#: energy-aware contender; the adaptive campaign keeps its stable
#: four-policy matrix).
ALL_POLICIES = ADAPTIVE_POLICIES + ("energy-aware",)


def make_policy(name: str, slo: SloSpec,
                decay_windows: Optional[int] = None) -> Policy:
    """Instantiate a policy by registry name (the RunSpec-level handle,
    so cell specs stay picklable and JSON-describable)."""
    if name == "static-one":
        return StaticPolicy(slo, ConsistencyLevel.ONE, ConsistencyLevel.ONE)
    if name == "static-quorum":
        return StaticPolicy(slo, ConsistencyLevel.QUORUM,
                            ConsistencyLevel.QUORUM)
    if name == "stepwise":
        return StepwisePolicy(slo, decay_windows=decay_windows or 3)
    if name == "staleness-bound":
        return StalenessBoundPolicy(slo)
    if name == "energy-aware":
        return EnergyAwarePolicy(slo)
    raise ValueError(f"unknown adaptive policy {name!r}; "
                     f"choose from {ALL_POLICIES}")
