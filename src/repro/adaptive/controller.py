"""Closed-loop actuation: per-request CL override + decision log.

:class:`AdaptiveController` implements the
:class:`~repro.ycsb.db.DbBinding` protocol and sits *outermost* in the
binding stack::

    YcsbClient -> AdaptiveController -> [HistoryRecorder] ->
        CassandraBinding -> CassandraSession

For every operation it (1) rolls the monitor's window, (2) asks the
policy for a consistency level, (3) applies it as the session's
per-request CL *before* delegating — so the history recorder (which
samples the session CL at invocation) records the CL actually issued,
and the coordinator receives it in the request payload — and (4)
appends the decision to a :class:`DecisionLog`.

Every input to a decision is deterministic simulation state (the
clock, the key, the sketch, closed windows), so the decision sequence
is a pure function of the cell config — the log's digest is the
bit-identity witness ``repro-bench adaptive`` caches and CI compares
across ``--jobs`` settings.
"""

from __future__ import annotations

import hashlib
from typing import Any, Generator

from repro.adaptive.monitor import Monitor
from repro.adaptive.policy import Policy
from repro.cassandra.client import CassandraSession
from repro.cassandra.consistency import ConsistencyLevel

__all__ = ["AdaptiveController", "DecisionLog"]


class DecisionLog:
    """Every (time, op kind, key, CL) decision one controller made."""

    def __init__(self) -> None:
        self.entries: list[tuple[float, str, str, str]] = []

    def __len__(self) -> int:
        return len(self.entries)

    def record(self, at_s: float, kind: str, key: str,
               cl: ConsistencyLevel) -> None:
        self.entries.append((at_s, kind, key, cl.value))

    def digest(self) -> str:
        """Content hash of the full decision sequence (fixed-precision
        timestamps, so equal simulations hash equal)."""
        hasher = hashlib.sha256()
        for at_s, kind, key, cl in self.entries:
            hasher.update(f"{at_s:.9f}|{kind}|{key}|{cl}\n".encode())
        return hasher.hexdigest()

    def counts(self) -> dict:
        """``{op kind: {CL: decisions}}`` with sorted, stable keys."""
        out: dict[str, dict[str, int]] = {}
        for _, kind, _, cl in self.entries:
            per_kind = out.setdefault(kind, {})
            per_kind[cl] = per_kind.get(cl, 0) + 1
        return {kind: dict(sorted(cls.items()))
                for kind, cls in sorted(out.items())}

    def timeline(self, bucket_s: float) -> list[dict]:
        """Decision counts per CL in ``bucket_s``-wide time buckets —
        the "which level was the controller at, when" view a report
        prints next to the latency timeline."""
        buckets: dict[float, dict[str, int]] = {}
        for at_s, _, _, cl in self.entries:
            start = (at_s // bucket_s) * bucket_s
            per_bucket = buckets.setdefault(start, {})
            per_bucket[cl] = per_bucket.get(cl, 0) + 1
        return [{"start_s": start, "by_cl": dict(sorted(cls.items()))}
                for start, cls in sorted(buckets.items())]


class AdaptiveController:
    """DbBinding wrapper that picks a CL per request via the policy."""

    def __init__(self, inner, session: CassandraSession,
                 policy: Policy, monitor: Monitor) -> None:
        self.inner = inner
        self.session = session
        self.policy = policy
        self.monitor = monitor
        self.log = DecisionLog()
        # Window-close events drive the policy's state machine.
        monitor.on_window = policy.on_window

    # -- decision plumbing ----------------------------------------------

    def _decide_write(self, key: str) -> ConsistencyLevel:
        self.monitor.roll()
        cl = self.policy.decide_write(key)
        self.session.write_cl = cl
        self.log.record(self.monitor.clock(), "write", key, cl)
        return cl

    def _decide_read(self, kind: str, key: str,
                     at_risk: bool) -> ConsistencyLevel:
        self.monitor.roll()
        cl = self.policy.decide_read(key, at_risk)
        self.session.read_cl = cl
        self.log.record(self.monitor.clock(), kind, key, cl)
        return cl

    def _write(self, method, key: str, value: Any, size: int) -> Generator:
        self._decide_write(key)
        invoked = self.monitor.clock()
        # The sketch learns the write at *invocation*: a read racing the
        # in-flight fan-out is exactly the at-risk population.
        self.monitor.observe_write(key, invoked)
        try:
            result = yield from method(key, value, size)
        except Exception:
            self.monitor.observe_error()
            raise
        return result

    # -- DbBinding protocol ----------------------------------------------

    def insert(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self._write(self.inner.insert, key, value, size)
        return result

    def update(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self._write(self.inner.update, key, value, size)
        return result

    def read(self, key: str, size: int) -> Generator:
        at_risk = self.monitor.at_risk(key)
        cl = self._decide_read("read", key, at_risk)
        exposed = at_risk and cl.required(self.session.cassandra.spec
                                          .replication) <= 1
        self.monitor.observe_read_decision(at_risk=at_risk, exposed=exposed)
        invoked = self.monitor.clock()
        try:
            result = yield from self.inner.read(key, size)
        except Exception:
            self.monitor.observe_error()
            raise
        self.monitor.observe_read_latency(self.monitor.clock() - invoked)
        return result

    def scan(self, start_key: str, limit: int,
             record_bytes: int) -> Generator:
        # Scans are served by one replica's local token range regardless
        # of CL (paper §4.3), so they take the read decision but do not
        # feed the read-latency windows.
        self._decide_read("scan", start_key, at_risk=False)
        try:
            rows = yield from self.inner.scan(start_key, limit, record_bytes)
        except Exception:
            self.monitor.observe_error()
            raise
        return rows

    # -- reporting -------------------------------------------------------

    def summary(self) -> dict:
        """JSON-safe decision report (rides the cell cache)."""
        self.monitor.flush()
        slo = self.monitor.slo
        return {
            "policy": self.policy.name,
            "slo": {"p95_ms": slo.p95_ms, "staleness_s": slo.staleness_s,
                    "risk_rate": slo.risk_rate, "window_s": slo.window_s},
            "decisions": len(self.log),
            "by_cl": self.log.counts(),
            "policy_counters": self.policy.counters(),
            "windows": [w.to_dict() for w in self.monitor.windows],
            "timeline": self.log.timeline(slo.window_s),
            "digest": self.log.digest(),
        }
