"""Adaptive consistency: per-request CL control under latency/staleness SLOs.

The paper's §4.3 shows the static trade — CL ONE is fast but stale,
QUORUM/ALL pay coordinator fan-in on every request.  This package makes
the trade dynamic, closing the loop the related work proposes
(Garcia-Recuero et al.'s quality-of-data bounds; Zhu et al.'s
latency-bounded CL stepping):

- :mod:`repro.adaptive.monitor` — windowed latency percentiles,
  staleness-risk sensing, and the recent-writes sketch;
- :mod:`repro.adaptive.policy` — Static / Stepwise / StalenessBound
  policies over a declared :class:`~repro.adaptive.monitor.SloSpec`;
- :mod:`repro.adaptive.controller` — the DbBinding wrapper applying
  per-request CL overrides and logging every decision.

Wired end-to-end as ``repro-bench adaptive`` (policy x offered-load
ramp at RF 3, with the consistency oracle checking what staleness each
policy actually delivered).
"""

from repro.adaptive.controller import AdaptiveController, DecisionLog
from repro.adaptive.monitor import Monitor, RecentWrites, SloSpec, WindowStats
from repro.adaptive.policy import (
    ADAPTIVE_POLICIES,
    Policy,
    StalenessBoundPolicy,
    StaticPolicy,
    StepwisePolicy,
    make_policy,
)

__all__ = [
    "ADAPTIVE_POLICIES",
    "AdaptiveController",
    "DecisionLog",
    "Monitor",
    "Policy",
    "RecentWrites",
    "SloSpec",
    "StalenessBoundPolicy",
    "StaticPolicy",
    "StepwisePolicy",
    "WindowStats",
    "make_policy",
]
