"""Online windowed estimator: latency percentiles + staleness risk.

The monitor is the sensing half of the adaptive-consistency loop
(:mod:`repro.adaptive.controller` is the actuation half).  It is driven
entirely by operation completions — no background process touches the
simulation clock — so a run with an attached monitor is bit-identical
to the same run without one, and two runs of the same cell close their
windows at identical simulated times.

Three pieces:

- :class:`SloSpec` — the declared objective: "p95 read latency <= L ms
  AND staleness <= S s / read-your-writes risk rate <= v".
- :class:`RecentWrites` — a bounded client-side sketch of keys written
  within the staleness bound.  At CL ONE there are no blocking digests,
  so the server gives no staleness signal at all; the sketch is how the
  controller knows a read is *at risk* (racing a fresh write) before
  issuing it.
- :class:`Monitor` — rolls fixed-size windows over read/write
  completions, computing per-window nearest-rank percentiles (the same
  definition as :func:`repro.ycsb.measurements.percentile`), the
  at-risk/exposed read fractions, error counts, and deltas of the
  coordinator's anti-entropy counters (read repairs, hints, sheds) from
  an optional ``signal_source``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ycsb.measurements import percentile

__all__ = ["Monitor", "RecentWrites", "SloSpec", "WindowStats"]

#: Coordinator counters whose per-window deltas feed the risk score.
SIGNAL_KEYS = ("read_repairs", "repair_mutations", "background_repairs",
               "hints_stored", "admission_sheds")

#: Gauges sampled at window close (levels, not monotone counters).
GAUGE_KEYS = ("hint_backlog",)


@dataclass(frozen=True)
class SloSpec:
    """The declared service-level objective the controller steers by."""

    #: Latency half: p95 read latency must stay at or below this.
    p95_ms: float = 10.0
    #: Staleness half: reads must not observe versions older than this
    #: bound, and no more than ``risk_rate`` of a window's reads may be
    #: *exposed* to that risk (an at-risk read served at a weak CL).
    staleness_s: float = 0.25
    risk_rate: float = 0.01
    #: Monitoring window length, simulated seconds.
    window_s: float = 0.5

    def __post_init__(self) -> None:
        if self.p95_ms <= 0 or self.staleness_s <= 0 or self.window_s <= 0:
            raise ValueError("p95_ms, staleness_s and window_s must be "
                             "positive")
        if not 0 <= self.risk_rate <= 1:
            raise ValueError("risk_rate must be in [0, 1]")


class RecentWrites:
    """Bounded key -> last-write-invocation-time sketch.

    ``written_within`` answers "was this key written inside the
    staleness bound?" — the QoD-style freshness test.  The sketch is
    shared by every workload thread (one controller per run), so it
    sees *all* client writes, which is exactly the population a
    read-your-writes / fresh-read race can involve.  Pruning is
    deterministic: expired entries go first, then the oldest survivors.
    """

    def __init__(self, bound_s: float, capacity: int = 4096) -> None:
        if bound_s <= 0 or capacity < 1:
            raise ValueError("bound_s must be positive, capacity >= 1")
        self.bound_s = bound_s
        self.capacity = capacity
        #: insertion-ordered (dict) key -> last write invocation time.
        self._writes: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._writes)

    def note_write(self, key: str, at_s: float) -> None:
        # Re-inserting moves the key to the newest position, keeping the
        # dict ordered by last-write time (never decreasing).
        self._writes.pop(key, None)
        self._writes[key] = at_s
        if len(self._writes) > self.capacity:
            self._prune(at_s)

    def written_within(self, key: str, now_s: float) -> bool:
        at = self._writes.get(key)
        return at is not None and now_s - at <= self.bound_s

    def _prune(self, now_s: float) -> None:
        cutoff = now_s - self.bound_s
        fresh = {k: t for k, t in self._writes.items() if t >= cutoff}
        if len(fresh) > self.capacity:
            # Still over budget: drop the oldest fresh entries.  Order is
            # last-write order, so slicing the tail keeps the newest.
            items = list(fresh.items())
            fresh = dict(items[len(items) - self.capacity:])
        self._writes = fresh


@dataclass
class WindowStats:
    """One closed monitoring window."""

    start_s: float
    reads: int = 0
    writes: int = 0
    errors: int = 0
    #: Reads of keys written inside the staleness bound (any CL).
    at_risk_reads: int = 0
    #: At-risk reads that were *served at a weak CL* (required acks == 1)
    #: — the population an SLO's risk_rate actually constrains.
    exposed_reads: int = 0
    read_p95_ms: float = 0.0
    read_p99_ms: float = 0.0
    #: Per-window deltas of the coordinator counters (SIGNAL_KEYS).
    signals: dict = field(default_factory=dict)
    _read_latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def ops(self) -> int:
        return self.reads + self.writes

    @property
    def at_risk_fraction(self) -> float:
        return self.at_risk_reads / self.reads if self.reads else 0.0

    @property
    def exposed_fraction(self) -> float:
        return self.exposed_reads / self.reads if self.reads else 0.0

    def _close(self) -> None:
        if self._read_latencies:
            ordered = sorted(self._read_latencies)
            self.read_p95_ms = percentile(ordered, 0.95) * 1000.0
            self.read_p99_ms = percentile(ordered, 0.99) * 1000.0
        self._read_latencies.clear()

    def to_dict(self) -> dict:
        return {
            "start_s": self.start_s,
            "reads": self.reads,
            "writes": self.writes,
            "errors": self.errors,
            "at_risk_reads": self.at_risk_reads,
            "exposed_reads": self.exposed_reads,
            "read_p95_ms": self.read_p95_ms,
            "read_p99_ms": self.read_p99_ms,
            "signals": dict(sorted(self.signals.items())),
        }


class Monitor:
    """Windowed estimator driven by operation completions.

    ``clock`` is a zero-argument callable returning simulated time
    (``lambda: env.now``); ``signal_source`` optionally returns the
    current coordinator counter totals (e.g. a closure over
    ``CassandraCluster.total_stats()`` plus the hint backlog) whose
    per-window deltas land in :attr:`WindowStats.signals`.

    Window rolling is lazy: :meth:`roll` closes every window boundary
    the clock has passed, so windows align to multiples of
    ``slo.window_s`` regardless of when operations complete.  Empty
    windows are not materialized (an idle gap produces no windows, the
    same stance :func:`repro.core.sla.evaluate_sla` takes for idle
    windows: nothing to decide on).
    """

    def __init__(self, slo: SloSpec, clock: Callable[[], float],
                 signal_source: Optional[Callable[[], dict]] = None,
                 sketch_capacity: int = 4096) -> None:
        self.slo = slo
        self.clock = clock
        self.signal_source = signal_source
        self.recent_writes = RecentWrites(slo.staleness_s,
                                          capacity=sketch_capacity)
        #: Closed windows, oldest first.
        self.windows: list[WindowStats] = []
        self._current: Optional[WindowStats] = None
        self._last_signals: dict = {}
        #: Called with each freshly closed WindowStats (the policy hook).
        self.on_window: Optional[Callable[[WindowStats], None]] = None

    # -- window plumbing -------------------------------------------------

    def _window_start(self, now_s: float) -> float:
        width = self.slo.window_s
        return (now_s // width) * width

    def roll(self) -> None:
        """Close every window boundary the clock has passed."""
        now = self.clock()
        current = self._current
        if current is not None \
                and now >= current.start_s + self.slo.window_s:
            self._close_current()

    def _close_current(self) -> None:
        window = self._current
        assert window is not None
        window._close()
        if self.signal_source is not None:
            totals = self.signal_source()
            window.signals = {
                key: totals.get(key, 0) - self._last_signals.get(key, 0)
                for key in SIGNAL_KEYS}
            for key in GAUGE_KEYS:
                if key in totals:
                    window.signals[key] = totals[key]
            self._last_signals = dict(totals)
        self.windows.append(window)
        self._current = None
        if self.on_window is not None:
            self.on_window(window)

    def _window(self) -> WindowStats:
        now = self.clock()
        if self._current is not None \
                and now >= self._current.start_s + self.slo.window_s:
            self._close_current()
        if self._current is None:
            if self.signal_source is not None and not self._last_signals:
                # Baseline snapshot so the first window reports deltas
                # over its own span, not since the dawn of the run.
                self._last_signals = dict(self.signal_source())
            self._current = WindowStats(start_s=self._window_start(now))
        return self._current

    # -- observations ----------------------------------------------------

    def at_risk(self, key: str) -> bool:
        """Was ``key`` written inside the staleness bound (sketch test)?"""
        return self.recent_writes.written_within(key, self.clock())

    def observe_read_decision(self, at_risk: bool, exposed: bool) -> None:
        """Count a read (and its risk/exposure) in the window of its
        *decision*.  Risk is a property of the CL chosen, so it must land
        in the window whose close produced that level — a read decided
        at ONE just before a boundary must not leak exposure into the
        next window, where the policy may already have escalated."""
        window = self._window()
        window.reads += 1
        if at_risk:
            window.at_risk_reads += 1
            if exposed:
                window.exposed_reads += 1

    def observe_read_latency(self, latency_s: float) -> None:
        """Feed a completed read's latency into the *current* window
        (completion-time attribution, like the YCSB timeline)."""
        self._window()._read_latencies.append(latency_s)

    def observe_write(self, key: str, invoked_at_s: float) -> None:
        self.recent_writes.note_write(key, invoked_at_s)
        self._window().writes += 1

    def observe_error(self) -> None:
        self._window().errors += 1

    def flush(self) -> None:
        """Close the in-progress window (end of run)."""
        if self._current is not None:
            self._close_current()

    # -- summaries -------------------------------------------------------

    def worst_read_p95_ms(self) -> float:
        """Max per-window read p95 across closed windows (raw latencies
        are cleared on window close to bound memory, so this is the
        conservative roll-up — used for rendering, never for control)."""
        return max((w.read_p95_ms for w in self.windows), default=0.0)
