"""HDFS-like distributed filesystem (the HBase substrate).

HBase delegates replication entirely to HDFS — the paper configures the
replication factor through HDFS and observes how HBase reacts.  This
package models the pieces that matter to that experiment:

- a **NameNode** owning the namespace and choosing replica targets
  (writer-local first, then random distinct nodes — the default HDFS
  placement within one rack),
- **DataNodes** storing block replicas,
- the **write pipeline**: a chained transfer client → DN1 → DN2 → … that
  acknowledges once every datanode has the bytes *in memory* (hflush
  semantics).  The asynchronous page-cache flush is what makes HBase's
  write latency insensitive to the replication factor (paper finding F2),
- a **DFSClient** facade plus an ``HdfsMedium`` adapter so an
  :class:`~repro.storage.lsm.LsmTree` can place its WAL and HFiles on
  HDFS, with short-circuit local reads when a replica is co-located.
"""

from repro.hdfs.block import BlockReplicaMap, DfsFile
from repro.hdfs.client import DfsClient, HdfsMedium
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.pipeline import pipeline_write

__all__ = [
    "BlockReplicaMap",
    "DataNode",
    "DfsClient",
    "DfsFile",
    "HdfsMedium",
    "NameNode",
    "pipeline_write",
]
