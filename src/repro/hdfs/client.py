"""DFSClient facade and the storage-medium adapter for HBase.

``HdfsMedium`` lets an :class:`~repro.storage.lsm.LsmTree` place its WAL
and HFiles on HDFS: log appends travel the replication pipeline, flushes
create pipelined files, and block reads short-circuit to the local disk
whenever a replica lives on the reader's node (the normal case, since the
pipeline puts the first replica on the writer).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.disk import BACKGROUND, FOREGROUND
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.hdfs.block import DfsFile
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.pipeline import pipeline_write

__all__ = ["DfsClient", "HdfsMedium"]

#: WAL segments roll after this many bytes (scaled-down HDFS block).
WAL_SEGMENT_BYTES = 8 * 1024 * 1024


class DfsClient:
    """Per-process DFS access: create, append, read."""

    def __init__(self, cluster: Cluster, namenode: NameNode,
                 datanodes: dict[int, DataNode], client_node: Node,
                 replication: int, rng) -> None:
        self.cluster = cluster
        self.namenode = namenode
        self.datanodes = datanodes
        self.client_node = client_node
        self.replication = replication
        self._rng = rng

    def _pipeline_nodes(self, file: DfsFile) -> list[DataNode]:
        return [self.datanodes[i] for i in file.locations
                if self.cluster.node(i).alive]

    def create(self, prefix: str, size_hint: int = 0) -> Generator:
        """Create a file; returns its :class:`DfsFile` descriptor."""
        file = yield from self.cluster.call(
            self.client_node, self.namenode.node, "nn.create",
            (prefix, self.replication, self.client_node.node_id, size_hint),
            request_bytes=80, response_bytes=120)
        return file

    def append(self, file: DfsFile, size: int, sync: bool = False) -> Generator:
        """Append ``size`` bytes through the file's pipeline."""
        targets = self._pipeline_nodes(file)
        if not targets:
            raise RuntimeError(f"no live replicas for {file.path}")
        yield from pipeline_write(self.cluster, self.client_node, targets,
                                  size, sync)
        file.size_bytes += size

    def read(self, file: Optional[DfsFile], size: int,
             sequential: bool = False, priority: int = FOREGROUND) -> Generator:
        """Read ``size`` bytes, short-circuiting when a replica is local."""
        local_id = self.client_node.node_id
        if file is None or file.held_by(local_id):
            dn = self.datanodes.get(local_id)
            if dn is not None:
                yield from dn.read_local(size, sequential, priority)
                return
        candidates = [i for i in (file.locations if file else [])
                      if self.cluster.node(i).alive]
        if not candidates:
            raise RuntimeError(
                f"no live replicas to read {file.path if file else '<anon>'}")
        target = self.datanodes[self._rng.choice(candidates)]
        yield from self.cluster.call(
            self.client_node, target.node, "dn.read", (size, sequential),
            request_bytes=60, response_bytes=size)


class HdfsMedium:
    """:class:`~repro.storage.lsm.StorageMedium` implementation over HDFS."""

    def __init__(self, dfs: DfsClient, name: str) -> None:
        self.dfs = dfs
        self.name = name
        self._wal_file: Optional[DfsFile] = None
        self.wal_segments = 0

    def append_log(self, size: int, sync: bool) -> Generator:
        if self._wal_file is None or \
                self._wal_file.size_bytes >= WAL_SEGMENT_BYTES:
            self._wal_file = yield from self.dfs.create(f"wal/{self.name}")
            self.wal_segments += 1
        yield from self.dfs.append(self._wal_file, size, sync)

    def read_block(self, size: int, priority: int = FOREGROUND,
                   handle: Optional[DfsFile] = None) -> Generator:
        yield from self.dfs.read(handle, size, sequential=False,
                                 priority=priority)

    def read_run(self, size: int, handle: Optional[DfsFile] = None) -> Generator:
        yield from self.dfs.read(handle, size, sequential=True,
                                 priority=BACKGROUND)

    def write_run(self, size: int) -> Generator:
        file = yield from self.dfs.create(f"hfile/{self.name}", size)
        yield from self.dfs.append(file, size, sync=False)
        return file
