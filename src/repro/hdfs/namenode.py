"""NameNode: namespace and replica placement."""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.node import Node
from repro.hdfs.block import BlockReplicaMap, DfsFile

__all__ = ["NameNode"]

#: CPU charged per namespace operation on the NameNode.
_NS_OP_CPU_S = 1e-5


class NameNode:
    """Namespace owner; chooses pipeline targets for new files.

    Placement follows the in-rack HDFS default: the first replica goes to
    the writer's own datanode (giving HBase its data locality), the rest
    to distinct random datanodes.
    """

    def __init__(self, node: Node, datanode_ids: list[int], rng) -> None:
        self.node = node
        self.datanode_ids = list(datanode_ids)
        self._rng = rng
        self.namespace = BlockReplicaMap()
        self._next_file_id = 0
        node.register("nn.create", self._handle_create)
        node.register("nn.delete", self._handle_delete)

    def choose_targets(self, replication: int,
                       writer_id: Optional[int]) -> list[int]:
        """Pipeline targets for a new file written by ``writer_id``."""
        replication = min(replication, len(self.datanode_ids))
        targets: list[int] = []
        if writer_id is not None and writer_id in self.datanode_ids:
            targets.append(writer_id)
        remaining = [d for d in self.datanode_ids if d not in targets]
        self._rng.shuffle(remaining)
        targets.extend(remaining[:replication - len(targets)])
        return targets

    def create_file(self, prefix: str, replication: int,
                    writer_id: Optional[int], size: int) -> DfsFile:
        """Allocate a file + replica set (logical part of ``nn.create``)."""
        self._next_file_id += 1
        # ``size`` is a placement hint only; the file's actual size grows
        # with appends (double-counting it broke replica accounting).
        del size
        file = DfsFile(path=f"{prefix}/{self._next_file_id:08d}",
                       replication=replication,
                       locations=self.choose_targets(replication, writer_id),
                       size_bytes=0)
        self.namespace.add(file)
        return file

    # -- RPC handlers --------------------------------------------------

    def _handle_create(self, payload) -> Generator:
        prefix, replication, writer_id, size = payload
        yield from self.node.cpu_work(_NS_OP_CPU_S)
        return self.create_file(prefix, replication, writer_id, size)

    def _handle_delete(self, payload) -> Generator:
        path = payload
        yield from self.node.cpu_work(_NS_OP_CPU_S)
        if path in self.namespace:
            self.namespace.remove(path)
            return True
        return False
