"""The HDFS write pipeline.

Data flows client → DN1 → DN2 → … → DNr as a chain of store-and-forward
packet transfers; acknowledgements cascade back DNr → … → DN1 → client.
The client's append returns when the ack arrives, i.e. once every
datanode holds the bytes — *in memory* unless ``sync`` is set.

This is the exact mechanism behind the paper's finding F2: each extra
replica adds one in-rack hop (~0.1 ms) and zero disk time to an HBase
write, so the write latency curve stays flat as RF grows from 1 to 6.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.hdfs.datanode import DataNode

__all__ = ["pipeline_write", "ACK_BYTES"]

#: Size of one pipeline acknowledgement message.
ACK_BYTES = 46
#: Maximum payload carried by one pipeline packet (HDFS default 64 KiB).
PACKET_BYTES = 64 * 1024


def pipeline_write(cluster: Cluster, client_node: Node,
                   datanodes: list[DataNode], size: int,
                   sync: bool = False) -> Generator:
    """Push ``size`` bytes through the replication pipeline (a process).

    Transfers larger than one packet are sent packet-by-packet but, to
    keep the event count proportional to operations rather than bytes,
    successive packets are batched into 256 KiB transfer chunks — small
    enough that foreground reads interleave with bulk replication traffic
    on the NICs (as they do between real 64 KiB packets), large enough to
    avoid simulating thousands of events per flush.
    """
    if not datanodes:
        raise ValueError("pipeline needs at least one datanode")
    n_packets = max(1, -(-size // PACKET_BYTES))
    chunks = _chunk_sizes(size, n_packets)
    for chunk in chunks:
        prev = client_node
        for dn in datanodes:
            yield from cluster.network.transit(prev.nic, dn.node.nic, chunk)
            yield from dn.receive_packet(chunk, sync)
            prev = dn.node
    # Ack cascade: DNr -> ... -> DN1 -> client (one small hop each).
    hops = [dn.node for dn in reversed(datanodes)] + [client_node]
    for src, dst in zip(hops, hops[1:]):
        yield from cluster.network.transit(src.nic, dst.nic, ACK_BYTES)


#: Bulk transfers are simulated in chunks of this size (the real HDFS
#: packet size): a chunk holds a NIC for ~0.55 ms, so foreground RPCs
#: interleave with bulk replication instead of stalling behind it.
CHUNK_BYTES = PACKET_BYTES
#: Upper bound on chunks per transfer to keep event counts sane; beyond
#: this the chunks simply grow (a >2 MB transfer is compaction output,
#: whose burstiness is already smoothed by its sheer duration).
MAX_CHUNKS = 32


def _chunk_sizes(size: int, n_packets: int) -> list[int]:
    """Batch ``n_packets`` packets into ~64 KiB transfer chunks."""
    if n_packets <= 1 or size <= CHUNK_BYTES:
        return [size]
    n_chunks = min(n_packets, -(-size // CHUNK_BYTES), MAX_CHUNKS)
    base = size // n_chunks
    sizes = [base] * n_chunks
    sizes[-1] += size - base * n_chunks
    return sizes
