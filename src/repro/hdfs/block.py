"""Files, blocks and replica bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BlockReplicaMap", "DfsFile"]


@dataclass
class DfsFile:
    """One DFS file: a name, a size, and the datanodes holding replicas.

    The simulator does not split files into 128 MB blocks — every file the
    databases create (WAL segments, HFiles) is far smaller than one block,
    so a file maps to exactly one block and one replica set, which keeps
    bookkeeping honest without fake granularity.
    """

    path: str
    replication: int
    #: Node ids of the datanodes holding a replica, pipeline order.
    locations: list[int] = field(default_factory=list)
    size_bytes: int = 0

    def held_by(self, node_id: int) -> bool:
        return node_id in self.locations


class BlockReplicaMap:
    """NameNode-side registry: path -> :class:`DfsFile`."""

    def __init__(self) -> None:
        self._files: dict[str, DfsFile] = {}

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def add(self, file: DfsFile) -> None:
        if file.path in self._files:
            raise ValueError(f"file {file.path!r} already exists")
        self._files[file.path] = file

    def get(self, path: str) -> DfsFile:
        return self._files[path]

    def remove(self, path: str) -> DfsFile:
        return self._files.pop(path)

    def files_on(self, node_id: int) -> list[DfsFile]:
        """All files with a replica on ``node_id`` (used by failover logic)."""
        return [f for f in self._files.values() if f.held_by(node_id)]
