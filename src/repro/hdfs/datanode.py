"""DataNode: block replica storage service on one node."""

from __future__ import annotations

from typing import Generator

from repro.cluster.disk import BACKGROUND, FOREGROUND
from repro.cluster.node import Node

__all__ = ["DataNode"]

#: CPU charged per packet a datanode receives/forwards.
_PACKET_CPU_S = 8e-6


class DataNode:
    """Stores block replicas on its node's disk; serves remote reads.

    Registered on the node under the ``dn.read`` RPC verb so non-local
    clients (e.g. a RegionServer that lost data locality after failover)
    can fetch blocks over the network.
    """

    def __init__(self, node: Node) -> None:
        self.node = node
        self.blocks_received = 0
        self.bytes_received = 0
        node.register("dn.read", self._handle_read)

    def receive_packet(self, size: int, sync: bool) -> Generator:
        """Accept packet bytes into memory (hflush) or onto disk (hsync)."""
        self.blocks_received += 1
        self.bytes_received += size
        yield from self.node.cpu_work(_PACKET_CPU_S)
        if sync:
            yield from self.node.disk.write(size, sequential=True,
                                            priority=FOREGROUND)
        else:
            self.node.disk.append_buffered(size)

    def read_local(self, size: int, sequential: bool = False,
                   priority: int = FOREGROUND) -> Generator:
        """Short-circuit read executed by a co-located client."""
        yield from self.node.disk.read(size, sequential=sequential,
                                       priority=priority)

    def _handle_read(self, payload) -> Generator:
        """Remote read RPC: ``payload`` is (size, sequential)."""
        size, sequential = payload
        yield from self.node.cpu_work(_PACKET_CPU_S)
        yield from self.node.disk.read(size, sequential=sequential,
                                       priority=BACKGROUND if sequential
                                       else FOREGROUND)
        return size
