"""Queue-based load leveling: a bounded buffer before a fixed worker pool.

The undefended open-loop client spawns one in-flight operation per
arrival — under a 10x crowd that is thousands of concurrent requests
camped on the store's queues, each one making every other one slower.
The leveler caps concurrency structurally: arrivals enqueue into a
bounded queue drained by ``workers`` long-lived simulation processes,
and once the queue is full further arrivals are *shed at the client*
(cheap, explicit, counted) instead of queueing invisibly.  This is the
queue-based load-leveling pattern plus the "bound your queues" rule of
every overload postmortem.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator

from repro.sim.kernel import AllOf, Environment, Event

__all__ = ["LoadLeveler", "LoadShed"]


class LoadShed(Exception):
    """The leveling queue was full: the request was dropped client-side."""


class LoadLeveler:
    """Bounded queue + fixed worker pool for client-side concurrency.

    ``try_submit`` hands a zero-argument *thunk* (returning the
    operation's generator) to an idle worker, or queues it, or — when
    ``max_queue`` thunks are already waiting — refuses it.  Thunks must
    handle their own exceptions: the workers are shared plumbing, and an
    escaping error would kill a pool worker for every later request.
    """

    def __init__(self, env: Environment, workers: int = 8,
                 max_queue: int = 64) -> None:
        if workers < 1 or max_queue < 1:
            raise ValueError("workers and max_queue must be >= 1")
        self.env = env
        self.max_queue = max_queue
        self._queue: deque[Callable[[], Generator]] = deque()
        self._idle: deque[Event] = deque()
        self._closed = False
        self.submitted = 0
        self.shed = 0
        self.completed = 0
        self.peak_depth = 0
        self._workers = [env.process(self._worker(), name=f"leveler-{i}")
                         for i in range(workers)]

    def try_submit(self, thunk: Callable[[], Generator]) -> bool:
        """Accept ``thunk`` for execution; False = shed (queue full)."""
        if self._closed:
            raise RuntimeError("leveler already closed")
        if len(self._queue) >= self.max_queue:
            self.shed += 1
            return False
        self._queue.append(thunk)
        self.submitted += 1
        if len(self._queue) > self.peak_depth:
            self.peak_depth = len(self._queue)
        if self._idle:
            self._idle.popleft().succeed()
        return True

    def _worker(self) -> Generator:
        while True:
            while self._queue:
                thunk = self._queue.popleft()
                yield from thunk()
                self.completed += 1
            if self._closed:
                return
            wakeup = Event(self.env)
            self._idle.append(wakeup)
            yield wakeup

    def drain(self) -> Generator:
        """Close the intake, finish the backlog, stop the workers.

        A simulation generator: ``yield from leveler.drain()`` returns
        once every accepted thunk has completed.  Workers keep emptying
        the queue after close — the backlog was admitted, so it runs.
        """
        self._closed = True
        while self._idle:
            self._idle.popleft().succeed()
        yield AllOf(self.env, self._workers)

    def stats(self) -> dict:
        return {"submitted": self.submitted, "shed": self.shed,
                "completed": self.completed, "peak_depth": self.peak_depth}
