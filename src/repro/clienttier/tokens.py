"""Deterministic token bucket, the shared currency of the client tier.

Both the per-tenant rate limiter and the retry budget are token
buckets; the only difference is what deposits tokens (wall-clock refill
vs. completed first attempts).  The bucket is continuous (fractional
tokens) and lazy: the level is only brought forward when consulted, so
it costs no kernel events of its own.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["TokenBucket"]


class TokenBucket:
    """A capped reservoir of permission.

    ``rate`` tokens accrue per second up to ``burst``; :meth:`try_take`
    withdraws atomically (in simulation terms: within one event) and
    never blocks — admission control wants an immediate yes/no, not a
    queue.  ``clock`` is a zero-argument callable returning the current
    simulated time (``lambda: env.now``), which keeps the bucket
    deterministic and wall-clock-free.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float]) -> None:
        if rate < 0 or burst <= 0:
            raise ValueError("rate must be >= 0 and burst > 0")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()
        #: Granted / denied withdrawal counts (for stats breakdowns).
        self.granted = 0
        self.denied = 0

    def _refill(self) -> None:
        now = self._clock()
        if now > self._updated:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._updated) * self.rate)
            self._updated = now

    @property
    def tokens(self) -> float:
        """Current level (refilled to now)."""
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> bool:
        """Withdraw ``n`` tokens if available; False means denied."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            self.granted += 1
            return True
        self.denied += 1
        return False

    def deposit(self, n: float) -> None:
        """Add ``n`` tokens (capped at ``burst``).

        The retry budget earns this way: each *first* attempt deposits a
        fraction of a token, so the sustainable retry rate is a fixed
        percentage of the request rate rather than a constant.
        """
        self._refill()
        self._tokens = min(self.burst, self._tokens + n)
