"""Circuit breaker: fail fast instead of piling onto a sick store.

Classic closed / open / half-open state machine over a sliding
failure-rate window (the Nygard "Release It!" pattern, as shipped in
Hystrix and resilience4j).  During an overload every queued request is
a liability — it holds client concurrency *and* server queue slots for
a response that will probably time out.  The breaker converts those
slow failures into immediate :class:`BreakerOpen` errors, giving the
store a cooldown's worth of reduced load, then probes with a bounded
number of trial requests before re-admitting traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.ycsb.db import DbBinding

__all__ = ["BreakerBinding", "BreakerOpen", "CircuitBreaker"]


class BreakerOpen(Exception):
    """The circuit is open: the request was failed fast, never sent."""


class CircuitBreaker:
    """Failure-rate breaker with a time-sliding observation window.

    - **closed** — requests flow; outcomes land in a window of the last
      ``window_s`` seconds.  When the window holds at least
      ``min_volume`` outcomes and the failure fraction reaches
      ``failure_rate``, the breaker trips.
    - **open** — every request raises :class:`BreakerOpen` for
      ``cooldown_s`` seconds.
    - **half-open** — up to ``half_open_probes`` concurrent trial
      requests pass through; the rest still fail fast.  One probe
      failure re-opens (fresh cooldown); ``half_open_probes`` probe
      successes close and clear the window.

    The clock is the simulation's (``clock=lambda: env.now``), so the
    breaker is as deterministic as everything else in the kernel.
    """

    def __init__(self, clock, failure_rate: float = 0.5,
                 window_s: float = 1.0, min_volume: int = 10,
                 cooldown_s: float = 1.0, half_open_probes: int = 3) -> None:
        if not 0.0 < failure_rate <= 1.0:
            raise ValueError("failure_rate must be in (0, 1]")
        if window_s <= 0 or cooldown_s <= 0:
            raise ValueError("window_s and cooldown_s must be positive")
        if min_volume < 1 or half_open_probes < 1:
            raise ValueError("min_volume and half_open_probes must be >= 1")
        self._clock = clock
        self.failure_rate = failure_rate
        self.window_s = window_s
        self.min_volume = min_volume
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self.state = "closed"
        #: (time, ok) outcomes inside the sliding window (closed state).
        self._window: deque[tuple[float, bool]] = deque()
        self._failures_in_window = 0
        self._open_until = 0.0
        self._probes_inflight = 0
        self._probe_successes = 0
        # Counters for stats breakdowns.
        self.opens = 0
        self.fast_fails = 0
        self.probes = 0

    def _trim(self, now: float) -> None:
        horizon = now - self.window_s
        window = self._window
        while window and window[0][0] <= horizon:
            _, ok = window.popleft()
            if not ok:
                self._failures_in_window -= 1

    def _trip(self, now: float) -> None:
        self.state = "open"
        self.opens += 1
        self._open_until = now + self.cooldown_s
        self._window.clear()
        self._failures_in_window = 0

    def before(self) -> None:
        """Admission check; raises :class:`BreakerOpen` to fail fast."""
        now = self._clock()
        if self.state == "open":
            if now < self._open_until:
                self.fast_fails += 1
                raise BreakerOpen("circuit open")
            self.state = "half_open"
            self._probes_inflight = 0
            self._probe_successes = 0
        if self.state == "half_open":
            if self._probes_inflight >= self.half_open_probes:
                self.fast_fails += 1
                raise BreakerOpen("circuit half-open, probes saturated")
            self._probes_inflight += 1
            self.probes += 1

    def record_success(self) -> None:
        now = self._clock()
        if self.state == "half_open":
            # Only probes execute in half-open, so any completion here
            # is a probe's.
            self._probes_inflight -= 1
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self.state = "closed"
            return
        if self.state == "closed":
            self._window.append((now, True))
            self._trim(now)
        # A probe completing after another probe already re-opened the
        # circuit lands in "open" and is deliberately ignored.

    def record_failure(self) -> None:
        now = self._clock()
        if self.state == "half_open":
            self._probes_inflight -= 1
            self._trip(now)
            return
        if self.state == "closed":
            self._window.append((now, False))
            self._failures_in_window += 1
            self._trim(now)
            if (len(self._window) >= self.min_volume
                    and self._failures_in_window
                    >= self.failure_rate * len(self._window)):
                self._trip(now)

    def stats(self) -> dict:
        return {"state": self.state, "opens": self.opens,
                "fast_fails": self.fast_fails, "probes": self.probes}


class BreakerBinding:
    """A :class:`~repro.ycsb.db.DbBinding` guarded by one breaker.

    ``failure_errors`` is the tuple of exception types that count as
    store failures (timeouts, sheds, dead nodes); anything else —
    including :class:`BreakerOpen` itself — passes through without
    touching the window.
    """

    def __init__(self, inner: DbBinding, breaker: CircuitBreaker,
                 failure_errors: tuple) -> None:
        self.inner = inner
        self.breaker = breaker
        self.failure_errors = failure_errors

    def _guard(self, method, *args) -> Generator:
        self.breaker.before()
        try:
            result = yield from method(*args)
        except self.failure_errors:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    def insert(self, key: str, value, size: int) -> Generator:
        result = yield from self._guard(self.inner.insert, key, value, size)
        return result

    def update(self, key: str, value, size: int) -> Generator:
        result = yield from self._guard(self.inner.update, key, value, size)
        return result

    def read(self, key: str, size: int) -> Generator:
        result = yield from self._guard(self.inner.read, key, size)
        return result

    def scan(self, start_key: str, limit: int, record_bytes: int) -> Generator:
        result = yield from self._guard(self.inner.scan, start_key, limit,
                                        record_bytes)
        return result
