"""Retries with exponential backoff, capped by a retry *budget*.

The undefended client retries every failure — which is exactly how a
10x flash crowd becomes a 40x one: each timed-out request respawns as
several more while its original work may still be queued server-side
(retry amplification, the engine of metastable failure).  The budget
(Finagle's ``RetryBudget``) bounds the damage structurally: each first
attempt deposits ``ratio`` tokens into a bucket, each retry withdraws
one, so sustained retries can never exceed ``ratio`` x the request rate
no matter how the store behaves.  A small constant trickle
(``min_retries_per_s``) keeps isolated failures retryable even at low
traffic.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.clienttier.tokens import TokenBucket
from repro.cluster.topology import DeadlineExceeded
from repro.hbase.client import backoff_delay
from repro.ycsb.db import DbBinding

__all__ = ["RetryBinding", "RetryBudget"]


class RetryBudget:
    """Token-bucket cap on the client's retry rate.

    ``ratio`` is the fraction of first attempts earned back as retry
    permission (0.2 = at most ~20% extra load from retries);
    ``min_retries_per_s`` is the unconditional trickle; ``burst`` caps
    how much unused budget can accumulate.
    """

    def __init__(self, clock, ratio: float = 0.2,
                 min_retries_per_s: float = 1.0, burst: float = 20.0) -> None:
        if ratio < 0:
            raise ValueError("ratio must be >= 0")
        self.ratio = ratio
        self._bucket = TokenBucket(rate=min_retries_per_s, burst=burst,
                                   clock=clock)

    def record_request(self) -> None:
        """A first attempt was issued: earn ``ratio`` tokens."""
        self._bucket.deposit(self.ratio)

    def try_retry(self) -> bool:
        """Withdraw permission for one retry; False = budget exhausted."""
        return self._bucket.try_take(1.0)

    @property
    def denied(self) -> int:
        return self._bucket.denied

    @property
    def granted(self) -> int:
        return self._bucket.granted


class RetryBinding:
    """A :class:`~repro.ycsb.db.DbBinding` that retries failures.

    Up to ``retries`` extra attempts per operation on ``retry_errors``,
    each preceded by equal-jitter exponential backoff
    (:func:`repro.hbase.client.backoff_delay` with the injected sim RNG
    stream, so the schedule is deterministic per seed).  With
    ``budget=None`` retries are uncapped — the naive client the surge
    campaign's "undefended" mode measures; with a budget, a denied
    withdrawal surfaces the *original* error immediately (counted in
    ``budget_denied``), so accounting stays by true failure kind.
    """

    def __init__(self, inner: DbBinding, env, rng, retry_errors: tuple,
                 retries: int = 3, backoff_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 budget: Optional[RetryBudget] = None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.inner = inner
        self.env = env
        self._rng = rng
        self.retry_errors = retry_errors
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.budget = budget
        #: First attempts / extra attempts actually issued / retries the
        #: budget refused / operations that failed after all attempts.
        self.attempts = 0
        self.retried = 0
        self.budget_denied = 0
        self.exhausted = 0

    def _call(self, method, *args) -> Generator:
        self.attempts += 1
        if self.budget is not None:
            self.budget.record_request()
        for attempt in range(self.retries + 1):
            try:
                result = yield from method(*args)
            except self.retry_errors as exc:
                if isinstance(exc, DeadlineExceeded):
                    # The op's end-to-end budget is spent; retrying
                    # cannot help (the deadline covers all attempts).
                    self.exhausted += 1
                    raise
                if attempt == self.retries:
                    self.exhausted += 1
                    raise
                if self.budget is not None and not self.budget.try_retry():
                    self.budget_denied += 1
                    self.exhausted += 1
                    raise
                self.retried += 1
                yield self.env.timeout(backoff_delay(
                    self.backoff_s, attempt + 1, self.backoff_cap_s,
                    self._rng))
                continue
            return result

    def stats(self) -> dict:
        return {"attempts": self.attempts, "retried": self.retried,
                "budget_denied": self.budget_denied,
                "exhausted": self.exhausted}

    def insert(self, key: str, value, size: int) -> Generator:
        result = yield from self._call(self.inner.insert, key, value, size)
        return result

    def update(self, key: str, value, size: int) -> Generator:
        result = yield from self._call(self.inner.update, key, value, size)
        return result

    def read(self, key: str, size: int) -> Generator:
        result = yield from self._call(self.inner.read, key, size)
        return result

    def scan(self, start_key: str, limit: int, record_bytes: int) -> Generator:
        result = yield from self._call(self.inner.scan, start_key, limit,
                                       record_bytes)
        return result
