"""Open-loop client: arrivals that do not wait, measured honestly.

Where :class:`~repro.ycsb.client.YcsbClient` is closed-loop (a worker
issues its next operation only after the previous one completes — load
falls whenever the store slows), this client draws arrival times from
an :class:`~repro.ycsb.arrivals.ArrivalProcess` and dispatches each
operation *at its arrival time* regardless of how many are already in
flight.  Offered load is therefore an input, and "goodput" (completions
per second) an output — the pair every overload study plots.

Latency is measured from the operation's **intended arrival**, not from
whenever a worker got around to dequeueing it.  Measuring from dequeue
is the coordinated-omission bug: queueing delay — the dominant cost
during overload — silently vanishes from the percentiles.  Here a
request that waited 2 s in the leveling queue and then served in 5 ms
reports 2.005 s.

The client composes the tier's defenses:

- per-tenant rate limiter — consulted at arrival; a refusal is recorded
  as a ``RateLimited`` error and costs the system nothing;
- load leveler — when present, operations run on its bounded worker
  pool (queue-full arrivals are recorded as ``LoadShed``); without it,
  every arrival spawns its own in-flight process (the undefended mode's
  unbounded concurrency);
- the binding stack (cache-aside → retries → breaker → driver), built
  by :func:`build_client_stack` from a
  :class:`~repro.core.config.ClientTierConfig`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.clienttier.breaker import BreakerBinding, BreakerOpen, CircuitBreaker
from repro.clienttier.cache import CacheAsideBinding
from repro.clienttier.leveling import LoadLeveler
from repro.clienttier.ratelimit import RateLimited, TenantRateLimiter
from repro.clienttier.retry import RetryBinding, RetryBudget
from repro.sim.kernel import Environment, Event
from repro.ycsb.arrivals import ArrivalProcess, UserSessions
from repro.ycsb.client import OPERATION_ERRORS, RunResult
from repro.ycsb.db import DbBinding
from repro.ycsb.measurements import Measurements
from repro.ycsb.workload import OperationType, Workload

__all__ = ["CLIENT_TIER_ERRORS", "ClientTier", "OpenLoopClient",
           "build_client_stack"]

#: Client-side refusals, recorded under their own names next to the
#: store-side :data:`~repro.ycsb.client.OPERATION_ERRORS`.
CLIENT_TIER_ERRORS = (BreakerOpen,)


class ClientTier:
    """One run's assembled defense stack plus its accounting handles."""

    def __init__(self, binding: DbBinding,
                 breaker: Optional[CircuitBreaker] = None,
                 retry: Optional[RetryBinding] = None,
                 limiter: Optional[TenantRateLimiter] = None,
                 leveler: Optional[LoadLeveler] = None,
                 cache: Optional[CacheAsideBinding] = None) -> None:
        self.binding = binding
        self.breaker = breaker
        self.retry = retry
        self.limiter = limiter
        self.leveler = leveler
        self.cache = cache

    def stats(self) -> dict:
        """JSON-safe per-component accounting for run summaries."""
        out: dict = {}
        if self.breaker is not None:
            out["breaker"] = self.breaker.stats()
        if self.retry is not None:
            out["retry"] = self.retry.stats()
        if self.limiter is not None:
            out["ratelimit"] = self.limiter.stats()
        if self.leveler is not None:
            out["leveling"] = self.leveler.stats()
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out


def build_client_stack(inner: DbBinding, env: Environment, rngs,
                       tier_config) -> ClientTier:
    """Wrap ``inner`` per a :class:`~repro.core.config.ClientTierConfig`.

    Stack order, innermost out: driver → circuit breaker → retries →
    cache-aside.  The breaker sits closest to the store so every
    attempt (including each retry) lands in its failure window and an
    open circuit short-circuits retries too; the cache sits outermost
    so hits skip the whole pipeline.  The rate limiter and load leveler
    are not bindings — they act at dispatch and are handed to the
    :class:`OpenLoopClient` separately.
    """
    cfg = tier_config
    clock = lambda: env.now  # noqa: E731
    binding = inner
    breaker = retry = cache = limiter = leveler = None
    if cfg.breaker_failure_rate is not None:
        breaker = CircuitBreaker(
            clock, failure_rate=cfg.breaker_failure_rate,
            window_s=cfg.breaker_window_s,
            min_volume=cfg.breaker_min_volume,
            cooldown_s=cfg.breaker_cooldown_s,
            half_open_probes=cfg.breaker_half_open_probes)
        binding = BreakerBinding(binding, breaker,
                                 failure_errors=OPERATION_ERRORS)
    if cfg.retries > 0:
        budget = None
        if cfg.retry_budget_ratio is not None:
            budget = RetryBudget(clock, ratio=cfg.retry_budget_ratio,
                                 min_retries_per_s=cfg.retry_budget_min_per_s,
                                 burst=cfg.retry_budget_burst)
        retry = RetryBinding(binding, env,
                             rngs.stream("clienttier.retry.backoff"),
                             retry_errors=OPERATION_ERRORS,
                             retries=cfg.retries,
                             backoff_s=cfg.retry_backoff_s,
                             backoff_cap_s=cfg.retry_backoff_cap_s,
                             budget=budget)
        binding = retry
    if cfg.cache_ttl_s is not None:
        cache = CacheAsideBinding(binding, env, ttl_s=cfg.cache_ttl_s,
                                  capacity=cfg.cache_capacity)
        binding = cache
    if cfg.rate_limit_per_tenant is not None:
        limiter = TenantRateLimiter(clock,
                                    rate_per_tenant=cfg.rate_limit_per_tenant,
                                    burst=cfg.rate_limit_burst)
    if cfg.leveling_workers is not None:
        leveler = LoadLeveler(env, workers=cfg.leveling_workers,
                              max_queue=cfg.leveling_queue)
    return ClientTier(binding, breaker=breaker, retry=retry, limiter=limiter,
                      leveler=leveler, cache=cache)


class OpenLoopClient:
    """Drives one open-loop arrival stream against a binding stack.

    ``db`` is the (possibly recorder-wrapped) top of the binding stack;
    ``tier`` supplies the limiter/leveler and the stats the result
    carries.  ``run`` is a simulation process returning a
    :class:`~repro.ycsb.client.RunResult` whose ``offered`` /
    ``clienttier`` fields distinguish it from a closed-loop run.
    """

    def __init__(self, env: Environment, db: DbBinding, workload: Workload,
                 arrivals: ArrivalProcess,
                 sessions: Optional[UserSessions] = None,
                 tier: Optional[ClientTier] = None) -> None:
        self.env = env
        self.db = db
        self.workload = workload
        self.arrivals = arrivals
        self.sessions = sessions
        self.tier = tier
        self._errors = OPERATION_ERRORS + CLIENT_TIER_ERRORS

    def run(self, max_arrivals: int,
            offered_rate: Optional[float] = None,
            measurements: Optional[Measurements] = None) -> Generator:
        """Dispatch ``max_arrivals`` arrivals, then drain (a sim process).

        ``offered_rate`` is purely descriptive (the steady arrival rate,
        reported as the run's target); the actual schedule comes from
        the arrival process.  ``measurements`` lets the caller share the
        live sample store with a mid-run observer (the elasticity
        campaign's autoscaler).
        """
        env = self.env
        leveler = self.tier.leveler if self.tier is not None else None
        limiter = self.tier.limiter if self.tier is not None else None
        cache = self.tier.cache if self.tier is not None else None
        if measurements is None:
            measurements = Measurements()
        epoch = env.now
        measurements.started_at = epoch
        state = {"not_found": 0, "outstanding": 0, "closed": False,
                 "drained": Event(env)}
        times = self.arrivals.times()
        issued = 0
        while issued < max_arrivals:
            offset = next(times)
            at = epoch + offset
            if at > env.now:
                yield env.timeout(at - env.now)
            issued += 1
            op = self.workload.next_operation()
            measurements.record_arrival(op.value, at)
            tenant = None
            if self.sessions is not None:
                tenant = self.sessions.tenant_of(self.sessions.next_user())
            read_key = None
            if cache is not None and op is OperationType.READ:
                # Edge serving: a read the cache can answer fresh skips
                # admission control entirely — the backend never sees
                # it, so it must not spend a rate-limit token or a
                # leveling-queue slot.  The serve itself still runs
                # through the binding stack (recorder included), so the
                # oracle prices the possibly-stale observation.
                read_key = self.workload.next_read_key()
                if cache.fresh(read_key):
                    state["outstanding"] += 1
                    env.process(
                        self._op_thunk(op, at, measurements, state,
                                       read_key=read_key)(),
                        name=f"arrival-{issued}")
                    continue
            if limiter is not None and tenant is not None:
                try:
                    limiter.admit(tenant)
                except RateLimited:
                    measurements.record_error(op.value, kind="RateLimited",
                                              at=at)
                    continue
            thunk = self._op_thunk(op, at, measurements, state,
                                   read_key=read_key)
            if leveler is not None:
                if not leveler.try_submit(thunk):
                    measurements.record_error(op.value, kind="LoadShed",
                                              at=at)
            else:
                state["outstanding"] += 1
                env.process(thunk(), name=f"arrival-{issued}")
        # Intake closed: wait for everything already admitted.
        state["closed"] = True
        if leveler is not None:
            yield from leveler.drain()
        elif state["outstanding"] > 0:
            yield state["drained"]
        measurements.finished_at = env.now
        duration = measurements.duration
        return RunResult(
            workload=self.workload.spec.name,
            operations=measurements.total_ops,
            not_found=state["not_found"],
            duration_s=duration,
            throughput=measurements.throughput,
            target_throughput=offered_rate,
            measurements=measurements,
            offered=measurements.offered_total,
            clienttier=self.tier.stats() if self.tier is not None else None,
        )

    def _op_thunk(self, op: OperationType, arrived_at: float,
                  measurements: Measurements, state: dict,
                  read_key: Optional[str] = None):
        """One operation as a zero-argument generator factory.

        Latency is ``completion - arrived_at``: when the thunk sat in
        the leveling queue first, that wait is part of the number (the
        coordinated-omission fix).  All errors are absorbed here — the
        leveler's shared workers must never die on one bad request.
        """
        env = self.env

        def thunk() -> Generator:
            try:
                found = yield from self._execute(op, read_key=read_key)
            except self._errors as exc:
                measurements.record_error(op.value, kind=type(exc).__name__,
                                          at=env.now)
            else:
                if not found:
                    state["not_found"] += 1
                measurements.record(op.value, env.now, env.now - arrived_at)
            finally:
                if state["outstanding"]:
                    state["outstanding"] -= 1
                    if state["closed"] and state["outstanding"] == 0:
                        state["drained"].succeed()

        return thunk

    def _execute(self, op: OperationType,
                 read_key: Optional[str] = None) -> Generator:
        """Perform one operation; returns False for a not-found read.

        ``read_key`` carries a key already drawn at dispatch (the edge
        cache's freshness probe) so the read targets the key that was
        actually probed.
        """
        workload = self.workload
        size = workload.spec.record_bytes
        if op is OperationType.INSERT:
            payload, _ = workload.next_value()
            yield from self.db.insert(workload.next_insert_key(), payload,
                                      size)
            return True
        if op is OperationType.UPDATE:
            payload, _ = workload.next_value()
            yield from self.db.update(workload.next_read_key(), payload, size)
            return True
        if op is OperationType.READ:
            key = read_key if read_key is not None \
                else workload.next_read_key()
            result = yield from self.db.read(key, size)
            return result is not None
        if op is OperationType.SCAN:
            rows = yield from self.db.scan(workload.next_read_key(),
                                           workload.next_scan_length(), size)
            return bool(rows)
        key = workload.next_read_key()
        result = yield from self.db.read(key, size)
        payload, _ = workload.next_value()
        yield from self.db.update(key, payload, size)
        return result is not None
