"""Cache-aside read cache: trade staleness for goodput, measurably.

The last line of defense in a flash crowd is not sending the request at
all.  A small TTL'd LRU in front of the binding serves repeat reads of
the zipf-hot keys locally — during a surge the hot head of the
popularity curve dominates, so even a modest cache absorbs most of the
spike.  The price is bounded staleness: a cached value may be up to
``ttl_s`` older than the store's.  Because the consistency oracle's
recorder wraps *outside* this binding, every cache-served read lands in
the Jepsen-style history and the PR-4 checkers price that staleness
exactly (``max_staleness_lag_s`` vs the TTL is the QoD-style budget
check the surge campaign asserts).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generator

from repro.sim.kernel import Environment
from repro.ycsb.db import DbBinding

__all__ = ["CacheAsideBinding"]


class CacheAsideBinding:
    """TTL + LRU cache-aside wrapper around a :class:`DbBinding`.

    - **read hit** (entry younger than ``ttl_s``): served locally, zero
      RPCs, zero simulated time.
    - **read miss**: delegated, then populated (only found values are
      cached — negative caching would trade correctness for nothing the
      campaign measures).
    - **write**: delegated, then the key is invalidated *after* the
      write completes — so within one client session a read issued
      after an acknowledged write never sees the overwritten cache
      entry (read-your-writes is preserved; only cross-session
      staleness remains, bounded by the TTL).
    - **scan**: always delegated (range results are not cached).
    """

    def __init__(self, inner: DbBinding, env: Environment,
                 ttl_s: float = 0.5, capacity: int = 1024) -> None:
        if ttl_s <= 0 or capacity < 1:
            raise ValueError("ttl_s must be positive and capacity >= 1")
        self.inner = inner
        self.env = env
        self.ttl_s = ttl_s
        self.capacity = capacity
        #: key -> (cached_at, (value, timestamp)); LRU order.
        self._entries: OrderedDict[str, tuple[float, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def _store(self, key: str, result: Any) -> None:
        entries = self._entries
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = (self.env.now, result)

    def _invalidate(self, key: str) -> None:
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def fresh(self, key: str) -> bool:
        """Whether a read of ``key`` would be served locally right now.

        A pure predicate (no counters, no LRU movement): the open-loop
        client uses it at dispatch to route a would-be hit *around*
        admission control — a request the backend never sees should not
        spend a rate-limit token or a leveling-queue slot.  The actual
        serving still happens in :meth:`read`, inside the recorder, so
        the oracle prices the (possibly stale) observation.
        """
        entry = self._entries.get(key)
        return (entry is not None
                and self.env.now - entry[0] <= self.ttl_s)

    def read(self, key: str, size: int) -> Generator:
        entry = self._entries.get(key)
        if entry is not None:
            cached_at, result = entry
            if self.env.now - cached_at <= self.ttl_s:
                self.hits += 1
                self._entries.move_to_end(key)
                yield from ()  # a hit costs no simulated time
                return result
            self._entries.pop(key, None)  # expired
        self.misses += 1
        result = yield from self.inner.read(key, size)
        if result is not None:
            self._store(key, result)
        return result

    def insert(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self.inner.insert(key, value, size)
        self._invalidate(key)
        return result

    def update(self, key: str, value: Any, size: int) -> Generator:
        result = yield from self.inner.update(key, value, size)
        self._invalidate(key)
        return result

    def scan(self, start_key: str, limit: int, record_bytes: int) -> Generator:
        rows = yield from self.inner.scan(start_key, limit, record_bytes)
        return rows

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": self.hit_rate,
                "invalidations": self.invalidations,
                "evictions": self.evictions}
