"""Resilient client tier: the production patterns between the workload
and the database bindings.

Real serving stacks never talk to the store raw.  This package models
the defenses that decide whether an open-loop flash crowd is survived
or amplified, each composable around any
:class:`~repro.ycsb.db.DbBinding`:

- :class:`~repro.clienttier.breaker.CircuitBreaker` /
  :class:`~repro.clienttier.breaker.BreakerBinding` — closed/open/
  half-open failure-rate breaker that fails fast instead of queueing
  onto a struggling store;
- :class:`~repro.clienttier.retry.RetryBinding` — exponential-backoff
  retries, optionally capped by a
  :class:`~repro.clienttier.retry.RetryBudget` token bucket so retries
  can never multiply offered load unboundedly;
- :class:`~repro.clienttier.ratelimit.TenantRateLimiter` — per-tenant
  token-bucket admission control;
- :class:`~repro.clienttier.leveling.LoadLeveler` — a bounded queue
  feeding a fixed worker pool, with explicit shed accounting;
- :class:`~repro.clienttier.cache.CacheAsideBinding` — TTL'd
  cache-aside reads whose staleness cost the consistency oracle can
  measure;
- :class:`~repro.clienttier.openloop.OpenLoopClient` — drives an
  open-loop arrival stream (:mod:`repro.ycsb.arrivals`) through the
  stack, measuring latency from *intended arrival* so queueing delay is
  charged instead of hidden (the coordinated-omission fix).
"""

from repro.clienttier.breaker import BreakerBinding, BreakerOpen, CircuitBreaker
from repro.clienttier.cache import CacheAsideBinding
from repro.clienttier.leveling import LoadLeveler, LoadShed
from repro.clienttier.ratelimit import RateLimited, TenantRateLimiter
from repro.clienttier.retry import RetryBinding, RetryBudget
from repro.clienttier.openloop import (CLIENT_TIER_ERRORS, OpenLoopClient,
                                       build_client_stack)
from repro.clienttier.tokens import TokenBucket

__all__ = [
    "BreakerBinding",
    "BreakerOpen",
    "CLIENT_TIER_ERRORS",
    "CacheAsideBinding",
    "CircuitBreaker",
    "LoadLeveler",
    "LoadShed",
    "OpenLoopClient",
    "RateLimited",
    "RetryBinding",
    "RetryBudget",
    "TenantRateLimiter",
    "TokenBucket",
    "build_client_stack",
]
