"""Per-tenant token-bucket rate limiting at the client tier's front door.

A flash crowd is rarely uniform: the zipf-skewed user population means
a handful of tenants carry most of the surge.  Metering each tenant
with its own bucket converts "one hot tenant melts the store for
everyone" into "the hot tenant gets throttled, the rest keep their
latency" — the isolation argument behind every multi-tenant admission
controller.  Rejection is synchronous (:class:`RateLimited` before any
work is queued) so it costs the system nothing.
"""

from __future__ import annotations

from repro.clienttier.tokens import TokenBucket

__all__ = ["RateLimited", "TenantRateLimiter"]


class RateLimited(Exception):
    """The tenant's bucket was empty: request refused at admission."""


class TenantRateLimiter:
    """One :class:`~repro.clienttier.tokens.TokenBucket` per tenant.

    ``rate_per_tenant`` is each tenant's sustained admission rate
    (requests/s); ``burst`` how much a quiet tenant may save up.
    Buckets are created on first sight, full — a tenant's first burst
    is admitted, as a freshly configured limiter would.
    """

    def __init__(self, clock, rate_per_tenant: float,
                 burst: float = 10.0) -> None:
        if rate_per_tenant <= 0:
            raise ValueError("rate_per_tenant must be positive")
        self._clock = clock
        self.rate_per_tenant = rate_per_tenant
        self.burst = burst
        self._buckets: dict[int, TokenBucket] = {}
        self.admitted = 0
        self.rejected = 0

    def _bucket(self, tenant: int) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(rate=self.rate_per_tenant, burst=self.burst,
                                 clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: int) -> None:
        """Admit or raise :class:`RateLimited`, charging one token."""
        if self._bucket(tenant).try_take(1.0):
            self.admitted += 1
            return
        self.rejected += 1
        raise RateLimited(f"tenant {tenant} over rate")

    def stats(self) -> dict:
        return {"admitted": self.admitted, "rejected": self.rejected,
                "tenants": len(self._buckets)}
