"""Parallel execution engine for benchmark cells.

The sweeps of :mod:`repro.core.sweep` iterate a (database x replication
x workload x target) grid where each outer iteration builds its own
:class:`~repro.core.experiment.ExperimentSession`, environment and
seeded RNG registry — i.e. the grid is embarrassingly parallel at the
session level.  This module makes that structure explicit:

- :class:`CellSpec` — a self-describing, picklable unit of work: one
  resolved :class:`~repro.core.config.ExperimentConfig` (which carries
  the cell's seed), a warm-up prescription, and the *ordered* workload
  runs to execute on the loaded session.  The order is part of the spec
  because the paper runs its workloads back-to-back on one cluster and
  explains later cells by the state earlier ones left behind.
- :func:`execute_cell` — the fork-safe entrypoint: builds the session,
  loads, warms, runs, and returns a JSON-safe payload.  Serial and
  parallel execution share this single code path, and every cell seeds
  its own RNG registry from its config, so an ``N``-process run is
  bit-identical to a serial one.
- :class:`CellRunner` — executes a batch of cells, optionally across CPU
  cores (``ProcessPoolExecutor``) and backed by a content-addressed
  on-disk cache keyed by the resolved config + code version, so repeated
  benchmark invocations skip already-computed cells.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.cassandra.consistency import ConsistencyLevel
from repro.core.config import ExperimentConfig, config_to_dict
from repro.core.experiment import ExperimentSession, summarize_run
from repro.ycsb.workload import MICRO_WORKLOADS, STRESS_WORKLOADS

__all__ = [
    "CellProgress",
    "CellRunner",
    "CellSpec",
    "RunSpec",
    "WarmSpec",
    "cell_fingerprint",
    "code_version",
    "default_cache_dir",
    "execute_cell",
]

#: Bump when the payload schema changes (invalidates every cached cell).
#: "2": summaries grew p50/p95/p99.9 and the errors_by_type breakdown.
#: "3": summaries may carry a ``consistency`` report (RunSpec.check).
#: "4": summaries may carry a ``decisions`` log (RunSpec.adaptive) and
#: consistency reports gained ``max_staleness_lag_s``.
#: "5": payloads carry a ``kernel`` record (processed event count) so
#: regressions in simulation cost are visible in cached artifacts.
#: "6": geo campaigns — RunSpec gained ``client_dc``, consistency
#: reports gained ``client_dc``, fault specs gained ``datacenter``.
#: "7": open-loop client tier — RunSpec gained ``open_loop``, summaries
#: may carry ``offered``/``goodput`` and a ``clienttier`` breakdown.
#: "8": elasticity — RunSpec gained ``scale``, configs may carry an
#: ``elasticity`` plan, summaries may carry a per-phase ``scale`` report.
#: "9": energy/cost — configs carry an ``energy`` power/cost model,
#: summaries carry ``energy``/``cost`` dicts plus ``joules_per_op`` and
#: ``usd_per_mops``.
RESULT_VERSION = "9"

#: Environment override for the cell-cache directory.
CACHE_ENV_VAR = "REPRO_CELL_CACHE"


# -- cell specification ---------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One measured (or warm-up) workload run on a loaded session."""

    #: Workload name inside the ``kind`` registry.
    workload: str
    #: "micro" or "stress" — which workload registry to resolve from.
    kind: str = "stress"
    operation_count: Optional[int] = None
    #: Offered load cap, ops/s (None = unthrottled full speed).
    target_throughput: Optional[float] = None
    #: Consistency-level overrides, by value ("ONE", "QUORUM", ...), so
    #: the spec stays trivially picklable and JSON-describable.
    read_cl: Optional[str] = None
    write_cl: Optional[str] = None
    #: Unmeasured runs execute (they move the cluster's state — e.g. the
    #: ablation's interleaved updates) but produce no summary.
    measured: bool = True
    #: Arm the config's fault schedule for this run and attach a
    #: failover report to its summary (chaos campaigns).
    faults: bool = False
    #: Record a Jepsen-style operation history for this run and attach a
    #: consistency report to its summary (``repro-bench check``).
    check: bool = False
    #: Adaptive-consistency policy name (see
    #: :func:`repro.adaptive.policy.make_policy`): pick the CL per
    #: request under the config's SLO and attach the decision log to the
    #: summary (``repro-bench adaptive``).  Cassandra only.
    adaptive: Optional[str] = None
    #: Geo deployments: which region's client drives this run
    #: (``repro-bench geo`` runs the same cell once per region).
    client_dc: Optional[str] = None
    #: Drive this run open-loop through the resilient client tier
    #: (``repro-bench surge``): arrivals come from the config's
    #: :class:`~repro.core.config.ArrivalConfig`, defenses from its
    #: :class:`~repro.core.config.ClientTierConfig`.
    open_loop: bool = False
    #: Arm the config's :class:`~repro.core.config.ElasticityConfig` for
    #: this run and attach a per-phase scale report to its summary
    #: (``repro-bench scale``).
    scale: bool = False


@dataclass(frozen=True)
class WarmSpec:
    """Cache warm-up before the measured runs (paper §6 countermeasure)."""

    #: ``None`` keeps the session default (a read-heavy stress mix).
    workload: Optional[str] = None
    kind: str = "micro"
    operations: Optional[int] = None


@dataclass(frozen=True)
class CellSpec:
    """Config + seed + workload sequence: one independent sweep cell."""

    #: Result-dict key the caller assembles under (rf, mode name, ...).
    key: Any
    #: Human-readable progress label, e.g. ``"fig2/cassandra/rf=3"``.
    label: str
    config: ExperimentConfig
    runs: tuple[RunSpec, ...]
    warm: Optional[WarmSpec] = WarmSpec(kind="stress")
    #: Include engine-internal counters in the payload (ablations).
    collect_db_stats: bool = False


@dataclass(frozen=True)
class CellProgress:
    """One completed cell, as reported to the progress callback."""

    index: int
    total: int
    label: str
    cached: bool
    duration_s: float


# -- execution (the fork-safe entrypoint) ---------------------------------

def _resolve_workload(kind: str, name: str):
    registry = MICRO_WORKLOADS if kind == "micro" else STRESS_WORKLOADS
    if name not in registry:
        raise ValueError(f"unknown {kind} workload {name!r}; "
                         f"choose from {sorted(registry)}")
    return registry[name]


def execute_cell(spec: CellSpec) -> dict:
    """Run one cell start to finish; returns a JSON-safe payload.

    This is the single execution path for serial and parallel sweeps:
    the session derives every RNG stream from ``spec.config.seed``, so
    the payload is bit-identical no matter which process runs it.
    """
    session = ExperimentSession(spec.config)
    session.load()
    if spec.warm is not None:
        workload = (_resolve_workload(spec.warm.kind, spec.warm.workload)
                    if spec.warm.workload else None)
        session.warm(operations=spec.warm.operations, workload=workload)
    runs = []
    for run in spec.runs:
        result = session.run_cell(
            workload=_resolve_workload(run.kind, run.workload),
            operation_count=run.operation_count,
            target_throughput=run.target_throughput,
            read_cl=ConsistencyLevel(run.read_cl) if run.read_cl else None,
            write_cl=ConsistencyLevel(run.write_cl) if run.write_cl else None,
            inject_faults=run.faults,
            check_consistency=run.check,
            adaptive=run.adaptive,
            client_dc=run.client_dc,
            open_loop=run.open_loop,
            scale=run.scale)
        if run.measured:
            runs.append(summarize_run(result))
    payload: dict = {"runs": runs}
    # Deterministic per-seed: how much kernel work the cell cost.  A
    # code change that silently doubles the event count shows up in the
    # cached payload diff even when every summary number is unchanged.
    payload["kernel"] = {"events": session.env.processed_events}
    if spec.collect_db_stats:
        payload["db_stats"] = session.db_stats()
    return payload


def _execute_cell_timed(spec: CellSpec) -> tuple[dict, float]:
    started = time.perf_counter()
    payload = execute_cell(spec)
    return payload, time.perf_counter() - started


# -- content-addressed cell cache -----------------------------------------

_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of the ``repro`` package sources (cached per process).

    Part of every cell fingerprint so a cached result can never outlive
    the code that produced it.
    """
    global _code_version
    if _code_version is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def cell_fingerprint(spec: CellSpec) -> str:
    """Content address of a cell: resolved config + runs + code version.

    ``key`` and ``label`` are presentation, not identity — two sweeps
    asking for the same physical cell share one cache entry.
    """
    identity = {
        "config": config_to_dict(spec.config),
        "runs": [asdict(run) for run in spec.runs],
        "warm": asdict(spec.warm) if spec.warm is not None else None,
        "collect_db_stats": spec.collect_db_stats,
        "result_version": RESULT_VERSION,
        "code": code_version(),
    }
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def default_cache_dir() -> Path:
    """Cell-cache root: ``$REPRO_CELL_CACHE`` or ``~/.cache/repro/cells``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro/cells").expanduser()


class CellCache:
    """One JSON file per cell fingerprint, written atomically."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[dict]:
        try:
            with open(self.path(fingerprint), encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None  # missing or corrupt: recompute
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, fingerprint: str, label: str, payload: dict) -> None:
        # Best-effort: an unwritable cache location must never abort a
        # sweep whose cell already computed — the result is still
        # returned, it just won't be reused.
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            entry = {"label": label, "payload": payload}
            tmp = self.root / f".{fingerprint}.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(entry, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, self.path(fingerprint))
        except OSError:
            pass


# -- the runner ------------------------------------------------------------

def _pool_context():
    # fork keeps the warm interpreter (and is what the seed-derivation
    # guarantees assume nothing about); fall back to the platform default
    # where fork does not exist.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class CellRunner:
    """Executes cell specs serially or across CPU cores, with caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) executes in-process;
        ``None`` or ``0`` means one per CPU core.
    cache:
        Reuse / populate the on-disk cell cache.  Off by default so
        library callers (tests, notebooks) always compute fresh; the CLI
        and the benchmark drivers turn it on.
    cache_dir:
        Cache root; defaults to :func:`default_cache_dir`.
    progress:
        Called with a :class:`CellProgress` after each cell completes
        (cache hits report immediately with ``cached=True``).
    """

    def __init__(self, jobs: int = 1, cache: bool = False,
                 cache_dir: Optional[Path] = None,
                 progress: Optional[Callable[[CellProgress], None]] = None
                 ) -> None:
        if jobs is None or jobs < 1:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.cache = CellCache(cache_dir or default_cache_dir()) \
            if cache else None
        self.progress = progress

    def _emit(self, index: int, total: int, spec: CellSpec, cached: bool,
              duration_s: float) -> None:
        if self.progress is not None:
            self.progress(CellProgress(index=index, total=total,
                                       label=spec.label, cached=cached,
                                       duration_s=duration_s))

    def run(self, cells: Sequence[CellSpec]) -> list[dict]:
        """Execute ``cells``; returns their payloads in input order."""
        total = len(cells)
        payloads: list[Optional[dict]] = [None] * total
        fingerprints: list[Optional[str]] = [None] * total
        pending: list[int] = []
        for index, spec in enumerate(cells):
            if self.cache is not None:
                fingerprints[index] = cell_fingerprint(spec)
                hit = self.cache.get(fingerprints[index])
                if hit is not None:
                    payloads[index] = hit
                    self._emit(index, total, spec, cached=True,
                               duration_s=0.0)
                    continue
            pending.append(index)

        def finish(index: int, payload: dict, elapsed: float) -> None:
            payloads[index] = payload
            if self.cache is not None:
                self.cache.put(fingerprints[index], cells[index].label,
                               payload)
            self._emit(index, total, cells[index], cached=False,
                       duration_s=elapsed)

        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=_pool_context()) as pool:
                futures = {pool.submit(_execute_cell_timed, cells[i]): i
                           for i in pending}
                for future in as_completed(futures):
                    payload, elapsed = future.result()
                    finish(futures[future], payload, elapsed)
        else:
            for index in pending:
                payload, elapsed = _execute_cell_timed(cells[index])
                finish(index, payload, elapsed)
        return payloads  # type: ignore[return-value]
