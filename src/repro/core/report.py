"""Paper-style text rendering of sweep results."""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["render_adaptive_sweep", "render_adaptive_timeline",
           "render_energy_sweep", "render_geo_sweep",
           "render_check_report", "render_consistency_sweep",
           "render_failover_sweep", "render_failover_timeline",
           "render_micro_sweep", "render_progress", "render_scale_sweep",
           "render_series",
           "render_stress_sweep", "render_surge_sweep", "render_table",
           "render_tail_sweep"]


def _energy_cell(summary: dict, key: str):
    """One J/op or $/Mops table cell from a run summary.

    Three cases: a number (normal), ``None`` stored under the key (an
    all-errors run — the energy was real, the rate is unbounded, shown
    as ``max``), or the key missing entirely (a payload cached before
    the energy meter existed — shown as ``-``, never a KeyError).
    """
    if key not in summary:
        return "-"
    value = summary[key]
    return value if value is not None else None


def _energy_cols(summary: dict) -> list:
    """The ``J/op`` + ``$/Mops`` cell pair every campaign table carries."""
    return [_energy_cell(summary, "joules_per_op"),
            _energy_cell(summary, "usd_per_mops")]


def render_progress(event, completed: Optional[int] = None) -> str:
    """One line per finished sweep cell (a :class:`CellProgress`).

    ``completed`` is the caller's running completion count; without it
    the cell's submission index stands in (exact for serial runs, merely
    indicative when cells finish out of order under ``--jobs``).
    """
    n = (event.index + 1) if completed is None else completed
    status = "cached" if event.cached else f"{event.duration_s:.1f}s"
    return f"[{n}/{event.total}] {event.label} ({status})"


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Fixed-width text table (rows may hold numbers; floats get 1–3 dp)."""
    def fmt(cell) -> str:
        if cell is None:
            return "max"
        if isinstance(cell, float):
            if cell >= 100:
                return f"{cell:.1f}"
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, series: Sequence[tuple[float, float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """One figure series as aligned (x, y) rows."""
    rows = [(x, y) for x, y in series]
    return render_table([x_label, y_label], rows, title=name)


def _micro_energy_cols(per_op: dict, ops: Sequence[str]) -> list:
    """Row-level J/op + $/Mops for one RF of the micro sweep.

    Joules add across the op tests, so the row aggregate is recovered
    as sum(J/op x ops) over sum(ops); rows from payloads that predate
    the energy meter render as ``-``.
    """
    total_j = usd = 0.0
    count = 0
    for op in ops:
        cell = per_op[op]
        jop = cell.get("joules_per_op")
        usd_m = cell.get("usd_per_mops")
        n = cell.get("ops", 0)
        if jop is None or usd_m is None or not n:
            continue
        total_j += jop * n
        usd += usd_m * (n / 1e6)
        count += n
    if not count:
        return ["-", "-"]
    return [total_j / count, usd / (count / 1e6)]


def render_micro_sweep(db: str, sweep: dict) -> str:
    """Figure 1 panel: mean latency (ms) by op, one row per RF."""
    ops = sorted({op for per_op in sweep.values() for op in per_op})
    # Keep the paper's op order where present.
    preferred = [op for op in ("update", "read", "insert", "scan") if op in ops]
    ops = preferred + [op for op in ops if op not in preferred]
    headers = ["RF"] + [f"{op} ms" for op in ops] + ["J/op", "$/Mops"]
    rows = []
    for rf in sorted(sweep):
        rows.append([rf] + [sweep[rf][op]["mean_ms"] for op in ops]
                    + _micro_energy_cols(sweep[rf], ops))
    return render_table(headers, rows,
                        title=f"Fig.1 ({db}): micro latency vs replication factor")


def render_stress_sweep(db: str, sweep: dict) -> str:
    """Figure 2 panel: peak throughput and latency, one row per (RF, workload)."""
    headers = ["RF", "workload", "peak ops/s", "latency ms", "J/op",
               "$/Mops"]
    rows = []
    for rf in sorted(sweep):
        for workload, cell in sweep[rf].items():
            rows.append([rf, workload, cell["peak_throughput"],
                         cell["latency_ms"]] + _energy_cols(cell))
    return render_table(
        headers, rows,
        title=f"Fig.2 ({db}): stress peak throughput/latency vs replication factor")


def _opt_s(value) -> str:
    """Optional seconds: ``-`` when the metric never triggered."""
    return "-" if value is None else f"{value:.1f}"


def render_failover_sweep(db: str, sweep: dict) -> str:
    """Availability report table, one row per (fault kind, CL mode).

    ``sweep`` is :func:`repro.core.sweep.failover_sweep` output.
    """
    headers = ["fault", "CL", "ops", "errors", "detect s", "recover s",
               "err win s", "stale", "J/op", "$/Mops", "errors by type"]
    rows = []
    for kind in sweep:
        for mode, summary in sweep[kind].items():
            report = summary["failover"]
            by_type = ", ".join(f"{name}={count}" for name, count
                                in report["errors_by_type"].items()) or "-"
            rows.append([kind, mode, summary["ops"], report["errors"],
                         _opt_s(report["time_to_detection_s"]),
                         _opt_s(report["time_to_recovery_s"]),
                         f"{report['error_window_s']:.1f}",
                         report["stale_reads"]]
                        + _energy_cols(summary) + [by_type])
    return render_table(
        headers, rows,
        title=f"Failover campaign ({db}): availability under injected faults")


def render_failover_timeline(label: str, report: dict) -> str:
    """Per-second ops/latency/error timeline with injection markers."""
    bucket_s = report["bucket_s"]
    markers: dict[int, list[str]] = {}
    timeline = report["timeline"]
    first = timeline[0][0] if timeline else 0.0
    for t, node, action in report["injections"]:
        index = int((t - first) // bucket_s)
        markers.setdefault(index, []).append(f"{action} n{node}")
    lines = [f"{label}  (bucket {bucket_s:g}s)",
             f"{'t(s)':>8}  {'ops':>6}  {'mean ms':>8}  {'errors':>6}"]
    for i, (start, ops, mean_ms, errors) in enumerate(timeline):
        marker = ("  <- " + ", ".join(markers[i])) if i in markers else ""
        lines.append(f"{start:8.1f}  {ops:6d}  {mean_ms:8.2f}  "
                     f"{errors:6d}{marker}")
    return "\n".join(lines)


#: ``errors_by_type`` names folded into the tail table's "timeout"
#: column (a spent budget gets its own column; everything else is
#: lumped under "other").
_TAIL_TIMEOUT_KINDS = ("RpcTimeout", "ReadTimeoutError", "WriteTimeoutError")


def render_tail_sweep(db: str, sweep: dict) -> str:
    """Tail-defense table, one row per (scenario, defense mode).

    ``sweep`` is :func:`repro.core.sweep.tail_sweep` output.  Besides
    the latency distribution up to p99.9 the table splits the error
    count into shed requests (``Overloaded`` — a bounded queue or the
    coordinator's admission control refusing work), spent end-to-end
    budgets (``DeadlineExceeded``) and plain timeouts.
    """
    headers = ["scenario", "defense", "ops/s", "p50 ms", "p95 ms",
               "p99 ms", "p99.9 ms", "errors", "shed", "deadline",
               "timeout", "other", "J/op", "$/Mops"]
    rows = []
    for scenario in sweep:
        for mode, summary in sweep[scenario].items():
            by_type = summary.get("errors_by_type", {})
            shed = by_type.get("Overloaded", 0)
            spent = by_type.get("DeadlineExceeded", 0)
            timeout = sum(by_type.get(kind, 0)
                          for kind in _TAIL_TIMEOUT_KINDS)
            other = summary["errors"] - shed - spent - timeout
            rows.append([scenario, mode, summary["throughput"],
                         summary["p50_ms"], summary["p95_ms"],
                         summary["p99_ms"], summary["p999_ms"],
                         summary["errors"], shed, spent, timeout, other]
                        + _energy_cols(summary))
    return render_table(
        headers, rows,
        title=f"Tail-latency defenses ({db}): "
              "latency distribution and error budget per defense stack")


def render_surge_sweep(db: str, sweep: dict) -> str:
    """Flash-crowd survival table, one row per (scenario, defense mode).

    ``sweep`` is :func:`repro.core.sweep.surge_sweep` output.  The
    offered/goodput pair is the campaign's headline (open-loop arrivals
    make offered load an input, so collapse reads as goodput falling
    away from it); the refusal columns then say *where* the missing
    requests went — shed by the leveling queue, clipped by the rate
    limiter, fast-failed by an open breaker, or lost to store-side
    errors — and the cache hit rate plus max staleness lag price what
    the cache-aside tier traded for the surviving goodput.
    """
    headers = ["scenario", "defense", "offered", "goodput/s", "p50 ms",
               "p95 ms", "p99 ms", "p99.9 ms", "shed", "ratelim",
               "breaker", "retried", "store err", "cache hr",
               "max lag s", "J/op", "$/Mops"]
    rows = []
    for scenario in sweep:
        for mode, summary in sweep[scenario].items():
            by_type = summary.get("errors_by_type", {})
            tier = summary.get("clienttier") or {}
            cache = tier.get("cache") or {}
            retry = tier.get("retry") or {}
            shed = by_type.get("LoadShed", 0)
            ratelimited = by_type.get("RateLimited", 0)
            breaker = by_type.get("BreakerOpen", 0)
            store = (summary["errors"] - shed - ratelimited - breaker)
            cons = summary.get("consistency") or {}
            hit_rate = cache.get("hit_rate")
            rows.append([
                scenario, mode, summary.get("offered", summary["ops"]),
                summary["throughput"], summary["p50_ms"],
                summary["p95_ms"], summary["p99_ms"], summary["p999_ms"],
                shed, ratelimited, breaker, retry.get("retried", 0),
                store, "-" if hit_rate is None else hit_rate,
                cons.get("max_staleness_lag_s", "-")]
                + _energy_cols(summary))
    return render_table(
        headers, rows,
        title=f"Flash-crowd survival ({db}): offered vs goodput and "
              "refusal breakdown per defense stack")


def _phase_cell(phases: dict, name: str) -> str:
    """``p95/ops`` for one transfer phase; ``-`` when it saw no traffic."""
    stats = phases.get(name) or {}
    if not stats.get("ops"):
        return "-"
    return f"{stats['p95_ms']:.1f}/{stats['ops']}"


def render_scale_sweep(db: str, sweep: dict) -> str:
    """Elasticity table, one row per (arrival scenario, scale mode).

    ``sweep`` is :func:`repro.core.sweep.scale_sweep` output.  The
    before/during/after columns cut each run's latency by the engine's
    transfer windows (``p95 ms/ops``), so the cost of the move itself
    and the payoff once the new node serves read side by side against
    the static control; the transfer columns say what the move was
    (bytes streamed into a Cassandra joiner, regions rebalanced onto an
    HBase server) and the stale/violation columns price its safety.
    """
    headers = ["scenario", "mode", "offered", "goodput/s", "actions",
               "xfer s", "streamed B", "moves",
               "before p95/ops", "during p95/ops", "after p95/ops",
               "stale", "viol", "J/op", "$/Mops"]
    rows = []
    for scenario in sweep:
        for mode, summary in sweep[scenario].items():
            report = summary.get("scale") or {}
            phases = report.get("phases", {})
            cons = summary.get("consistency")
            moves = report.get("rebalances", 0) + report.get("splits", 0)
            rows.append([
                scenario, mode, summary.get("offered", summary["ops"]),
                summary["throughput"],
                report.get("actions", 0),
                f"{report.get('transfer_s', 0.0):.2f}",
                report.get("streamed_bytes", 0), moves,
                _phase_cell(phases, "before"), _phase_cell(phases, "during"),
                _phase_cell(phases, "after"),
                report.get("stale_reads", 0),
                "-" if cons is None else cons["violations"]]
                + _energy_cols(summary))
    return render_table(
        headers, rows,
        title=f"Elasticity ({db}): per-phase latency across live "
              "scale-out/in, vs the static control")


def render_geo_sweep(sweep: dict) -> str:
    """Geo-replication table, one row per (CL mode, scenario, region).

    ``sweep`` is :func:`repro.core.sweep.geo_sweep` output.  The table
    answers the campaign's three questions region by region: did the
    client keep serving (thr, errors), at what latency (p95/p99 — the
    WAN round trip shows up here when the CL has to leave the region),
    and what did correctness cost (unavailable = honest refusals, stale
    = provable staleness findings, max lag, conv = divergence that
    survived heal + hint replay — always a bug).
    """
    headers = ["CL mode", "scenario", "region", "thr", "p95 ms",
               "p99 ms", "errors", "unavail", "stale", "max lag s",
               "conv", "strong", "J/op", "$/Mops"]
    rows = []
    for mode in sweep:
        for scenario, regions in sweep[mode].items():
            for region, summary in regions.items():
                cons = summary["consistency"]
                by_kind = cons["violations_by_kind"]
                unavailable = summary["errors_by_type"].get(
                    "UnavailableError", 0)
                rows.append([
                    mode, scenario, region, summary["throughput"],
                    summary["p95_ms"], summary["p99_ms"],
                    summary["errors"], unavailable,
                    by_kind.get("stale_read", 0),
                    cons["max_staleness_lag_s"],
                    by_kind.get("convergence", 0),
                    "yes" if cons["strong"] else "no"]
                    + _energy_cols(summary))
    return render_table(
        headers, rows,
        title="Geo-replication campaign (cassandra): availability, tail "
              "latency, and staleness per client region under WAN faults")


def render_check_report(db: str, sweep: dict) -> str:
    """Consistency-oracle verdict table for one ``check`` sweep.

    ``sweep`` is :func:`repro.consistency.explorer.check_sweep` output:
    violation counts by kind across the seed matrix, the violating
    seeds, and whether the minimal reproducing seed replayed to a
    bit-identical report.
    """
    fault = sweep["fault"] or "healthy"
    repair = " no-repair" if sweep["no_repair"] else ""
    rows = [[kind, count]
            for kind, count in sweep["violations_by_kind"].items()]
    lines = [render_table(
        ["violation kind", "count"], rows,
        title=(f"Consistency check ({db}, cl={sweep['mode']}, {fault}"
               f"{repair}): {len(sweep['seeds'])} seeds"))]
    if sweep["violating_seeds"]:
        lines.append(f"violating seeds: {sweep['violating_seeds']}")
        replay = sweep["replay_verified"]
        verdict = ("replay verified" if replay
                   else "replay MISMATCH" if replay is not None
                   else "replay not attempted")
        lines.append(f"minimal reproducing seed: {sweep['min_repro_seed']}"
                     f" ({verdict})")
        for example in sweep["example_violations"][:5]:
            lines.append(f"  e.g. [{example['kind']}] key={example['key']} "
                         f"at {example['at_s']:.3f}s: {example['detail']}")
    else:
        lines.append("no violations across the matrix")
    if sweep["inconclusive_keys"]:
        lines.append(f"inconclusive keys (state budget exhausted): "
                     f"{sweep['inconclusive_keys']}")
    if sweep["unexpected_violations"]:
        lines.append(f"UNEXPECTED violations (guarantee broken): "
                     f"{sweep['unexpected_violations']}")
    if sweep.get("joules_per_op") is not None:
        lines.append(f"energy across the matrix: "
                     f"{sweep['joules_per_op']:.3f} J/op, "
                     f"${sweep['usd_per_mops']:.3f}/Mops")
    return "\n".join(lines)


def _read_cl_mix(decisions: dict) -> str:
    """Compact ``ONE 71% QUORUM 29%`` read-decision mix."""
    by_cl = decisions["by_cl"].get("read", {})
    total = sum(by_cl.values())
    if not total:
        return "-"
    return " ".join(f"{cl} {count / total:.0%}"
                    for cl, count in by_cl.items())


def render_adaptive_sweep(sweep: dict) -> str:
    """Adaptive-consistency table, one row per (policy, offered load).

    ``sweep`` is :func:`repro.core.sweep.adaptive_sweep` output.  Each
    row pairs the latency half of the SLO (achieved read p95 against
    the declared bound) with the staleness half (oracle-checked
    read-your-writes / stale-read rates and the worst provable lag),
    plus the controller's read-decision mix and ladder activity.
    """
    headers = ["policy", "target", "ops/s", "read p95 ms", "RYW rate",
               "stale rate", "max lag s", "esc", "decay", "J/op",
               "$/Mops", "read CL mix"]
    rows = []
    slo = None
    for policy in sweep:
        for target, summary in sweep[policy].items():
            decisions = summary["decisions"]
            slo = decisions["slo"]
            consistency = summary["consistency"]
            reads = max(1, consistency["reads"])
            by_kind = consistency["violations_by_kind"]
            counters = decisions["policy_counters"]
            rows.append([
                policy, target, summary["throughput"],
                decisions["read_p95_ms"],
                f"{by_kind.get('read_your_writes', 0) / reads:.4f}",
                f"{by_kind.get('stale_read', 0) / reads:.4f}",
                consistency["max_staleness_lag_s"],
                counters.get("escalations", 0),
                counters.get("decays", 0) + counters.get("latency_steps", 0)]
                + _energy_cols(summary) + [_read_cl_mix(decisions)])
    title = "Adaptive consistency (cassandra, RF=3): policy vs offered load"
    if slo is not None:
        title += (f"\nSLO: p95 <= {slo['p95_ms']:g} ms, staleness <= "
                  f"{slo['staleness_s']:g} s, risk rate <= "
                  f"{slo['risk_rate']:g}")
    return render_table(headers, rows, title=title)


def render_adaptive_timeline(label: str, decisions: dict) -> str:
    """Per-window CL decision timeline next to the latency timeline.

    ``decisions`` is one summary's ``decisions`` dict.  Each row is one
    monitoring window: its read p95/exposure (from the monitor) beside
    the CL mix of the decisions taken during it (from the decision
    log), so escalations line up visibly with the breaches that caused
    them.
    """
    windows = {w["start_s"]: w for w in decisions["windows"]}
    buckets = {b["start_s"]: b["by_cl"] for b in decisions["timeline"]}
    lines = [f"{label}  (window {decisions['slo']['window_s']:g}s)",
             f"{'t(s)':>7}  {'reads':>5}  {'p95 ms':>7}  {'at-risk':>7}  "
             f"{'exposed':>7}  decisions"]
    for start in sorted(set(windows) | set(buckets)):
        window = windows.get(start)
        mix = " ".join(f"{cl}={count}"
                       for cl, count in buckets.get(start, {}).items()) or "-"
        if window is None:
            lines.append(f"{start:7.1f}  {'-':>5}  {'-':>7}  {'-':>7}  "
                         f"{'-':>7}  {mix}")
            continue
        lines.append(f"{start:7.1f}  {window['reads']:5d}  "
                     f"{window['read_p95_ms']:7.2f}  "
                     f"{window['at_risk_reads']:7d}  "
                     f"{window['exposed_reads']:7d}  {mix}")
    return "\n".join(lines)


def render_consistency_sweep(sweep: dict) -> str:
    """Figure 3: runtime vs target throughput per consistency level."""
    blocks = []
    workloads: list[str] = []
    for per_workload in sweep.values():
        for name in per_workload:
            if name not in workloads:
                workloads.append(name)
    for workload in workloads:
        headers = ["target ops/s"] + list(sweep.keys())
        targets = [t for t, _ in next(iter(sweep.values()))[workload]["series"]]
        rows = []
        for i, target in enumerate(targets):
            row = [target]
            for mode in sweep:
                row.append(sweep[mode][workload]["series"][i][1])
            rows.append(row)
        # Whole-ramp energy per mode rides below the throughput series
        # (this table is transposed: modes are columns, so the energy
        # "columns" land as the bottom two rows).
        rows.append(["J/op"] + [_energy_cell(sweep[mode][workload],
                                             "joules_per_op")
                                for mode in sweep])
        rows.append(["$/Mops"] + [_energy_cell(sweep[mode][workload],
                                               "usd_per_mops")
                                  for mode in sweep])
        blocks.append(render_table(
            headers, rows,
            title=f"Fig.3 (cassandra, RF=3): runtime throughput — {workload}"))
    return "\n\n".join(blocks)


def render_energy_sweep(db: str, sweep: dict) -> str:
    """Energy/cost table, one row per (RF, CL round, power mode).

    ``sweep`` is :func:`repro.core.sweep.energy_sweep` output.  The
    J/op + $/Mops pair is the headline; the idle/sleep split and wake
    columns explain *where* a power mode's savings came from and what
    they cost in wake transitions, and the p95/lag/violation columns
    price the savings in latency and staleness — power management that
    broke the consistency guarantee or the tail would not be a win.
    """
    headers = ["RF", "CL", "power", "ops/s", "p95 ms", "p99 ms",
               "J/op", "$/Mops", "idle J", "sleep J", "wakes",
               "wake s", "max lag s", "viol"]
    rows = []
    for rf in sorted(sweep):
        for cl, by_power in sweep[rf].items():
            for power, summary in by_power.items():
                energy = summary.get("energy") or {}
                cons = summary.get("consistency") or {}
                rows.append([
                    rf, cl, power, summary["throughput"],
                    summary["p95_ms"], summary["p99_ms"]]
                    + _energy_cols(summary)
                    + [energy.get("idle_j", "-"),
                       energy.get("sleep_j", "-"),
                       energy.get("wakes", "-"),
                       energy.get("wake_latency_s", "-"),
                       cons.get("max_staleness_lag_s", "-"),
                       cons.get("violations", "-")])
    return render_table(
        headers, rows,
        title=f"Energy & cost ({db}): joules/op and $/Mops per "
              "RF x CL x power mode")
