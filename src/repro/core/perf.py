"""Kernel profiling + microbenchmarks behind ``repro-bench perf``.

Every campaign in this repo — the fig1/fig2/fig3 sweeps, failover, tail,
the consistency oracle, the adaptive controller — bottoms out in the
discrete-event kernel, so kernel throughput bounds how many scenarios
and how many simulated users any of them can cover.  This module makes
that number a first-class artifact:

- a suite of **microbenchmarks** isolating the kernel's hot paths (raw
  event churn, RPC-style timer races, process switching, AllOf/AnyOf
  fan-in, YCSB operation/key generation, Measurements recording), and
- a **calibrated stress cell** (a fixed Cassandra read/update cell, same
  config on every machine) measured end to end in simulated-ops/sec and
  kernel-events/sec.

``run_perf_suite`` returns a JSON-safe report; the CLI writes it to
``BENCH_perf.json``.  ``compare_to_baseline`` turns two such reports
into a regression verdict, which is what the ``perf-smoke`` CI gate
runs against the committed baseline: optimizations must ratchet the
trajectory forward, never silently backward.

Throughput numbers are wall-clock dependent (machine, Python version),
so the CI gate uses a generous threshold; the *shape* of the report
(stage names, ops counts, simulated durations, kernel event counts) is
deterministic, and the pin test asserts the stress cell's kernel trace
is byte-identical across runs.
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.core.config import (ExperimentConfig, default_stress_config,
                               scaled_stress_storage)
from repro.sim.kernel import AllOf, AnyOf, Environment
from repro.sim.trace import KernelTracer
from repro.ycsb.measurements import Measurements
from repro.ycsb.workload import STRESS_WORKLOADS, Workload

__all__ = [
    "PerfScale",
    "QUICK_PERF_SCALE",
    "SCHEMA_VERSION",
    "compare_to_baseline",
    "perf_stress_config",
    "run_perf_suite",
    "run_stress_cell",
]

#: Bump when the report layout changes (stage names, metric meanings).
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class PerfScale:
    """Iteration counts for the microbenchmarks and the stress cell."""

    #: Bare timeouts scheduled + dispatched (raw heap churn).
    churn_events: int = 200_000
    #: RPC-style AnyOf(work | timer) races, timer going stale.
    timer_races: int = 30_000
    #: Event-driven ping-pong switches between two processes.
    switches: int = 100_000
    #: AllOf/AnyOf rounds over ``fanin_width`` timeouts each.
    fanin_rounds: int = 15_000
    fanin_width: int = 5
    #: YCSB operation + key choices drawn.
    keygen_ops: int = 150_000
    #: Latency samples recorded + summarized.
    measure_samples: int = 150_000
    #: Stress-cell sizing (fixed => comparable across machines).
    stress_records: int = 8_000
    stress_operations: int = 8_000
    stress_threads: int = 32
    stress_nodes: int = 8


QUICK_PERF_SCALE = PerfScale(
    churn_events=40_000,
    timer_races=6_000,
    switches=20_000,
    fanin_rounds=3_000,
    keygen_ops=30_000,
    measure_samples=30_000,
    stress_records=2_000,
    stress_operations=2_000,
    stress_threads=16,
    stress_nodes=6,
)


def _stage(ops: int, unit: str, fn: Callable[[], dict | None]) -> dict:
    """Time ``fn`` and fold its extra fields into a stage record."""
    started = time.perf_counter()
    extra = fn() or {}
    wall = time.perf_counter() - started
    record = {
        "ops": ops,
        "unit": unit,
        "wall_s": wall,
        "per_s": ops / wall if wall > 0 else 0.0,
    }
    record.update(extra)
    return record


# -- microbenchmarks -------------------------------------------------------

def bench_event_churn(n: int) -> dict:
    """Schedule + dispatch ``n`` bare timeouts: the floor cost of one
    kernel event (heappush, heappop, callback dispatch)."""
    def run() -> dict:
        env = Environment()

        def feeder(env, remaining):
            while remaining:
                yield env.timeout(0.001)
                remaining -= 1

        # A handful of concurrent feeders keeps the heap non-trivial.
        per = n // 4
        for _ in range(4):
            env.process(feeder(env, per))
        env.run()
        return {"events": env.processed_events}

    return _stage(n, "events", run)


def bench_timer_storm(n: int) -> dict:
    """RPC-shaped races: ``AnyOf(work | timer)`` where the work wins and
    the timer goes stale — the pattern every timed RPC call produces.
    Measures the cost of scheduling timers that almost never fire
    usefully (the case a batched/cheap timer path must make fast)."""
    def run() -> dict:
        env = Environment()

        def caller(env, rounds):
            for _ in range(rounds):
                work = env.timeout(0.0005, "ok")
                timer = env.timeout(0.05)
                result = yield AnyOf(env, [work, timer])
                assert work in result

        per = n // 8
        for _ in range(8):
            env.process(caller(env, per))
        env.run()
        return {"events": env.processed_events}

    return _stage(n, "races", run)


def bench_process_switch(n: int) -> dict:
    """Event-driven ping-pong: the pure process suspend/resume path
    (``Process._resume`` + generator send) with no timer involved."""
    def run() -> dict:
        env = Environment()
        box = {"ping": env.event()}

        def producer(env, rounds):
            for _ in range(rounds):
                event = box["ping"]
                box["ping"] = env.event()
                event.succeed()
                yield env.timeout(0.001)

        def consumer(env, rounds):
            for _ in range(rounds):
                yield box["ping"]

        # Each round is one producer resume + one consumer resume.
        env.process(producer(env, n // 2))
        env.process(consumer(env, n // 2))
        env.run()
        return {"events": env.processed_events}

    return _stage(n, "switches", run)


def bench_fanin(rounds: int, width: int) -> dict:
    """AllOf + AnyOf over ``width`` timeouts per round — the replica
    fan-in shape of every quorum write/read."""
    def run() -> dict:
        env = Environment()

        def quorum(env, rounds):
            for i in range(rounds):
                acks = [env.timeout(0.0001 * (j + 1)) for j in range(width)]
                if i % 2:
                    yield AllOf(env, acks)
                else:
                    timer = env.timeout(1.0)
                    yield AnyOf(env, [AllOf(env, acks), timer])

        per = rounds // 4
        for _ in range(4):
            env.process(quorum(env, per))
        env.run()
        return {"events": env.processed_events}

    return _stage(rounds, "rounds", run)


def bench_ycsb_keygen(n: int) -> dict:
    """Operation + key choice per op for a zipfian stress workload —
    the client-side cost paid before any simulated work happens."""
    def run() -> None:
        import random
        workload = Workload(STRESS_WORKLOADS["read_update"], 100_000,
                            random.Random(42))
        next_op = workload.next_operation
        next_key = workload.next_read_key
        for _ in range(n):
            next_op()
            next_key()

    return _stage(n, "keys", run)


def bench_measurements(n: int) -> dict:
    """Record ``n`` samples + error events, then take the summaries the
    report layer takes (per-op stats, overall, timeline)."""
    def run() -> None:
        m = Measurements()
        record = m.record
        t = 0.0
        for i in range(n):
            t += 0.0001
            record("read" if i % 3 else "update", t, 0.001 + (i % 97) * 1e-6)
            if i % 500 == 0:
                m.record_error("read", kind="RpcTimeout", at=t)
        m.started_at, m.finished_at = 0.0, t
        for _ in range(3):  # reports consume stats repeatedly
            m.stats("read")
            m.stats("update")
            m.overall_stats()
        m.timeline(1.0)
        m.timeline_with_errors(1.0)

    return _stage(n, "samples", run)


# -- the calibrated stress cell -------------------------------------------

def perf_stress_config(scale: PerfScale) -> ExperimentConfig:
    """The fixed stress cell every perf report measures: Cassandra
    read/update at RF 3 — the paper's most replication-sensitive mix and
    the shape (quorum fan-out, timers, zipfian keys) the optimizations
    target.  Fixed sizing keeps reports comparable across commits."""
    config = default_stress_config("cassandra", "read_update",
                                   replication=3, seed=42)
    return replace(
        config,
        record_count=scale.stress_records,
        operation_count=scale.stress_operations,
        n_threads=scale.stress_threads,
        n_nodes=scale.stress_nodes,
        settle_s=1.0,
        storage=scaled_stress_storage(scale.stress_records, 1000,
                                      scale.stress_nodes - 1),
    )


def run_stress_cell(scale: PerfScale, trace: bool = False) -> dict:
    """Load + run the calibrated stress cell; returns stage fields.

    With ``trace`` a :class:`KernelTracer` hashes the full kernel
    schedule (slower; used by the determinism pin, not by timing runs).
    """
    from repro.core.experiment import ExperimentSession, summarize_run

    config = perf_stress_config(scale)
    session = ExperimentSession(config)
    tracer = KernelTracer(session.env) if trace else None

    load_started = time.perf_counter()
    session.load()
    load_wall = time.perf_counter() - load_started
    load_events = session.env.processed_events

    run_started = time.perf_counter()
    result = session.run_cell()
    run_wall = time.perf_counter() - run_started
    run_events = session.env.processed_events - load_events

    ops = result.operations
    record = {
        "ops": ops,
        "unit": "sim-ops",
        "wall_s": run_wall,
        "per_s": ops / run_wall if run_wall > 0 else 0.0,
        "events": run_events,
        "events_per_s": run_events / run_wall if run_wall > 0 else 0.0,
        "sim_duration_s": result.duration_s,
        "sim_throughput": result.throughput,
        "load_wall_s": load_wall,
        "load_per_s": (config.record_count / load_wall
                       if load_wall > 0 else 0.0),
        "summary": summarize_run(result),
    }
    if tracer is not None:
        record["trace_digest"] = tracer.digest()
        record["trace_events"] = tracer.events
    return record


def profile_stress_cell(scale: PerfScale, top: int = 25) -> str:
    """cProfile the stress cell; returns the formatted hot-function table."""
    from repro.core.experiment import ExperimentSession

    config = perf_stress_config(scale)
    session = ExperimentSession(config)
    session.load()
    profiler = cProfile.Profile()
    profiler.enable()
    session.run_cell()
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out).sort_stats("cumulative")
    stats.print_stats(top)
    return out.getvalue()


# -- suite + baseline comparison ------------------------------------------

def run_perf_suite(scale: Optional[PerfScale] = None,
                   quick: bool = False,
                   progress: Optional[Callable[[str, dict], None]] = None
                   ) -> dict:
    """Run every stage; returns the JSON-safe ``BENCH_perf.json`` body."""
    if scale is None:
        scale = QUICK_PERF_SCALE if quick else PerfScale()

    stages: dict[str, dict] = {}

    def add(name: str, record: dict) -> None:
        stages[name] = record
        if progress is not None:
            progress(name, record)

    add("event_churn", bench_event_churn(scale.churn_events))
    add("timer_storm", bench_timer_storm(scale.timer_races))
    add("process_switch", bench_process_switch(scale.switches))
    add("fanin", bench_fanin(scale.fanin_rounds, scale.fanin_width))
    add("ycsb_keygen", bench_ycsb_keygen(scale.keygen_ops))
    add("measurements", bench_measurements(scale.measure_samples))
    add("stress_cell", run_stress_cell(scale))

    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "stages": stages,
    }


#: Stage -> throughput keys the regression gate compares.  Only rate
#: metrics participate: absolute wall times vary with machine load, but
#: so do rates — hence the generous default threshold in the CI gate.
_GATED_METRICS = {
    "event_churn": ("per_s",),
    "timer_storm": ("per_s",),
    "process_switch": ("per_s",),
    "fanin": ("per_s",),
    "ycsb_keygen": ("per_s",),
    "measurements": ("per_s",),
    "stress_cell": ("per_s", "events_per_s"),
}


def compare_to_baseline(current: dict, baseline: dict,
                        max_regression: float = 0.25) -> list[str]:
    """Regression verdict: messages for every gated metric that fell
    more than ``max_regression`` below the baseline (empty = pass).

    Stages missing from either report are skipped (schema drift must
    not masquerade as a perf regression); a schema mismatch is reported
    as a single advisory skip message prefix-tagged ``skip:``.
    """
    problems: list[str] = []
    if current.get("schema") != baseline.get("schema"):
        return [f"skip: schema mismatch (current "
                f"{current.get('schema')} vs baseline "
                f"{baseline.get('schema')}); baseline needs regeneration"]
    current_stages = current.get("stages", {})
    baseline_stages = baseline.get("stages", {})
    for stage, metrics in _GATED_METRICS.items():
        cur = current_stages.get(stage)
        base = baseline_stages.get(stage)
        if not cur or not base:
            continue
        for metric in metrics:
            cur_v = cur.get(metric)
            base_v = base.get(metric)
            if not isinstance(cur_v, (int, float)) \
                    or not isinstance(base_v, (int, float)) or base_v <= 0:
                continue
            floor = base_v * (1.0 - max_regression)
            if cur_v < floor:
                problems.append(
                    f"{stage}.{metric}: {cur_v:,.0f}/s is "
                    f"{100 * (1 - cur_v / base_v):.1f}% below baseline "
                    f"{base_v:,.0f}/s (allowed {100 * max_regression:.0f}%)")
    return problems


def render_perf_report(report: dict) -> str:
    """Human-readable table of a perf report (CLI output)."""
    lines = [
        f"repro-bench perf (schema {report['schema']}, "
        f"python {report['python']}, "
        f"{'quick' if report.get('quick') else 'full'} scale)",
        "",
        f"{'stage':<16} {'ops':>10} {'wall s':>8} {'per sec':>14} unit",
        "-" * 60,
    ]
    for name, stage in report["stages"].items():
        lines.append(
            f"{name:<16} {stage['ops']:>10,} {stage['wall_s']:>8.3f} "
            f"{stage['per_s']:>14,.0f} {stage['unit']}")
    stress = report["stages"].get("stress_cell")
    if stress:
        lines += [
            "",
            f"stress cell: {stress['per_s']:,.0f} simulated ops/s, "
            f"{stress['events_per_s']:,.0f} kernel events/s "
            f"({stress['events']:,} events for {stress['ops']:,} ops, "
            f"{stress['events'] / max(1, stress['ops']):.1f} events/op)",
            f"             load {stress['load_per_s']:,.0f} records/s; "
            f"simulated {stress['sim_duration_s']:.2f}s at "
            f"{stress['sim_throughput']:,.0f} sim-ops/s",
        ]
    return "\n".join(lines)
