"""Experiment orchestration: the repository's public face.

Compose a cluster, a database, and a YCSB workload into one experiment
cell (:mod:`repro.core.experiment`), sweep the paper's knobs
(:mod:`repro.core.sweep`), and render paper-style tables
(:mod:`repro.core.report`).
"""

from repro.core.config import (
    AdaptiveConfig,
    CassandraConfig,
    ExperimentConfig,
    HBaseConfig,
    default_check_config,
    default_micro_config,
    default_stress_config,
)
from repro.core.experiment import (
    ExperimentResult,
    ExperimentSession,
    run_experiment,
)
from repro.core.failover import StalenessProbe, build_failover_report
from repro.core.report import (
    render_adaptive_sweep,
    render_adaptive_timeline,
    render_check_report,
    render_consistency_sweep,
    render_failover_sweep,
    render_failover_timeline,
    render_micro_sweep,
    render_series,
    render_stress_sweep,
    render_table,
)
from repro.core.sla import Sla, SlaReport, evaluate_sla, max_throughput_under_sla
from repro.core.sweep import (
    ADAPTIVE_POLICIES,
    CHECK_CL_MODES,
    CONSISTENCY_MODES,
    FAILOVER_CL_MODES,
    QUICK_ADAPTIVE_SCALE,
    QUICK_CHECK_SCALE,
    QUICK_FAILOVER_SCALE,
    QUICK_SCALE,
    AdaptiveScale,
    CheckScale,
    FailoverScale,
    SweepScale,
    adaptive_sweep,
    check_sweep,
    consistency_stress_sweep,
    failover_sweep,
    replication_micro_sweep,
    replication_stress_sweep,
)

__all__ = [
    "ADAPTIVE_POLICIES",
    "CHECK_CL_MODES",
    "CONSISTENCY_MODES",
    "AdaptiveConfig",
    "AdaptiveScale",
    "CassandraConfig",
    "CheckScale",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSession",
    "FAILOVER_CL_MODES",
    "FailoverScale",
    "HBaseConfig",
    "QUICK_ADAPTIVE_SCALE",
    "QUICK_CHECK_SCALE",
    "QUICK_FAILOVER_SCALE",
    "QUICK_SCALE",
    "Sla",
    "SlaReport",
    "StalenessProbe",
    "SweepScale",
    "adaptive_sweep",
    "build_failover_report",
    "check_sweep",
    "consistency_stress_sweep",
    "default_check_config",
    "default_micro_config",
    "default_stress_config",
    "evaluate_sla",
    "failover_sweep",
    "max_throughput_under_sla",
    "render_adaptive_sweep",
    "render_adaptive_timeline",
    "render_check_report",
    "render_consistency_sweep",
    "render_failover_sweep",
    "render_failover_timeline",
    "render_micro_sweep",
    "render_series",
    "render_stress_sweep",
    "render_table",
    "replication_micro_sweep",
    "replication_stress_sweep",
    "run_experiment",
]
