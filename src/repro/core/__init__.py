"""Experiment orchestration: the repository's public face.

Compose a cluster, a database, and a YCSB workload into one experiment
cell (:mod:`repro.core.experiment`), sweep the paper's knobs
(:mod:`repro.core.sweep`), and render paper-style tables
(:mod:`repro.core.report`).
"""

from repro.core.config import (
    CassandraConfig,
    ExperimentConfig,
    HBaseConfig,
    default_micro_config,
    default_stress_config,
)
from repro.core.experiment import (
    ExperimentResult,
    ExperimentSession,
    run_experiment,
)
from repro.core.report import (
    render_consistency_sweep,
    render_micro_sweep,
    render_series,
    render_stress_sweep,
    render_table,
)
from repro.core.sla import Sla, SlaReport, evaluate_sla, max_throughput_under_sla
from repro.core.sweep import (
    CONSISTENCY_MODES,
    QUICK_SCALE,
    SweepScale,
    consistency_stress_sweep,
    replication_micro_sweep,
    replication_stress_sweep,
)

__all__ = [
    "CONSISTENCY_MODES",
    "CassandraConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSession",
    "HBaseConfig",
    "QUICK_SCALE",
    "Sla",
    "SlaReport",
    "SweepScale",
    "consistency_stress_sweep",
    "default_micro_config",
    "default_stress_config",
    "evaluate_sla",
    "max_throughput_under_sla",
    "render_consistency_sweep",
    "render_micro_sweep",
    "render_series",
    "render_stress_sweep",
    "render_table",
    "replication_micro_sweep",
    "replication_stress_sweep",
    "run_experiment",
]
