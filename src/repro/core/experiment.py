"""Run benchmark cells: build, load, (optionally) reuse, measure.

Two entry points:

- :func:`run_experiment` — one config in, one result out.
- :class:`ExperimentSession` — build + load a deployment once, then run
  several measured cells against it (the paper runs the five stress
  workloads back-to-back on the same loaded cluster per replication
  factor, and the consistency rounds back-to-back at RF 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import isfinite
from typing import Optional

from repro.adaptive.controller import AdaptiveController
from repro.adaptive.monitor import Monitor, SloSpec
from repro.adaptive.policy import EnergyAwarePolicy, make_policy
from repro.cassandra.client import CassandraSession
from repro.cassandra.consistency import ConsistencyLevel
from repro.cassandra.deployment import CassandraCluster, CassandraSpec
from repro.clienttier.openloop import (ClientTier, OpenLoopClient,
                                       build_client_stack)
from repro.cluster.elasticity import ScaleEngine, build_scale_report
from repro.cluster.failure import FailureInjector, FaultSchedule
from repro.cluster.topology import Cluster, ClusterSpec
from repro.consistency.history import HistoryRecorder
from repro.consistency.oracle import build_consistency_report
from repro.core.config import ExperimentConfig
from repro.core.failover import StalenessProbe, build_failover_report
from repro.energy import EnergyMeter, PowerManager
from repro.hbase.client import HBaseClient
from repro.hbase.deployment import HBaseCluster, HBaseSpec
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.ycsb.arrivals import UserSessions, make_arrivals
from repro.ycsb.client import LoadResult, RunResult, YcsbClient
from repro.ycsb.db import CassandraBinding, DbBinding, HBaseBinding
from repro.ycsb.measurements import Measurements
from repro.ycsb.workload import Workload, WorkloadSpec

__all__ = ["ExperimentResult", "ExperimentSession", "run_experiment",
           "summarize_run"]


def summarize_run(result: "RunResult") -> dict:
    """JSON-safe summary of one measured cell run.

    This is the unit the sweep layer (and the parallel runner's on-disk
    cell cache) traffics in: plain floats/ints only, so a summary
    round-trips through ``json`` without loss and a cached cell is
    indistinguishable from a freshly computed one.
    """
    overall = result.overall()
    summary = {
        "workload": result.workload,
        "target": result.target_throughput,
        "mean_ms": overall.mean_ms,
        "p50_ms": overall.p50 * 1000.0,
        "p95_ms": overall.p95 * 1000.0,
        "p99_ms": overall.p99_ms,
        "p999_ms": overall.p999_ms,
        "throughput": result.throughput,
        "ops": overall.count,
        "errors": overall.errors,
        "errors_by_type": dict(
            sorted(result.measurements.errors_by_type.items())),
    }
    if result.failover is not None:
        summary["failover"] = result.failover
    if result.consistency is not None:
        summary["consistency"] = result.consistency
    if result.decisions is not None:
        summary["decisions"] = result.decisions
    if result.offered is not None:
        # Open-loop runs: offered load is an input, goodput an output.
        # "throughput" above equals goodput; the explicit pair makes the
        # collapse (offered >> goodput) readable at a glance.
        summary["offered"] = result.offered
        summary["offered_per_s"] = result.measurements.offered_throughput
        summary["goodput"] = result.throughput
    if result.clienttier is not None:
        summary["clienttier"] = result.clienttier
    if result.scale is not None:
        summary["scale"] = result.scale
    if result.energy is not None:
        summary["energy"] = result.energy.to_dict()
        jop = result.energy.joules_per_op(overall.count)
        # JSON has no inf: an all-errors window stores None (renderers
        # show it as "max", never as free).
        summary["joules_per_op"] = jop if isfinite(jop) else None
    if result.cost is not None:
        summary["cost"] = result.cost.to_dict()
        upm = result.cost.usd_per_mops(overall.count)
        summary["usd_per_mops"] = upm if isfinite(upm) else None
    return summary


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one cell produced."""

    config: ExperimentConfig
    load: LoadResult
    run: RunResult
    #: Engine-internal counters (read repairs, cache hit rates, ...).
    db_stats: dict


class ExperimentSession:
    """One deployed + loaded database, ready to run measured cells."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.env = Environment()
        self.rngs = RngRegistry(config.seed)
        if config.geo is not None:
            from repro.cluster.geo import GeoCluster, GeoSpec
            geo = config.geo
            region_latency = {frozenset({a, b}): s
                              for a, b, s in geo.region_rtt_s}
            self.cluster = GeoCluster(self.env, GeoSpec(
                datacenters=dict(geo.datacenters),
                client_datacenter=geo.client_datacenters[0],
                client_datacenters=tuple(geo.client_datacenters),
                region_latency_s=region_latency,
                wan_bandwidth_bps=geo.wan_bandwidth_bps), self.rngs)
            self.client_node = self.cluster.client_in(
                geo.client_datacenters[0])
        else:
            self.cluster = Cluster(self.env,
                                   ClusterSpec(n_nodes=config.n_nodes),
                                   self.rngs)
            self.client_node = self.cluster.node(config.n_nodes - 1)
        self.power_spec = config.energy.power_spec()
        self.cost_spec = config.energy.cost_spec()
        if config.energy.power_mode != "always_on":
            # Power management covers the servers only — the client
            # machine is the workload generator, not part of the system
            # under test.  ``"policy"`` mode starts everything awake and
            # lets an energy-aware adaptive policy park/unpark per
            # window; ``"race_to_sleep"`` parks unconditionally.
            mode = ("race_to_sleep"
                    if config.energy.power_mode == "race_to_sleep"
                    else "always_on")
            if config.geo is not None:
                servers = [self.cluster.nodes[i]
                           for i in self.cluster.server_ids]
            else:
                servers = [n for n in self.cluster.nodes
                           if n is not self.client_node]
            for node in servers:
                manager = PowerManager(self.power_spec, mode=mode,
                                       now=self.env.now)
                node.power = manager
                node.disk.power = manager
        self._loaded = False
        self.hbase: Optional[HBaseCluster] = None
        self.cassandra: Optional[CassandraCluster] = None
        self._session: Optional[CassandraSession] = None
        #: Geo deployments: one driver session + binding per client
        #: region, keyed by datacenter (``run_cell(client_dc=...)``
        #: measures from that region's client node).
        self._geo_sessions: dict[str, CassandraSession] = {}
        self._geo_bindings: dict[str, DbBinding] = {}
        #: Recorded (``check_consistency``) runs so far — namespaces each
        #: run's write tags so values surviving in the store from an
        #: earlier run can never alias a later run's op ids.
        self._recorded_runs = 0

        tail = config.tail
        #: Client-tier driver overrides: a short per-operation timeout
        #: makes an overloaded store fail fast enough for client-side
        #: defenses (breaker windows, retry budgets) to react within a
        #: short surge campaign.
        driver_kwargs: dict = {}
        if config.clienttier.op_timeout_s is not None:
            driver_kwargs["op_timeout_s"] = config.clienttier.op_timeout_s
        #: Trailing servers provisioned outside the serving set, the
        #: elasticity campaign's scale-out pool (0 = classic layout).
        spares = (config.elasticity.spare_nodes
                  if config.elasticity is not None else 0)
        if config.db == "hbase":
            hc = config.hbase
            self.hbase = HBaseCluster(self.cluster, HBaseSpec(
                replication=hc.replication,
                regions_per_server=hc.regions_per_server,
                storage=config.storage,
                wal_sync=hc.wal_sync,
                failure_detection_s=hc.failure_detection_s,
                region_recovery_s=hc.region_recovery_s,
                region_move_s=hc.region_move_s,
                handler_slots=tail.handler_slots,
                max_handler_queue=tail.max_handler_queue,
                spare_servers=spares,
            ))
            self.binding: DbBinding = HBaseBinding(
                HBaseClient(self.hbase, self.client_node,
                            rng=self.rngs.stream("hbase.client.backoff"),
                            speculative_retry=tail.hedge,
                            deadline_s=tail.deadline_s, **driver_kwargs))
        else:
            cc = config.cassandra
            self.cassandra = CassandraCluster(self.cluster, CassandraSpec(
                replication=cc.replication,
                vnodes=cc.vnodes,
                read_repair_chance=cc.read_repair_chance,
                blocking_read_repair=cc.blocking_read_repair,
                hint_replay_interval_s=cc.hint_replay_interval_s,
                storage=config.storage,
                speculative_retry=tail.hedge,
                handler_slots=tail.handler_slots,
                max_handler_queue=tail.max_handler_queue,
                coordinator_max_inflight=tail.max_inflight,
                replication_per_dc=(dict(config.geo.replication_per_dc)
                                    if config.geo is not None else None),
                spare_nodes=spares,
            ))
            if config.geo is not None:
                for dc in config.geo.client_datacenters:
                    session = CassandraSession(
                        self.cassandra, self.cluster.client_in(dc),
                        read_cl=cc.read_cl, write_cl=cc.write_cl,
                        deadline_s=tail.deadline_s, **driver_kwargs)
                    self._geo_sessions[dc] = session
                    self._geo_bindings[dc] = CassandraBinding(session)
                home = config.geo.client_datacenters[0]
                self._session = self._geo_sessions[home]
                self.binding = self._geo_bindings[home]
            else:
                self._session = CassandraSession(
                    self.cassandra, self.client_node,
                    read_cl=cc.read_cl, write_cl=cc.write_cl,
                    deadline_s=tail.deadline_s, **driver_kwargs)
                self.binding = CassandraBinding(self._session)

    @property
    def cassandra_session(self) -> CassandraSession:
        """The driver session of a Cassandra deployment (for examples and
        probes that drive operations outside the YCSB client)."""
        if self._session is None:
            raise ValueError("not a Cassandra deployment")
        return self._session

    def _new_workload(self, spec: WorkloadSpec) -> Workload:
        return Workload(spec, self.config.record_count,
                        self.rngs.stream(f"workload.{spec.name}.{self.env.now}"))

    def load(self) -> LoadResult:
        """Insert the record population (idempotent)."""
        if self._loaded:
            raise RuntimeError("session already loaded")
        workload = self._new_workload(self.config.workload)
        client = YcsbClient(self.env, self.binding, workload,
                            self.rngs.stream("client.load"),
                            client_node=self.client_node)
        process = self.env.process(
            client.load(self.config.record_count, self.config.load_threads),
            name="load")
        result: LoadResult = self.env.run(until=process)
        self._settle()
        self._loaded = True
        return result

    def _settle(self) -> None:
        """Let flushes/compactions/repairs drain between cells."""
        if self.config.settle_s > 0:
            self.env.run(until=self.env.now + self.config.settle_s)

    def _drain_hints(self, max_wait_s: float = 30.0) -> None:
        """Run the clock until hinted handoff has fully replayed.

        A write acknowledged during a partition may only become a hint
        when its replica RPC times out (the WAN in-flight window), so
        the drain first waits out one replica timeout plus a replay
        tick, then keeps running while any live coordinator still holds
        hints for a live target.  Hints for still-dead targets do not
        block (a dead replica is invisible to the convergence check
        too); ``max_wait_s`` bounds the wait either way.
        """
        cassandra = self.cassandra
        if cassandra is None:
            return
        env = self.env
        spec = cassandra.spec
        env.run(until=env.now + spec.replica_timeout_s
                + spec.hint_replay_interval_s + 0.1)
        deadline = env.now + max_wait_s
        nodes = list(cassandra.nodes.values())
        step = max(0.25, spec.hint_replay_interval_s / 2.0)
        while env.now < deadline and any(
                n.node.alive and n.hints.pending_for(self.cluster)
                for n in nodes):
            env.run(until=env.now + step)

    def warm(self, operations: Optional[int] = None,
             workload: Optional[WorkloadSpec] = None) -> None:
        """Run an unmeasured cache-warming mix (the paper's §6 cold-start
        countermeasure: "run the tests for a long time" before trusting
        latency numbers).  Uses a read-heavy mix by default so block
        caches reach steady state before the first measured cell."""
        from repro.ycsb.workload import STRESS_WORKLOADS
        self.run_cell(workload=workload or STRESS_WORKLOADS["read_mostly"],
                      operation_count=operations or self.config.operation_count,
                      warmup_fraction=None)

    def run_cell(self, workload: Optional[WorkloadSpec] = None,
                 operation_count: Optional[int] = None,
                 target_throughput: Optional[float] = None,
                 n_threads: Optional[int] = None,
                 read_cl: Optional[ConsistencyLevel] = None,
                 write_cl: Optional[ConsistencyLevel] = None,
                 warmup_fraction: Optional[float] = 0.0,
                 inject_faults: bool = False,
                 check_consistency: bool = False,
                 adaptive: Optional[str] = None,
                 client_dc: Optional[str] = None,
                 open_loop: bool = False,
                 scale: bool = False) -> RunResult:
        """Run one measured workload cell on the loaded deployment.

        With ``inject_faults`` the config's fault schedule is armed
        relative to the run's start, a read-your-writes probe runs
        alongside the workload, and the result carries a
        :func:`~repro.core.failover.build_failover_report` dict.

        With ``check_consistency`` every database operation is recorded
        into a Jepsen-style history (writes tagged with unique values)
        and the result carries a
        :func:`~repro.consistency.oracle.build_consistency_report` dict,
        built after the post-run settle so the convergence check sees a
        quiescent cluster.

        With ``adaptive`` (a policy name, Cassandra only) the named
        :mod:`repro.adaptive` policy picks the consistency level per
        request under the config's SLO; the result carries the decision
        log, and the consistency report (when also checking) classifies
        the guarantee by the policy's *floor* CLs — the weakest it may
        issue — rather than whatever the last request happened to use.

        On a geo deployment ``client_dc`` selects which region's client
        node drives (and measures) the run; the default is the first
        configured client datacenter.  Per-region sweeps run the same
        cell once per region.

        With ``open_loop`` the run is driven by the config's
        :class:`~repro.core.config.ArrivalConfig` through the resilient
        client tier (:mod:`repro.clienttier`) built from the config's
        :class:`~repro.core.config.ClientTierConfig`: arrivals dispatch
        at their scheduled times regardless of in-flight work, latency
        is measured from intended arrival, and the result carries the
        offered count plus the tier's accounting.  When also checking
        consistency, the history recorder wraps *outside* the tier so
        cache-served (possibly stale) reads are recorded and priced by
        the oracle.  ``n_threads``/``target_throughput``/
        ``warmup_fraction`` do not apply; ``adaptive`` is unsupported.

        With ``scale`` the config's
        :class:`~repro.core.config.ElasticityConfig` is armed relative
        to the run's start: a :class:`~repro.cluster.elasticity.ScaleEngine`
        adds/removes nodes mid-run (manual schedule or p95-driven
        autoscaler), a read-your-writes probe runs alongside the
        workload, and the result carries a
        :func:`~repro.cluster.elasticity.build_scale_report` dict with
        per-phase (before/during/after transfer) latency and staleness.
        """
        if not self._loaded:
            raise RuntimeError("call load() before run_cell()")
        active_session = self._session
        active_binding: DbBinding = self.binding
        client_node = self.client_node
        active_dc: Optional[str] = None
        if self.config.geo is not None:
            active_dc = client_dc or self.config.geo.client_datacenters[0]
            if active_dc not in self._geo_sessions:
                raise ValueError(
                    f"no client in datacenter {active_dc!r}; configured: "
                    f"{list(self._geo_sessions)}")
            active_session = self._geo_sessions[active_dc]
            active_binding = self._geo_bindings[active_dc]
            client_node = self.cluster.client_in(active_dc)
        elif client_dc is not None:
            raise ValueError("client_dc requires a geo deployment")
        if (read_cl or write_cl) and active_session is None:
            raise ValueError("consistency levels only apply to Cassandra")
        if active_session is not None:
            if read_cl is not None:
                active_session.read_cl = read_cl
            if write_cl is not None:
                active_session.write_cl = write_cl
        spec = workload or self.config.workload
        runtime_workload = self._new_workload(spec)
        tier: Optional[ClientTier] = None
        if open_loop:
            if self.config.arrivals is None:
                raise ValueError("open_loop runs need config.arrivals")
            if adaptive is not None:
                raise ValueError(
                    "adaptive consistency control is closed-loop only")
            tier = build_client_stack(active_binding, self.env, self.rngs,
                                      self.config.clienttier)
        recorder: Optional[HistoryRecorder] = None
        # The recorder wraps *outside* the tier: a cache hit is an
        # observation the oracle must price, not skip.  The staleness
        # probe (below) keeps using the raw ``active_binding`` — its
        # read-your-writes measurements must not be cache-served, and
        # an open breaker must not kill the probe process.
        binding: DbBinding = tier.binding if tier is not None \
            else active_binding
        if check_consistency:
            read_cl_of = write_cl_of = None
            if active_session is not None:
                session = active_session
                read_cl_of = lambda: session.read_cl.value  # noqa: E731
                write_cl_of = lambda: session.write_cl.value  # noqa: E731
            self._recorded_runs += 1
            recorder = HistoryRecorder(binding, self.env,
                                       read_cl=read_cl_of,
                                       write_cl=write_cl_of,
                                       tag_prefix=f"h{self._recorded_runs}.")
            binding = recorder
        controller: Optional[AdaptiveController] = None
        session_cls: Optional[tuple] = None
        if adaptive is not None:
            if active_session is None or self.cassandra is None:
                raise ValueError(
                    "adaptive consistency control requires Cassandra")
            ac = self.config.adaptive
            staleness = ac.staleness_s
            if active_dc is not None:
                # Per-region staleness budget: the run measured from this
                # region steers by its own declared bound.
                staleness = dict(ac.staleness_by_region).get(
                    active_dc, ac.staleness_s)
            slo = SloSpec(p95_ms=ac.p95_ms, staleness_s=staleness,
                          risk_rate=ac.risk_rate, window_s=ac.window_s)
            cassandra = self.cassandra

            def coordinator_signals() -> dict:
                totals = cassandra.total_stats()
                totals["hint_backlog"] = sum(
                    len(node.hints) for node in cassandra.nodes.values())
                return totals

            env = self.env
            monitor = Monitor(slo, clock=lambda: env.now,
                              signal_source=coordinator_signals)
            policy = make_policy(adaptive, slo,
                                 decay_windows=ac.decay_windows)
            if isinstance(policy, EnergyAwarePolicy):
                managed = [n for n in self.cluster.nodes
                           if n.power is not None]

                def set_parked(parked: bool) -> None:
                    mode = "race_to_sleep" if parked else "always_on"
                    at = env.now
                    for node in managed:
                        node.power.set_mode(mode, at)

                policy.bind_actuator(set_parked)
            # Outermost wrapper: the controller sets the session CL
            # *before* delegating, so the history recorder (inside)
            # records the CL each operation actually ran at.
            controller = AdaptiveController(binding, active_session,
                                            policy, monitor)
            binding = controller
            session_cls = (active_session.read_cl, active_session.write_cl)
        shared: Optional[Measurements] = None
        if scale:
            if self.config.elasticity is None:
                raise ValueError("scale runs need config.elasticity")
            # The autoscaler polls per-window p95 mid-run, so the engine
            # and the client must share one live sample store.
            shared = Measurements()
        if open_loop:
            arrival_cfg = self.config.arrivals
            assert arrival_cfg is not None  # checked above
            arrivals = make_arrivals(
                arrival_cfg.process, arrival_cfg.rate,
                self.rngs.stream(f"arrivals.{self.env.now}"),
                period_s=arrival_cfg.period_s,
                peak_factor=arrival_cfg.peak_factor,
                spike_at_s=arrival_cfg.spike_at_s,
                spike_factor=arrival_cfg.spike_factor,
                spike_duration_s=arrival_cfg.spike_duration_s)
            sessions = UserSessions(
                arrival_cfg.n_users,
                self.rngs.stream(f"sessions.{self.env.now}"),
                n_tenants=arrival_cfg.n_tenants)
            open_client = OpenLoopClient(self.env, binding, runtime_workload,
                                         arrivals, sessions=sessions,
                                         tier=tier)
            ops = arrival_cfg.max_arrivals
            target = arrival_cfg.rate
            run_coro = open_client.run(ops, offered_rate=target,
                                       measurements=shared)
        else:
            client = YcsbClient(self.env, binding, runtime_workload,
                                self.rngs.stream(f"client.run.{self.env.now}"),
                                client_node=client_node)
            ops = operation_count or self.config.operation_count
            target = (target_throughput if target_throughput is not None
                      else self.config.target_throughput)
            run_coro = client.run(
                ops,
                n_threads=n_threads or self.config.n_threads,
                target_throughput=target,
                warmup_fraction=(1.0 if warmup_fraction is None
                                 else (warmup_fraction
                                       or self.config.warmup_fraction)),
                measurements=shared)
        injector = probe = None
        run_started = self.env.now
        if inject_faults and self.config.faults:
            injector = FailureInjector(self.cluster)
            injector.inject(FaultSchedule.from_specs(self.config.faults,
                                                     base_s=run_started))
            probe = StalenessProbe(self.env, active_binding)
            self.env.process(probe.run(), name="staleness-probe")
        engine: Optional[ScaleEngine] = None
        pre_streams = pre_rebalances = pre_splits = 0
        if scale:
            deployment = self.hbase if self.hbase is not None \
                else self.cassandra
            engine = ScaleEngine(self.env, deployment,
                                 self.config.elasticity,
                                 measurements=shared)
            engine.arm(run_started)
            if probe is None:
                # Scale runs always probe read-your-writes so the report
                # can attribute staleness to the transfer windows.
                probe = StalenessProbe(self.env, active_binding)
                self.env.process(probe.run(), name="staleness-probe")
            # Session-lifetime counters: snapshot so the report only
            # covers this run's transfers.
            if self.cassandra is not None:
                pre_streams = len(self.cassandra.streams)
            if self.hbase is not None:
                pre_rebalances = len(self.hbase.master.rebalances)
                pre_splits = len(self.hbase.splits)
        # Re-read the topology at stop so elasticity joins/leaves over
        # the window bill correctly.
        meter = EnergyMeter(spec=self.power_spec,
                            nodes_source=lambda: self.cluster.nodes)
        meter.start()
        process = self.env.process(run_coro, name="run")
        result: RunResult = self.env.run(until=process)
        energy = meter.stop()
        result = replace(result, energy=energy,
                         cost=self.cost_spec.price(energy))
        if probe is not None:
            probe.stop()
        if engine is not None:
            engine.stop()
        self._settle()
        if recorder is not None and (injector is not None or open_loop
                                     or engine is not None):
            # The convergence check needs a quiescent cluster; after a
            # fault campaign that includes waiting out hinted handoff
            # (see :meth:`_drain_hints`).  Open-loop overload manufactures
            # hints the same way a fault does — replica timeouts under
            # pressure — so checked surge runs wait them out too.
            self._drain_hints()
        if injector is not None:
            # Built after settling so restarts/heals landing just past
            # the run's end still make it into the report.
            expected_end = (run_started + ops / target) if target else None
            result = replace(result, failover=build_failover_report(
                result.measurements, injector.log,
                target_throughput=target, expected_end=expected_end,
                probe=probe))
        if engine is not None:
            streams = (self.cassandra.streams[pre_streams:]
                       if self.cassandra is not None else ())
            rebalances = (len(self.hbase.master.rebalances) - pre_rebalances
                          if self.hbase is not None else 0)
            splits = (len(self.hbase.splits) - pre_splits
                      if self.hbase is not None else 0)
            result = replace(result, scale=build_scale_report(
                result.measurements, engine.log,
                config=self.config.elasticity,
                streams=streams, rebalances=rebalances, splits=splits,
                probe=probe))
        if controller is not None:
            decisions = controller.summary()
            read_stats = result.measurements.stats("read")
            decisions["read_p95_ms"] = read_stats.p95 * 1000.0
            decisions["read_p99_ms"] = read_stats.p99_ms
            result = replace(result, decisions=decisions)
        if recorder is not None:
            report_read_cl = (active_session.read_cl
                              if active_session is not None else None)
            report_write_cl = (active_session.write_cl
                               if active_session is not None else None)
            if controller is not None:
                # Classify the guarantee by the weakest CLs the policy may
                # issue, not whatever the final request happened to use.
                report_read_cl, report_write_cl = \
                    controller.policy.floor_cls()
            result = replace(result, consistency=build_consistency_report(
                recorder.history,
                db=self.config.db,
                read_cl=report_read_cl,
                write_cl=report_write_cl,
                replication=self.config.replication,
                cassandra=self.cassandra,
                client_dc=active_dc))
        if session_cls is not None and active_session is not None:
            active_session.read_cl, active_session.write_cl = session_cls
        return result

    def db_stats(self) -> dict:
        """Engine-internal counters for reports and tests."""
        stats: dict = {"rpc_count": self.cluster.rpc_count}
        if self.cassandra is not None:
            stats["cassandra"] = self.cassandra.total_stats()
            stats["cache_hit_rate"] = _mean(
                n.tree.cache.hit_rate for n in self.cassandra.nodes.values())
            stats["sstables"] = sum(
                n.tree.n_sstables for n in self.cassandra.nodes.values())
        if self.hbase is not None:
            ops = {"put": 0, "get": 0, "scan": 0}
            for server in self.hbase.regionservers.values():
                for op, count in server.ops.items():
                    ops[op] += count
            stats["hbase"] = ops
            trees = [r.tree for r in self.hbase.regions if r.tree is not None]
            stats["cache_hit_rate"] = _mean(t.cache.hit_rate for t in trees)
            stats["sstables"] = sum(t.n_sstables for t in trees)
            stats["wal_batches"] = sum(
                s.wal.batches for s in self.hbase.regionservers.values())
            stats["wal_appends"] = sum(
                s.wal.appends for s in self.hbase.regionservers.values())
        return stats


def _mean(values) -> float:
    items = list(values)
    return sum(items) / len(items) if items else 0.0


def run_experiment(config: ExperimentConfig,
                   warm: bool = True) -> ExperimentResult:
    """Convenience: build, load, warm, run one cell, collect stats.

    ``warm`` runs an unmeasured read-heavy pass first so caches reach
    steady state (the paper's cold-start countermeasure); disable it to
    measure cold-cache behaviour deliberately.
    """
    session = ExperimentSession(config)
    load = session.load()
    if warm:
        session.warm()
    run = session.run_cell()
    return ExperimentResult(config=config, load=load, run=run,
                            db_stats=session.db_stats())
