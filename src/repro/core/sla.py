"""Service-level-agreement evaluation (the paper's §6 future work).

The paper proposes replacing raw target-throughput stress levels with an
SLA — "at least p percent of requests get response within l latency
during a period of time t" — so different clusters can be compared at
equal user experience.  This module implements that evaluator over the
timestamped samples :class:`~repro.ycsb.measurements.Measurements`
collects, plus a helper that finds the highest offered throughput still
meeting an SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.ycsb.measurements import Measurements, percentile

__all__ = ["Sla", "SlaReport", "SlaWindowViolation", "evaluate_sla",
           "max_throughput_under_sla"]


@dataclass(frozen=True)
class Sla:
    """p% of requests within ``latency_ms`` over each ``window_s`` window."""

    percentile: float  # e.g. 0.95
    latency_ms: float
    window_s: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 1:
            raise ValueError("percentile must be in (0, 1]")
        if self.latency_ms <= 0 or self.window_s <= 0:
            raise ValueError("latency_ms and window_s must be positive")


@dataclass(frozen=True)
class SlaWindowViolation:
    """One window that missed the SLA, and by how much."""

    #: Zero-based window index; the window covers
    #: ``[start_s, start_s + sla.window_s)`` on the run's clock.
    window_index: int
    window_start_s: float
    samples: int
    #: Fraction of the window's requests within the latency bound
    #: (the SLA demanded at least ``sla.percentile``).
    within_fraction: float
    #: Nearest-rank latency actually achieved at ``sla.percentile``
    #: (the SLA demanded at most ``sla.latency_ms``).
    achieved_ms: float


@dataclass(frozen=True)
class SlaReport:
    sla: Sla
    windows: int
    compliant_windows: int
    #: Fraction of *requests* (not windows) within the latency bound.
    overall_fraction: float
    #: Windows with no completed requests at all.  They count as
    #: compliant (an idle window cannot violate a latency SLA) but are
    #: surfaced so a "pass" built on silence is visible.
    empty_windows: int = 0
    #: Every non-compliant window, in time order — *which* window failed
    #: and what percentile latency it actually achieved.
    violations: tuple[SlaWindowViolation, ...] = ()

    @property
    def satisfied(self) -> bool:
        """Every window met the SLA."""
        return self.windows > 0 and self.compliant_windows == self.windows

    @property
    def first_violation(self) -> "SlaWindowViolation | None":
        return self.violations[0] if self.violations else None


def evaluate_sla(measurements: Measurements, sla: Sla) -> SlaReport:
    """Check every ``window_s`` window of the run against the SLA."""
    samples = sorted(
        (t, lat) for op_samples in measurements.samples.values()
        for t, lat in op_samples)
    if not samples:
        return SlaReport(sla=sla, windows=0, compliant_windows=0,
                         overall_fraction=0.0)
    bound_s = sla.latency_ms / 1000.0
    start = samples[0][0]
    windows: list[list[float]] = []
    for t, lat in samples:
        index = int((t - start) / sla.window_s)
        while len(windows) <= index:
            windows.append([])
        windows[index].append(lat)
    compliant = 0
    empty = 0
    within_total = 0
    violations: list[SlaWindowViolation] = []
    for index, window in enumerate(windows):
        if not window:
            compliant += 1  # an idle window cannot violate the SLA
            empty += 1
            continue
        within = sum(1 for lat in window if lat <= bound_s)
        within_total += within
        if within / len(window) >= sla.percentile:
            compliant += 1
        else:
            violations.append(SlaWindowViolation(
                window_index=index,
                window_start_s=start + index * sla.window_s,
                samples=len(window),
                within_fraction=within / len(window),
                achieved_ms=percentile(sorted(window),
                                       sla.percentile) * 1000.0,
            ))
    return SlaReport(
        sla=sla,
        windows=len(windows),
        compliant_windows=compliant,
        overall_fraction=within_total / len(samples),
        empty_windows=empty,
        violations=tuple(violations),
    )


def max_throughput_under_sla(run_at_target: Callable[[float], Measurements],
                             targets: Sequence[float], sla: Sla) -> tuple:
    """Highest offered target whose run still satisfies the SLA.

    ``run_at_target`` executes one cell and returns its measurements;
    targets are probed in increasing order.  Returns ``(best_target,
    reports)`` where ``best_target`` is None if even the lowest target
    violates the SLA.
    """
    best = None
    reports: list[tuple[float, SlaReport]] = []
    for target in sorted(targets):
        report = evaluate_sla(run_at_target(target), sla)
        reports.append((target, report))
        if report.satisfied:
            best = target
        else:
            break
    return best, reports
