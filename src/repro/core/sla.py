"""Service-level-agreement evaluation (the paper's §6 future work).

The paper proposes replacing raw target-throughput stress levels with an
SLA — "at least p percent of requests get response within l latency
during a period of time t" — so different clusters can be compared at
equal user experience.  This module implements that evaluator over the
timestamped samples :class:`~repro.ycsb.measurements.Measurements`
collects, plus a helper that finds the highest offered throughput still
meeting an SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.ycsb.measurements import Measurements

__all__ = ["Sla", "SlaReport", "evaluate_sla", "max_throughput_under_sla"]


@dataclass(frozen=True)
class Sla:
    """p% of requests within ``latency_ms`` over each ``window_s`` window."""

    percentile: float  # e.g. 0.95
    latency_ms: float
    window_s: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 1:
            raise ValueError("percentile must be in (0, 1]")
        if self.latency_ms <= 0 or self.window_s <= 0:
            raise ValueError("latency_ms and window_s must be positive")


@dataclass(frozen=True)
class SlaReport:
    sla: Sla
    windows: int
    compliant_windows: int
    #: Fraction of *requests* (not windows) within the latency bound.
    overall_fraction: float

    @property
    def satisfied(self) -> bool:
        """Every window met the SLA."""
        return self.windows > 0 and self.compliant_windows == self.windows


def evaluate_sla(measurements: Measurements, sla: Sla) -> SlaReport:
    """Check every ``window_s`` window of the run against the SLA."""
    samples = sorted(
        (t, lat) for op_samples in measurements.samples.values()
        for t, lat in op_samples)
    if not samples:
        return SlaReport(sla=sla, windows=0, compliant_windows=0,
                         overall_fraction=0.0)
    bound_s = sla.latency_ms / 1000.0
    start = samples[0][0]
    windows: list[list[float]] = []
    for t, lat in samples:
        index = int((t - start) / sla.window_s)
        while len(windows) <= index:
            windows.append([])
        windows[index].append(lat)
    compliant = 0
    within_total = 0
    for window in windows:
        if not window:
            compliant += 1  # an idle window cannot violate the SLA
            continue
        within = sum(1 for lat in window if lat <= bound_s)
        within_total += within
        if within / len(window) >= sla.percentile:
            compliant += 1
    return SlaReport(
        sla=sla,
        windows=len(windows),
        compliant_windows=compliant,
        overall_fraction=within_total / len(samples),
    )


def max_throughput_under_sla(run_at_target: Callable[[float], Measurements],
                             targets: Sequence[float], sla: Sla) -> tuple:
    """Highest offered target whose run still satisfies the SLA.

    ``run_at_target`` executes one cell and returns its measurements;
    targets are probed in increasing order.  Returns ``(best_target,
    reports)`` where ``best_target`` is None if even the lowest target
    violates the SLA.
    """
    best = None
    reports: list[tuple[float, SlaReport]] = []
    for target in sorted(targets):
        report = evaluate_sla(run_at_target(target), sla)
        reports.append((target, report))
        if report.satisfied:
            best = target
        else:
            break
    return best, reports
