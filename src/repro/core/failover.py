"""Availability metrics for fault-injection campaigns.

Turns the raw artefacts of a degraded run — the
:class:`~repro.cluster.failure.FailureInjector` log, the error-aware
:meth:`~repro.ycsb.measurements.Measurements.timeline_with_errors`, and a
read-your-writes :class:`StalenessProbe` — into one JSON-safe
``FailoverReport`` dict:

- **time to detection** — fault injection to first client-visible impact
  (an error, or the first throughput-dip bucket);
- **time to recovery** — fault injection to the end of the last degraded
  bucket, i.e. how long clients felt the fault;
- **error window** — span between the first and last client error;
- **errors by type** — ``RpcTimeout`` vs ``UnavailableError`` vs
  ``DeadNodeError`` etc., so an unreachable coordinator is
  distinguishable from a CL that cannot be met;
- **stale reads** — read-your-writes violations the probe observed after
  the fault fired (the consistency cost of riding out the outage, the
  quantity the QoD geo-replication work measures).

All values are plain floats/ints/lists so a report round-trips through
the cell cache byte-identically.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.keyspace import key_for_token
from repro.ycsb.measurements import Measurements

__all__ = ["StalenessProbe", "build_failover_report"]

#: A bucket whose throughput falls below this fraction of the expected
#: rate counts as degraded (the dip detector's threshold).
DIP_FRACTION = 0.5


class StalenessProbe:
    """Read-your-writes probe running alongside a degraded workload.

    Every ``interval_s`` the probe writes a monotonically increasing
    sequence number to one key, then reads the key back.  A read that
    returns less than the highest *acknowledged* write is a
    read-your-writes violation — exactly what a client sees when a weak
    CL accepts a write whose only live replica then serves a stale value
    (e.g. Cassandra CL=ONE during hinted handoff, before replay).
    """

    def __init__(self, env, db, key: Optional[str] = None,
                 interval_s: float = 0.25, record_bytes: int = 100) -> None:
        self.env = env
        self.db = db
        # Token 0 routes like any record key but collides with no
        # workload key (those are FNV-scrambled insertion indexes).
        self.key = key if key is not None else key_for_token(0)
        self.interval_s = interval_s
        self.record_bytes = record_bytes
        #: (time, stale) per successful probe read.
        self.reads: list[tuple[float, bool]] = []
        self.probe_reads = 0
        self.stale_reads = 0
        self._acked = 0
        self._seq = 0
        self._stopped = False

    def stop(self) -> None:
        """Finish at the next wake-up (keeps the event queue clean)."""
        self._stopped = True

    def stale_since(self, t: float) -> int:
        """Stale reads observed at or after simulation time ``t``."""
        return sum(1 for at, stale in self.reads if stale and at >= t)

    def run(self) -> Generator:
        """The probe loop (a simulation process)."""
        from repro.ycsb.client import OPERATION_ERRORS
        while not self._stopped:
            yield self.env.timeout(self.interval_s)
            if self._stopped:
                return
            self._seq += 1
            seq = self._seq
            try:
                yield from self.db.update(self.key, seq, self.record_bytes)
                self._acked = max(self._acked, seq)
            except OPERATION_ERRORS:
                pass
            acked = self._acked
            if not acked:
                continue
            try:
                result = yield from self.db.read(self.key, self.record_bytes)
            except OPERATION_ERRORS:
                continue
            value = result[0] if result is not None else None
            stale = value is None or value < acked
            self.probe_reads += 1
            self.stale_reads += int(stale)
            self.reads.append((self.env.now, stale))


def _expected_ops_per_bucket(timeline: Sequence[tuple], bucket_s: float,
                             target_throughput: Optional[float],
                             fault_at: float) -> float:
    """Baseline throughput the dip detector compares buckets against."""
    if target_throughput:
        return target_throughput * bucket_s
    healthy = [ops for start, ops, _, _ in timeline
               if start + bucket_s <= fault_at]
    if healthy:
        return sum(healthy) / len(healthy)
    all_ops = [ops for _, ops, _, _ in timeline]
    return sum(all_ops) / len(all_ops) if all_ops else 0.0


def build_failover_report(
        measurements: Measurements,
        injector_log: Sequence[tuple[float, int, str]],
        bucket_s: float = 1.0,
        target_throughput: Optional[float] = None,
        expected_end: Optional[float] = None,
        probe: Optional[StalenessProbe] = None) -> dict:
    """Compute the availability report for one degraded run.

    Parameters
    ----------
    measurements:
        The run's measurements (error events included).
    injector_log:
        ``(time, node_id, action)`` entries from the injector.
    bucket_s:
        Timeline bucket width for dip detection.
    target_throughput:
        The run's offered-load cap; the dip baseline when given.
    expected_end:
        When the run *would* end at the target rate.  A closed-loop
        client's stragglers (threads parked on a timeout) stretch the
        recording past the steady phase with near-empty trailing buckets;
        dip detection ignores buckets beyond this bound so that ramp-down
        artefact is not mistaken for a slow recovery.  (Buckets with
        errors always count.)
    probe:
        The run's staleness probe, if one was attached.
    """
    heal_actions = ("restart", "heal", "nic_heal", "disk_heal",
                    "dc_heal", "wan_heal")
    effective = [(t, n, a) for t, n, a in injector_log
                 if not a.endswith("-noop")]
    fault_times = [t for t, _, a in effective if a not in heal_actions]
    heal_times = [t for t, _, a in effective if a in heal_actions]
    fault_at = min(fault_times) if fault_times else None
    cleared_at = max(heal_times) if heal_times else None

    timeline = measurements.timeline_with_errors(bucket_s)
    error_times = sorted(t for t, _, _ in measurements.error_events)
    error_window_s = (error_times[-1] - error_times[0]
                      if len(error_times) > 1 else 0.0)

    time_to_detection: Optional[float] = None
    time_to_recovery = 0.0
    if fault_at is not None and timeline:
        expected = _expected_ops_per_bucket(timeline, bucket_s,
                                            target_throughput, fault_at)
        window_end = measurements.finished_at or timeline[-1][0] + bucket_s
        if expected_end is not None:
            window_end = min(window_end, expected_end)
        impacts: list[tuple[float, float]] = []  # (start, end) of impact
        for start, ops, _, errors in timeline:
            end = start + bucket_s
            if end <= fault_at:
                continue
            if errors:
                impacts.append((start, end))
            elif (expected > 0 and ops < DIP_FRACTION * expected
                  and end <= window_end):
                impacts.append((start, end))
        first_error = next((t for t in error_times if t >= fault_at), None)
        if impacts:
            first_impact = impacts[0][0]
            if first_error is not None:
                first_impact = min(first_impact, first_error)
            time_to_detection = max(0.0, first_impact - fault_at)
            time_to_recovery = max(0.0, impacts[-1][1] - fault_at)
        elif first_error is not None:
            time_to_detection = first_error - fault_at
            time_to_recovery = max(0.0, error_times[-1] - fault_at)

    stale_reads = 0
    probe_reads = 0
    if probe is not None:
        probe_reads = probe.probe_reads
        stale_reads = (probe.stale_since(fault_at) if fault_at is not None
                       else probe.stale_reads)

    return {
        "fault_at_s": fault_at,
        "cleared_at_s": cleared_at,
        "time_to_detection_s": time_to_detection,
        "time_to_recovery_s": time_to_recovery,
        "error_window_s": error_window_s,
        "errors": sum(measurements.errors_by_type.values()),
        "errors_by_type": dict(sorted(measurements.errors_by_type.items())),
        "stale_reads": stale_reads,
        "probe_reads": probe_reads,
        "injections": [[t, n, a] for t, n, a in injector_log],
        "timeline": [[start, ops, mean * 1000.0, errors]
                     for start, ops, mean, errors in timeline],
        "bucket_s": bucket_s,
    }
