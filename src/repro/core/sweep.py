"""Parameter sweeps: the three experiments of the paper's §4.

Every sweep returns plain nested dicts so benchmarks can both print
paper-style tables (:mod:`repro.core.report`) and assert on shapes.

Each sweep is expressed in two halves:

- a *cell builder* that turns the requested grid into
  :class:`~repro.core.runner.CellSpec` values — one per independent
  ``ExperimentSession`` (one replication factor, or one consistency
  mode), carrying its ordered workload sequence; and
- an *assembler* that projects the runner's JSON-safe payloads back
  into the legacy nested-dict shape.

Execution goes through a :class:`~repro.core.runner.CellRunner`, so the
same sweep can run serially (the default), across CPU cores, or out of
the on-disk cell cache — all bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.adaptive.policy import ADAPTIVE_POLICIES
from repro.cassandra.consistency import ConsistencyLevel
from repro.cluster.elasticity import SCALE_MODES
from repro.cluster.failure import FaultSpec
# Imported here (not in repro.consistency's package init) so the sweep
# layer exposes every campaign entrypoint while the consistency package
# stays importable from repro.core.experiment without a cycle.
from repro.consistency.explorer import (CHECK_CL_MODES,
                                        QUICK_CHECK_SCALE,
                                        CheckScale,
                                        check_cells,
                                        check_sweep)
from repro.core.config import (AdaptiveConfig,
                               ArrivalConfig,
                               CassandraConfig,
                               ClientTierConfig,
                               ElasticityConfig,
                               EnergyConfig,
                               ExperimentConfig,
                               HBaseConfig,
                               ScaleEventSpec,
                               TailDefenseConfig,
                               default_geo_config,
                               default_micro_config,
                               default_scale_config,
                               default_stress_config,
                               default_surge_config,
                               scaled_stress_storage)
from repro.core.runner import CellRunner, CellSpec, RunSpec, WarmSpec
from repro.storage.lsm import StorageSpec
from repro.ycsb.workload import STRESS_WORKLOADS

__all__ = [
    "ADAPTIVE_POLICIES",
    "AdaptiveScale",
    "CHECK_CL_MODES",
    "CONSISTENCY_MODES",
    "CheckScale",
    "ELASTIC_SCENARIOS",
    "ENERGY_CL_MODES",
    "ENERGY_POWER_MODES",
    "ElasticScale",
    "EnergyScale",
    "FAILOVER_CL_MODES",
    "FailoverScale",
    "GEO_CL_MODES",
    "GEO_SCENARIOS",
    "GeoScale",
    "MICRO_OP_ORDER",
    "QUICK_ADAPTIVE_SCALE",
    "QUICK_CHECK_SCALE",
    "QUICK_ELASTIC_SCALE",
    "QUICK_ENERGY_SCALE",
    "QUICK_FAILOVER_SCALE",
    "QUICK_GEO_SCALE",
    "QUICK_SURGE_SCALE",
    "QUICK_TAIL_SCALE",
    "SCALE_MODES",
    "STRESS_WORKLOAD_ORDER",
    "SURGE_MODES",
    "SURGE_SCENARIOS",
    "SurgeScale",
    "SweepScale",
    "TAIL_MODES",
    "TAIL_SCENARIOS",
    "TailScale",
    "adaptive_cells",
    "adaptive_sweep",
    "check_cells",
    "check_sweep",
    "consistency_stress_sweep",
    "elastic_arrivals",
    "elasticity_for_mode",
    "energy_cells",
    "energy_modes",
    "energy_sweep",
    "failover_cells",
    "failover_sweep",
    "geo_cells",
    "geo_sweep",
    "replication_micro_sweep",
    "replication_stress_sweep",
    "scale_cells",
    "scale_sweep",
    "surge_arrivals",
    "surge_cells",
    "surge_sweep",
    "surge_tier_for_mode",
    "tail_cells",
    "tail_defense_for_mode",
    "tail_sweep",
]

#: §4.1: "the update/read/insert/scan test is run one after another".
MICRO_OP_ORDER = ("update", "read", "insert", "scan")

#: §4.2/§4.3: "the read latest / scan short ranges / read mostly /
#: read-modify-write / read & update test is run one after another".
#: The order matters: the paper explains the scan test's consistency
#: insensitivity by the preceding read-latest test having repaired most
#: inconsistency.
STRESS_WORKLOAD_ORDER = ("read_latest", "scan_short_ranges", "read_mostly",
                         "read_modify_write", "read_update")

#: §4.3's three rounds: (name, read CL, write CL).
CONSISTENCY_MODES: dict[str, tuple[ConsistencyLevel, ConsistencyLevel]] = {
    "ONE": (ConsistencyLevel.ONE, ConsistencyLevel.ONE),
    "QUORUM": (ConsistencyLevel.QUORUM, ConsistencyLevel.QUORUM),
    "write ALL": (ConsistencyLevel.ONE, ConsistencyLevel.ALL),
}


@dataclass(frozen=True)
class SweepScale:
    """Scale-down knobs shared by the sweeps (see DESIGN.md §6)."""

    record_count: int = 30_000
    operation_count: int = 4_000
    n_threads: int = 16
    n_nodes: int = 16
    #: Target throughputs offered in stress sweeps (ops/s); ``None`` means
    #: unthrottled full speed — the point that exposes the true peak.
    targets: tuple = (2_000.0, 6_000.0, 12_000.0, 20_000.0, None)
    seed: int = 42
    #: Override the per-config storage engine tuning (None = the
    #: micro/stress defaults).  Used to shrink memory budgets together
    #: with very small test populations so the disk still participates.
    storage: Optional[StorageSpec] = None


#: Fast settings for tests and --quick benchmark runs.
QUICK_SCALE = SweepScale(record_count=5_000, operation_count=1_200,
                         n_threads=12, n_nodes=8,
                         targets=(2_000.0, 8_000.0, None))

#: The projection of a run summary the micro sweep reports per op.
_MICRO_KEYS = ("mean_ms", "p99_ms", "throughput", "ops", "errors")

#: Energy/cost keys carried alongside; projected with ``.get`` so
#: payloads cached before the energy meter existed stay renderable.
_ENERGY_KEYS = ("joules_per_op", "usd_per_mops")


def _run(cells: Sequence[CellSpec],
         runner: Optional[CellRunner]) -> list[dict]:
    return (runner or CellRunner()).run(cells)


def _energy_rollup(summaries: Sequence[dict]) -> dict:
    """Aggregate joules/op + $/Mops across several run summaries.

    Energy totals add, so the only correct multi-run aggregate is
    sum-of-joules over sum-of-ops (averaging the per-run ratios would
    overweight small runs).  Both keys are ``None`` when the payloads
    predate the energy meter.
    """
    total_j = usd = 0.0
    ops = 0
    seen = False
    for summary in summaries:
        energy, cost = summary.get("energy"), summary.get("cost")
        if energy is None or cost is None:
            continue
        seen = True
        total_j += energy["total_j"]
        usd += cost["total_usd"]
        ops += summary["ops"]
    if not seen or not ops:
        return {"joules_per_op": None, "usd_per_mops": None}
    return {"joules_per_op": total_j / ops,
            "usd_per_mops": usd / (ops / 1e6)}


# -- Figure 1: micro benchmark vs replication ------------------------------

def micro_sweep_cells(db: str, replication_factors: Sequence[int],
                      scale: SweepScale) -> list[CellSpec]:
    """One cell per replication factor, each running §4.1's op order."""
    cells = []
    for rf in replication_factors:
        config = default_micro_config(db, "update", replication=rf,
                                      seed=scale.seed)
        config = replace(config, record_count=scale.record_count,
                         operation_count=scale.operation_count,
                         n_threads=min(scale.n_threads, 8),
                         n_nodes=scale.n_nodes)
        if scale.storage is not None:
            config = replace(config, storage=scale.storage)
        cells.append(CellSpec(
            key=rf,
            label=f"fig1/{db}/rf={rf}",
            config=config,
            runs=tuple(RunSpec(workload=op, kind="micro")
                       for op in MICRO_OP_ORDER),
            warm=WarmSpec(workload="read", kind="micro",
                          operations=scale.operation_count // 2)))
    return cells


def replication_micro_sweep(db: str, replication_factors: Sequence[int],
                            scale: Optional[SweepScale] = None,
                            runner: Optional[CellRunner] = None) -> dict:
    """Figure 1: atomic-operation latency vs replication factor.

    Returns ``{rf: {op: {"mean_ms": ..., "p99_ms": ..., ...}}}``.
    """
    scale = scale or SweepScale()
    cells = micro_sweep_cells(db, replication_factors, scale)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        out[cell.key] = {
            op: {**{key: summary[key] for key in _MICRO_KEYS},
                 **{key: summary.get(key) for key in _ENERGY_KEYS}}
            for op, summary in zip(MICRO_OP_ORDER, payload["runs"])}
    return out


# -- Figure 2: stress benchmark vs replication ------------------------------

def stress_sweep_cells(db: str, replication_factors: Sequence[int],
                       scale: SweepScale,
                       workloads: Sequence[str]) -> list[CellSpec]:
    """One cell per replication factor; each runs every workload in the
    paper's order, sweeping the offered target inside each workload."""
    cells = []
    for rf in replication_factors:
        config = default_stress_config(db, "read_mostly", replication=rf,
                                       seed=scale.seed)
        config = replace(config, record_count=scale.record_count,
                         operation_count=scale.operation_count,
                         n_threads=scale.n_threads, n_nodes=scale.n_nodes,
                         storage=scale.storage or scaled_stress_storage(
                             scale.record_count, 1000, scale.n_nodes - 1))
        cells.append(CellSpec(
            key=rf,
            label=f"fig2/{db}/rf={rf}",
            config=config,
            runs=tuple(RunSpec(workload=name, target_throughput=target)
                       for name in workloads for target in scale.targets),
            warm=WarmSpec()))
    return cells


def replication_stress_sweep(db: str, replication_factors: Sequence[int],
                             scale: Optional[SweepScale] = None,
                             workloads: Sequence[str] = STRESS_WORKLOAD_ORDER,
                             runner: Optional[CellRunner] = None) -> dict:
    """Figure 2: peak runtime throughput + latency vs replication factor.

    For each (rf, workload) the offered target throughput is swept and the
    peak achieved (runtime) throughput is reported with its latency —
    the paper's §4.2 method.

    Returns ``{rf: {workload: {"peak_throughput": ..., "latency_ms": ...,
    "per_target": [(target, runtime, mean_ms), ...]}}}``.
    """
    scale = scale or SweepScale()
    cells = stress_sweep_cells(db, replication_factors, scale, workloads)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        summaries = iter(payload["runs"])
        per_workload: dict = {}
        for name in workloads:
            pairs = [(target, next(summaries)) for target in scale.targets]
            per_target = [(target, summary["throughput"],
                           summary["mean_ms"])
                          for target, summary in pairs]
            _, peak = max(pairs, key=lambda row: row[1]["throughput"])
            per_workload[name] = {
                "peak_throughput": peak["throughput"],
                "latency_ms": peak["mean_ms"],
                "per_target": per_target,
                # Energy at the peak point: what the paper's headline
                # throughput costs in joules and dollars.
                "joules_per_op": peak.get("joules_per_op"),
                "usd_per_mops": peak.get("usd_per_mops"),
            }
        out[cell.key] = per_workload
    return out


# -- Failover campaigns: db x fault type x consistency level ----------------

#: The consistency rounds a Cassandra failover campaign compares: weak
#: (rides out the crash on hinted handoff) vs quorum (pays availability
#: for consistency).  HBase has no per-request CL; its campaigns run a
#: single ``n/a`` mode.
FAILOVER_CL_MODES: dict[str, tuple[ConsistencyLevel, ConsistencyLevel]] = {
    "ONE": (ConsistencyLevel.ONE, ConsistencyLevel.ONE),
    "QUORUM": (ConsistencyLevel.QUORUM, ConsistencyLevel.QUORUM),
}


@dataclass(frozen=True)
class FailoverScale:
    """Scale knobs for fault-injection campaigns.

    The run is throttled well below peak (the Pokluda et al. probe
    methodology): at an offered load the healthy cluster meets easily, a
    throughput dip or error burst is unambiguously the fault's doing.
    """

    record_count: int = 6_000
    operation_count: int = 36_000
    n_threads: int = 24
    n_nodes: int = 10
    target_throughput: float = 2_000.0
    #: When the fault fires, seconds after the measured run starts.
    fault_at_s: float = 4.0
    #: How long it lasts (crash downtime, partition/degradation window).
    fault_duration_s: float = 10.0
    #: Service-time multiplier for the gray-failure kinds.
    severity: float = 8.0
    seed: int = 42


#: Fast settings for tests, CI chaos smoke, and --quick campaigns.
QUICK_FAILOVER_SCALE = FailoverScale(record_count=3_000,
                                     operation_count=10_000,
                                     n_threads=16, n_nodes=8,
                                     target_throughput=1_000.0,
                                     fault_at_s=2.0, fault_duration_s=5.0)


def _failover_fault(kind: str, scale: FailoverScale) -> FaultSpec:
    # Node 0 is a server in both deployments (the client — and HBase's
    # master — live on the last node), so every fault kind targets it.
    return FaultSpec(kind=kind, node_id=0, at_s=scale.fault_at_s,
                     duration_s=scale.fault_duration_s,
                     severity=scale.severity)


def failover_cells(db: str, fault_kinds: Sequence[str],
                   scale: FailoverScale,
                   modes: Optional[dict] = None) -> list[CellSpec]:
    """One cell per (fault kind, consistency mode)."""
    if modes is None:
        modes = FAILOVER_CL_MODES if db == "cassandra" else {"n/a": None}
    cells = []
    for kind in fault_kinds:
        for mode, cls in modes.items():
            config = default_stress_config(
                db, "read_update", replication=3,
                target_throughput=scale.target_throughput, seed=scale.seed)
            config = replace(
                config, record_count=scale.record_count,
                operation_count=scale.operation_count,
                n_threads=scale.n_threads, n_nodes=scale.n_nodes,
                storage=scaled_stress_storage(scale.record_count, 1000,
                                              scale.n_nodes - 1),
                faults=(_failover_fault(kind, scale),))
            read_cl = write_cl = None
            if cls is not None:
                read_cl, write_cl = (cl.value for cl in cls)
            cells.append(CellSpec(
                key=(kind, mode),
                label=f"failover/{db}/{kind}/cl={mode}",
                config=config,
                runs=(RunSpec(workload="read_update",
                              target_throughput=scale.target_throughput,
                              read_cl=read_cl, write_cl=write_cl,
                              faults=True),),
                warm=WarmSpec(operations=max(2_000,
                                             scale.operation_count // 6))))
    return cells


def failover_sweep(db: str, fault_kinds: Sequence[str] = ("crash",),
                   scale: Optional[FailoverScale] = None,
                   modes: Optional[dict] = None,
                   runner: Optional[CellRunner] = None) -> dict:
    """Fault-injection campaign: one degraded run per (fault kind, CL).

    Returns ``{fault_kind: {mode: summary}}`` where each summary is a
    :func:`~repro.core.experiment.summarize_run` dict whose ``failover``
    entry is the availability report (time to detection / recovery,
    errors by type, stale reads, error-aware timeline).
    """
    scale = scale or FailoverScale()
    cells = failover_cells(db, fault_kinds, scale, modes)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        kind, mode = cell.key
        out.setdefault(kind, {})[mode] = payload["runs"][0]
    return out


# -- Tail-latency defense campaigns: db x scenario x defense mode -----------

#: Defense stacks in the order the campaign compares them: no defense,
#: deadline propagation + bounded queues + admission control, and the
#: same plus hedged reads.
TAIL_MODES = ("none", "deadline", "hedge")

#: The two stress scenarios the defenses are judged under: one
#: gray-degraded replica under throttled load (hedging's home turf) and
#: a uniformly overloaded cluster at full speed (where hedging cannot
#: help and bounded queues must shed).  ``"healthy"`` — the same
#: throttled cell with no fault at all — is also accepted as a control
#: (it anchors "what should the median look like" comparisons) but is
#: not part of the default campaign.
TAIL_SCENARIOS = ("slow_replica", "overload")


@dataclass(frozen=True)
class TailScale:
    """Scale knobs for tail-latency defense campaigns."""

    record_count: int = 6_000
    operation_count: int = 24_000
    n_threads: int = 24
    n_nodes: int = 8
    #: Throttled offered load for the gray-fault scenario — low enough
    #: that the healthy cluster meets it with slack, so the p99 spread
    #: is unambiguously the slow replica's doing.
    target_throughput: float = 2_000.0
    #: The overload scenario instead runs unthrottled with this many
    #: closed-loop threads — deliberately past the bounded queues' total
    #: capacity, so shedding (not hedging) is the operative defense.
    overload_threads: int = 96
    overload_operations: int = 12_000
    #: When the gray fault fires / how long it lasts, relative to the
    #: measured run's start.
    fault_at_s: float = 2.0
    fault_duration_s: float = 8.0
    #: Disk service-time multiplier for the gray-degraded replica.
    slowdown: float = 8.0
    # Defense parameters (modes "deadline" and "hedge").  The hedge
    # trigger sits above the healthy cache-miss latency so speculation
    # targets the gray replica's stragglers, not every disk read.
    deadline_s: float = 0.25
    hedge: str = "p95"
    handler_slots: int = 4
    max_handler_queue: int = 8
    max_inflight: int = 48
    seed: int = 42


#: Fast settings for tests, CI chaos smoke, and --quick campaigns.
QUICK_TAIL_SCALE = TailScale(record_count=3_000, operation_count=8_000,
                             n_threads=16, target_throughput=1_200.0,
                             overload_threads=64, overload_operations=5_000,
                             fault_at_s=1.5, fault_duration_s=5.0)


def _tail_storage(db: str, record_count: int, n_servers: int,
                  regions_per_server: int = 2,
                  replication: int = 3) -> StorageSpec:
    """Storage tuning that keeps the tail campaign's reads disk-exposed.

    The stress default (:func:`~repro.core.config.scaled_stress_storage`)
    makes RF = 3 cache-resident, which would hide a slow *disk* entirely;
    here the block cache covers ~40% of one storage tree's resident data,
    so a steady fraction of reads misses to the spindle — the population
    whose tail the defenses act on.  The tree sizes differ per engine:
    a Cassandra node's single tree holds RF x (data / nodes), while an
    HBase region's tree holds data / (nodes x regions).
    """
    data = record_count * 1000
    if db == "cassandra":
        per_tree = data * replication // max(1, n_servers)
    else:
        per_tree = data // max(1, n_servers * regions_per_server)
    return StorageSpec(
        memtable_flush_bytes=max(32 * 1024, per_tree // 8),
        block_bytes=8 * 1024,
        block_cache_bytes=max(64 * 1024, int(per_tree * 0.4)),
    )


def tail_defense_for_mode(mode: str, scale: TailScale) -> TailDefenseConfig:
    """The tail-defense stack a campaign mode enables."""
    if mode == "none":
        return TailDefenseConfig()
    if mode == "deadline":
        return TailDefenseConfig(deadline_s=scale.deadline_s,
                                 handler_slots=scale.handler_slots,
                                 max_handler_queue=scale.max_handler_queue,
                                 max_inflight=scale.max_inflight)
    if mode == "hedge":
        return TailDefenseConfig(deadline_s=scale.deadline_s,
                                 hedge=scale.hedge,
                                 handler_slots=scale.handler_slots,
                                 max_handler_queue=scale.max_handler_queue,
                                 max_inflight=scale.max_inflight)
    raise ValueError(f"unknown tail mode {mode!r}; "
                     f"choose from {TAIL_MODES}")


def tail_cells(db: str, scale: TailScale,
               modes: Sequence[str] = TAIL_MODES,
               scenarios: Sequence[str] = TAIL_SCENARIOS) -> list[CellSpec]:
    """One cell per (scenario, defense mode)."""
    cells = []
    for scenario in scenarios:
        if scenario not in TAIL_SCENARIOS + ("healthy",):
            raise ValueError(
                f"unknown tail scenario {scenario!r}; choose from "
                f"{TAIL_SCENARIOS + ('healthy',)}")
        for mode in modes:
            config = default_stress_config(
                db, "read_mostly", replication=3,
                target_throughput=scale.target_throughput, seed=scale.seed)
            config = replace(
                config, record_count=scale.record_count,
                operation_count=scale.operation_count,
                n_threads=scale.n_threads, n_nodes=scale.n_nodes,
                storage=_tail_storage(
                    db, scale.record_count, scale.n_nodes - 1,
                    regions_per_server=config.hbase.regions_per_server,
                    replication=config.replication),
                # Keep every read hedgeable: a background repair pulls
                # all replicas into the read path, which leaves no spare
                # replica to hedge to for that request.
                cassandra=replace(config.cassandra, read_repair_chance=0.0),
                tail=tail_defense_for_mode(mode, scale))
            if scenario == "slow_replica":
                # Node 0 is a server in both deployments (the client —
                # and HBase's master — live on the last node).
                config = replace(config, faults=(FaultSpec(
                    kind="slow_disk", node_id=0, at_s=scale.fault_at_s,
                    duration_s=scale.fault_duration_s,
                    severity=scale.slowdown),))
                run = RunSpec(workload="read_mostly",
                              target_throughput=scale.target_throughput,
                              faults=True)
            elif scenario == "healthy":
                # Fault-free control at the same throttled load: what
                # the latency profile looks like with nothing wrong.
                run = RunSpec(workload="read_mostly",
                              target_throughput=scale.target_throughput)
            else:  # overload: unthrottled, far more closed-loop threads
                config = replace(config,
                                 operation_count=scale.overload_operations,
                                 n_threads=scale.overload_threads,
                                 target_throughput=None)
                run = RunSpec(workload="read_mostly")
            cells.append(CellSpec(
                key=(scenario, mode),
                label=f"tail/{db}/{scenario}/{mode}",
                config=config,
                runs=(run,),
                warm=WarmSpec(operations=max(2_000,
                                             scale.operation_count // 6))))
    return cells


def tail_sweep(db: str, scale: Optional[TailScale] = None,
               modes: Sequence[str] = TAIL_MODES,
               scenarios: Sequence[str] = TAIL_SCENARIOS,
               runner: Optional[CellRunner] = None) -> dict:
    """Tail-latency defense campaign: db x scenario x defense stack.

    Returns ``{scenario: {mode: summary}}`` where each summary is a
    :func:`~repro.core.experiment.summarize_run` dict — the latency
    percentiles up to p99.9 plus the ``errors_by_type`` breakdown that
    separates shed requests (``Overloaded``) from spent budgets
    (``DeadlineExceeded``) and plain timeouts.
    """
    scale = scale or TailScale()
    cells = tail_cells(db, scale, modes, scenarios)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        scenario, mode = cell.key
        out.setdefault(scenario, {})[mode] = payload["runs"][0]
    return out


# -- Flash-crowd survival: the open-loop client tier ------------------------

#: Defense stacks, weakest to strongest.  "undefended" is the classic
#: anti-pattern: per-arrival unbounded concurrency plus uncapped
#: client retries — the configuration that turns a transient overload
#: into a metastable retry storm.  Each later mode adds defenses on
#: top of the previous one; "full" also enables the PR-3 server-side
#: tail stack (deadlines + bounded handler queues) so the client and
#: server defenses are measured composed, not in isolation.
SURGE_MODES = ("undefended", "breaker", "breaker+budget+leveling", "full")

#: Arrival scenarios: a steady Poisson control, a 10x flash crowd, and
#: the same flash crowd landing on a cluster with one gray-degraded
#: replica (the compound failure where breakers must trip *and* the
#: leveler must shed).
SURGE_SCENARIOS = ("steady", "flash_crowd", "flash_crowd+slow_replica")


@dataclass(frozen=True)
class SurgeScale:
    """Scale knobs for flash-crowd survival campaigns."""

    record_count: int = 8_000
    n_nodes: int = 8
    #: Steady offered rate, arrivals/s — comfortably under the healthy
    #: cluster's capacity so the steady scenario is a clean control.
    base_rate: float = 600.0
    max_arrivals: int = 20_000
    #: Simulated user population; per-arrival users are zipf-skewed, so
    #: a small hot set dominates (what makes the cache-aside tier pay).
    n_users: int = 1_000_000
    n_tenants: int = 8
    #: Flash crowd: offered rate multiplies by ``spike_factor`` for
    #: ``spike_duration_s`` starting at ``spike_at_s``.
    spike_at_s: float = 4.0
    spike_factor: float = 10.0
    spike_duration_s: float = 6.0
    #: Gray fault for the compound scenario — one replica's disk slowed
    #: under the spike, like the tail campaign's ``slow_replica``.
    slowdown: float = 8.0
    #: Client-side operation deadline, applied in *every* mode so the
    #: comparison isolates the defenses, not the timeout.  Short enough
    #: that a spike's queueing delay exhausts patience (timed-out work
    #: still burns server capacity — the waste retries amplify), yet an
    #: order of magnitude above the healthy p99.9.
    op_timeout_s: float = 0.25
    retries: int = 3
    retry_backoff_s: float = 0.05
    #: Finagle-style retry budget: retries may add at most this
    #: fraction on top of first attempts (modes with "budget").
    budget_ratio: float = 0.2
    breaker_failure_rate: float = 0.5
    breaker_cooldown_s: float = 1.0
    leveling_workers: int = 48
    leveling_queue: int = 256
    #: Edge cache: a couple of spike-lengths of staleness tolerance on
    #: the zipf head absorbs most repeat reads during the surge (the
    #: oracle still prices every stale serve; ``max_staleness_lag_s``
    #: vs this TTL is the campaign's QoD budget check).
    cache_ttl_s: float = 2.0
    cache_capacity: int = 4_096
    #: Per-tenant rate limit as a multiple of the fair steady share
    #: (``base_rate / n_tenants``) — admits normal traffic with slack,
    #: clips the spike at the door.
    rate_limit_factor: float = 6.0
    #: Server RPC threadpool, bounded in *every* mode (a real server's
    #: handler count is finite — this is what couples a disk-miss
    #: pileup to the cached fast path and lets overload collapse
    #: goodput rather than only stretch latency).
    handler_slots: int = 16
    max_handler_queue: int = 32
    #: Mode "full" additionally propagates a deadline with each RPC
    #: (PR-3 composition): replica-side work is abandoned once the
    #: budget is spent, so a timed-out request stops wasting capacity.
    deadline_s: float = 0.5
    seed: int = 42


#: Fast settings for tests, CI surge smoke, and --quick campaigns.
QUICK_SURGE_SCALE = SurgeScale(n_nodes=6, max_arrivals=15_000,
                               n_users=100_000, spike_at_s=3.0,
                               spike_duration_s=4.0,
                               leveling_workers=32, leveling_queue=128)


def surge_arrivals(scenario: str, scale: SurgeScale) -> ArrivalConfig:
    """The arrival process a surge scenario offers."""
    if scenario not in SURGE_SCENARIOS:
        raise ValueError(f"unknown surge scenario {scenario!r}; "
                         f"choose from {SURGE_SCENARIOS}")
    if scenario == "steady":
        return ArrivalConfig(process="poisson", rate=scale.base_rate,
                             max_arrivals=scale.max_arrivals,
                             n_users=scale.n_users,
                             n_tenants=scale.n_tenants)
    return ArrivalConfig(process="flash_crowd", rate=scale.base_rate,
                         max_arrivals=scale.max_arrivals,
                         n_users=scale.n_users, n_tenants=scale.n_tenants,
                         spike_at_s=scale.spike_at_s,
                         spike_factor=scale.spike_factor,
                         spike_duration_s=scale.spike_duration_s)


def surge_tier_for_mode(mode: str, scale: SurgeScale) -> ClientTierConfig:
    """The client-tier defense stack a campaign mode enables.

    Every mode (including "undefended") shares the same operation
    deadline and retry count, so the modes differ only in defenses:
    the undefended stack retries without a budget and dispatches with
    unbounded concurrency — exactly the retry-storm anti-pattern.
    """
    if mode == "undefended":
        return ClientTierConfig(retries=scale.retries,
                                retry_backoff_s=scale.retry_backoff_s,
                                op_timeout_s=scale.op_timeout_s)
    if mode == "breaker":
        return ClientTierConfig(retries=scale.retries,
                                retry_backoff_s=scale.retry_backoff_s,
                                breaker_failure_rate=scale.breaker_failure_rate,
                                breaker_cooldown_s=scale.breaker_cooldown_s,
                                op_timeout_s=scale.op_timeout_s)
    if mode == "breaker+budget+leveling":
        return ClientTierConfig(retries=scale.retries,
                                retry_backoff_s=scale.retry_backoff_s,
                                retry_budget_ratio=scale.budget_ratio,
                                breaker_failure_rate=scale.breaker_failure_rate,
                                breaker_cooldown_s=scale.breaker_cooldown_s,
                                leveling_workers=scale.leveling_workers,
                                leveling_queue=scale.leveling_queue,
                                op_timeout_s=scale.op_timeout_s)
    if mode == "full":
        per_tenant = scale.rate_limit_factor * (scale.base_rate
                                                / scale.n_tenants)
        return ClientTierConfig(retries=scale.retries,
                                retry_backoff_s=scale.retry_backoff_s,
                                retry_budget_ratio=scale.budget_ratio,
                                breaker_failure_rate=scale.breaker_failure_rate,
                                breaker_cooldown_s=scale.breaker_cooldown_s,
                                rate_limit_per_tenant=per_tenant,
                                rate_limit_burst=per_tenant,
                                leveling_workers=scale.leveling_workers,
                                leveling_queue=scale.leveling_queue,
                                cache_ttl_s=scale.cache_ttl_s,
                                cache_capacity=scale.cache_capacity,
                                op_timeout_s=scale.op_timeout_s)
    raise ValueError(f"unknown surge mode {mode!r}; "
                     f"choose from {SURGE_MODES}")


def surge_cells(db: str, scale: SurgeScale,
                modes: Sequence[str] = SURGE_MODES,
                scenarios: Sequence[str] = SURGE_SCENARIOS
                ) -> list[CellSpec]:
    """One open-loop cell per (scenario, defense mode).

    Cassandra cells run at CL ONE with the consistency oracle recording
    *outside* the cache-aside tier: stale cache hits are expected (and
    bounded by the TTL) under a weak CL, while convergence violations
    remain unexpected either way.  HBase cells skip the check — a
    client-side cache deliberately breaks the strong single-master
    model, so "violations" there would only restate the cache TTL.
    """
    cells = []
    for scenario in scenarios:
        for mode in modes:
            config = default_surge_config(
                db, arrivals=surge_arrivals(scenario, scale),
                clienttier=surge_tier_for_mode(mode, scale),
                record_count=scale.record_count, n_nodes=scale.n_nodes,
                seed=scale.seed)
            # Every mode runs against the same bounded server threadpool
            # (a real server's handler count is finite); only "full"
            # adds deadline propagation, which abandons replica-side
            # work once a request's budget is spent.
            config = replace(config, tail=TailDefenseConfig(
                deadline_s=scale.deadline_s if mode == "full" else None,
                handler_slots=scale.handler_slots,
                max_handler_queue=scale.max_handler_queue))
            check = db == "cassandra"
            run = RunSpec(workload="read_mostly", open_loop=True,
                          read_cl="ONE" if check else None,
                          write_cl="ONE" if check else None,
                          check=check)
            if scenario == "flash_crowd+slow_replica":
                config = replace(config, faults=(FaultSpec(
                    kind="slow_disk", node_id=0, at_s=scale.spike_at_s,
                    duration_s=scale.spike_duration_s + 2.0,
                    severity=scale.slowdown),))
                run = replace(run, faults=True)
            cells.append(CellSpec(
                key=(scenario, mode),
                label=f"surge/{db}/{scenario}/{mode}",
                config=config,
                runs=(run,),
                warm=WarmSpec(operations=max(1_000,
                                             scale.max_arrivals // 6))))
    return cells


def surge_sweep(db: str, scale: Optional[SurgeScale] = None,
                modes: Sequence[str] = SURGE_MODES,
                scenarios: Sequence[str] = SURGE_SCENARIOS,
                runner: Optional[CellRunner] = None) -> dict:
    """Flash-crowd survival campaign: db x scenario x defense stack.

    Returns ``{scenario: {mode: summary}}`` where each summary carries
    the offered/goodput pair, latency percentiles up to p99.9 measured
    from *arrival* (coordinated omission fixed), the per-kind error
    breakdown (``RateLimited``/``LoadShed``/``BreakerOpen`` next to the
    store-side timeouts), and the ``clienttier`` accounting.
    """
    scale = scale or SurgeScale()
    cells = surge_cells(db, scale, modes, scenarios)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        scenario, mode = cell.key
        out.setdefault(scenario, {})[mode] = payload["runs"][0]
    return out


# -- Elasticity campaigns: db x scale mode x arrival shape ------------------

#: Arrival shapes the elasticity campaign scales under: a diurnal ramp
#: (the canonical autoscaler workload — load climbs predictably into a
#: busy period) and a flash crowd (the shape that punishes slow
#: reactions: by the time a bootstrap finishes streaming, the spike may
#: already be over).
ELASTIC_SCENARIOS = ("diurnal", "flash_crowd")


@dataclass(frozen=True)
class ElasticScale:
    """Scale knobs for elasticity campaigns (``repro-bench scale``).

    Every mode — ``static`` (the control), ``manual`` (operator-
    scheduled scale-out) and ``auto`` (p95-driven policy loop) — runs
    on identical hardware: the spares are provisioned in all three, so
    a latency difference is the scaling *decision's* doing, never the
    fleet size's.
    """

    record_count: int = 3_000
    #: Machines including the client; ``spare_nodes`` of the servers
    #: start outside the serving set.
    n_nodes: int = 8
    spare_nodes: int = 1
    #: Steady (base) arrival rate, arrivals/s.
    base_rate: float = 700.0
    max_arrivals: int = 12_000
    n_users: int = 100_000
    n_tenants: int = 8
    #: Diurnal shape: one full cycle, trough -> peak -> trough.  The
    #: process starts at the trough (near-silent for peak factors >= 2),
    #: so the busy period lands mid-run.
    period_s: float = 16.0
    peak_factor: float = 3.0
    #: Flash-crowd shape.
    spike_at_s: float = 4.0
    spike_factor: float = 6.0
    spike_duration_s: float = 6.0
    #: Manual mode: when the operator scales out, relative to the run's
    #: start — inside the busy window for both shapes.
    manual_at_s: float = 5.0
    #: Autoscaler policy (see :class:`repro.core.config.ElasticityConfig`).
    window_s: float = 0.5
    p95_breach_ms: float = 60.0
    breach_windows: int = 2
    #: Scale-in threshold.  Campaign cells serve from a bimodal latency
    #: mix (sub-ms cache hits vs ~10 ms disk reads), so the relax bar
    #: sits below the cache-hit floor: a window only counts as idle when
    #: *everything* in it was trivial — a lull, not a healthy mix.
    p95_relax_ms: float = 0.5
    idle_windows: int = 8
    cooldown_s: float = 6.0
    seed: int = 42


#: Fast settings for tests, the CI scale smoke, and --quick campaigns.
#: Arrivals are sized so several seconds of traffic land *after* the
#: transfer finishes — the "after" phase the recovery claim is read from.
QUICK_ELASTIC_SCALE = ElasticScale(record_count=1_200, n_nodes=6,
                                   base_rate=500.0, max_arrivals=6_000,
                                   period_s=10.0, spike_at_s=2.5,
                                   spike_duration_s=4.0, manual_at_s=4.0,
                                   cooldown_s=4.0)


def elastic_arrivals(scenario: str, scale: ElasticScale) -> ArrivalConfig:
    """The arrival process an elasticity scenario offers."""
    if scenario == "diurnal":
        return ArrivalConfig(process="diurnal", rate=scale.base_rate,
                             max_arrivals=scale.max_arrivals,
                             n_users=scale.n_users,
                             n_tenants=scale.n_tenants,
                             period_s=scale.period_s,
                             peak_factor=scale.peak_factor)
    if scenario == "flash_crowd":
        return ArrivalConfig(process="flash_crowd", rate=scale.base_rate,
                             max_arrivals=scale.max_arrivals,
                             n_users=scale.n_users,
                             n_tenants=scale.n_tenants,
                             spike_at_s=scale.spike_at_s,
                             spike_factor=scale.spike_factor,
                             spike_duration_s=scale.spike_duration_s)
    raise ValueError(f"unknown elasticity scenario {scenario!r}; "
                     f"choose from {ELASTIC_SCENARIOS}")


def elasticity_for_mode(mode: str, scale: ElasticScale) -> ElasticityConfig:
    """The elasticity plan a campaign mode arms.

    All three modes provision the same spares; they differ only in who
    (if anyone) decides to use them.
    """
    return ElasticityConfig(
        mode=mode,
        spare_nodes=scale.spare_nodes,
        events=(ScaleEventSpec(action="out", at_s=scale.manual_at_s),),
        window_s=scale.window_s,
        p95_breach_ms=scale.p95_breach_ms,
        breach_windows=scale.breach_windows,
        p95_relax_ms=scale.p95_relax_ms,
        idle_windows=scale.idle_windows,
        cooldown_s=scale.cooldown_s)


def scale_cells(db: str, scale: ElasticScale,
                modes: Sequence[str] = SCALE_MODES,
                scenarios: Sequence[str] = ELASTIC_SCENARIOS
                ) -> list[CellSpec]:
    """One open-loop cell per (scenario, scale mode).

    Every cell records a Jepsen-style history for the oracle: the
    elasticity safety contract — no acknowledged write lost across a
    bootstrap/decommission/rebalance — is checked *through* the
    topology change, not just asserted by unit tests.  Cassandra cells
    run at QUORUM/QUORUM (pending double-writes must preserve the
    quorum guarantee mid-stream); HBase's single-master model is strong
    by construction.
    """
    cells = []
    for scenario in scenarios:
        for mode in modes:
            if mode not in SCALE_MODES:
                raise ValueError(f"unknown scale mode {mode!r}; "
                                 f"choose from {SCALE_MODES}")
            config = default_scale_config(
                db, elasticity=elasticity_for_mode(mode, scale),
                arrivals=elastic_arrivals(scenario, scale),
                record_count=scale.record_count, n_nodes=scale.n_nodes,
                seed=scale.seed)
            cassandra = db == "cassandra"
            run = RunSpec(workload="read_mostly", open_loop=True,
                          read_cl="QUORUM" if cassandra else None,
                          write_cl="QUORUM" if cassandra else None,
                          check=True, scale=True)
            cells.append(CellSpec(
                key=(scenario, mode),
                label=f"scale/{db}/{scenario}/{mode}",
                config=config,
                runs=(run,),
                warm=WarmSpec(operations=max(1_000,
                                             scale.max_arrivals // 6))))
    return cells


def scale_sweep(db: str, scale: Optional[ElasticScale] = None,
                modes: Sequence[str] = SCALE_MODES,
                scenarios: Sequence[str] = ELASTIC_SCENARIOS,
                runner: Optional[CellRunner] = None) -> dict:
    """Elasticity campaign: db x scale mode x arrival shape.

    Returns ``{scenario: {mode: summary}}`` where each summary carries
    the per-phase (before / during / after transfer) latency + staleness
    ``scale`` report, the usual open-loop offered/goodput pair, and the
    oracle's ``consistency`` verdict across the topology change.
    """
    scale = scale or ElasticScale()
    cells = scale_cells(db, scale, modes, scenarios)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        scenario, mode = cell.key
        out.setdefault(scenario, {})[mode] = payload["runs"][0]
    return out


# -- Figure 3: stress benchmark vs consistency ------------------------------

def consistency_sweep_cells(scale: SweepScale, workloads: Sequence[str],
                            replication: int,
                            modes: dict) -> list[CellSpec]:
    """One cell per consistency mode, all at the same replication."""
    cells = []
    for mode, (read_cl, write_cl) in modes.items():
        config = default_stress_config("cassandra", "read_mostly",
                                       replication=replication,
                                       seed=scale.seed)
        # The consistency rounds run at RF = 3 — the cache-resident side
        # of the paper's regime — so the spreads reflect the replication
        # protocol (ack waits, digests, repairs), not disk spill.
        config = replace(config, record_count=scale.record_count,
                         operation_count=scale.operation_count,
                         n_threads=scale.n_threads, n_nodes=scale.n_nodes,
                         storage=scale.storage or scaled_stress_storage(
                             scale.record_count, 1000, scale.n_nodes - 1,
                             cache_units=8.0))
        cells.append(CellSpec(
            key=mode,
            label=f"fig3/cassandra/{mode}",
            config=config,
            runs=tuple(RunSpec(workload=name, target_throughput=target,
                               read_cl=read_cl.value,
                               write_cl=write_cl.value)
                       for name in workloads for target in scale.targets),
            warm=WarmSpec()))
    return cells


def consistency_stress_sweep(scale: Optional[SweepScale] = None,
                             workloads: Sequence[str] = STRESS_WORKLOAD_ORDER,
                             replication: int = 3,
                             modes: Optional[dict] = None,
                             runner: Optional[CellRunner] = None) -> dict:
    """Figure 3: Cassandra runtime vs target throughput per consistency level.

    Three rounds (ONE, QUORUM, write-ALL) at replication factor 3; each
    round runs the five stress workloads in the paper's order.

    Returns ``{mode: {workload: {"series": [(target, runtime), ...],
    "peak_throughput": ...}}}``.
    """
    scale = scale or SweepScale()
    modes = modes if modes is not None else CONSISTENCY_MODES
    cells = consistency_sweep_cells(scale, workloads, replication, modes)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        summaries = iter(payload["runs"])
        per_workload: dict = {}
        for name in workloads:
            pairs = [(target, next(summaries)) for target in scale.targets]
            series = [(target, summary["throughput"])
                      for target, summary in pairs]
            per_workload[name] = {
                "series": series,
                "peak_throughput": max(r for _, r in series),
                # Whole-ramp energy: joules add across targets, so the
                # aggregate is sum-of-joules over sum-of-ops.
                **_energy_rollup([summary for _, summary in pairs]),
            }
        out[cell.key] = per_workload
    return out


# -- Adaptive-consistency campaigns: policy x offered load ------------------

@dataclass(frozen=True)
class AdaptiveScale:
    """Scale knobs for adaptive-consistency campaigns.

    The scenario is calibrated so the three SLO forces all actively
    pull on the controller:

    - Storage runs at the micro tuning (tiny memtables, a 64 KB block
      cache) so reads are disk-exposed and the latency gap between CL
      ONE and QUORUM is wide (~35 vs ~105 ms p95 at the default load)
      — the ``p95_ms`` SLO sits *between* them, so the latency half of
      the SLO genuinely fights the staleness half.
    - A replica crash early in each run makes weak reads *provably*
      stale: the restarted node serves its pre-crash state until
      hinted handoff replays, and ``hint_replay_interval_s`` throttles
      that replay so the stale window is long enough for the oracle to
      catch static-ONE breaking the declared bound.  (Healthy runs
      show zero provable staleness here — FIFO per-node delivery means
      fan-out mutations always beat later reads — which is exactly why
      the campaign, like ``repro-bench check``, studies faults.)
    - Read repair is disabled so the staleness window under test stays
      open instead of being quietly closed by the anti-entropy path.
    """

    record_count: int = 300
    n_threads: int = 8
    n_nodes: int = 6
    #: Offered-load ramp (ops/s).  Operation counts scale with the
    #: target (``target x duration_s``) so every run spans the same
    #: simulated time — and therefore the same fault schedule.
    targets: tuple = (600.0, 1_200.0, 2_400.0)
    duration_s: float = 4.0
    #: The declared SLO (see :class:`repro.core.config.AdaptiveConfig`).
    p95_ms: float = 50.0
    staleness_s: float = 0.25
    risk_rate: float = 0.002
    window_s: float = 0.5
    decay_windows: int = 3
    #: Throttled hinted handoff: a restarted replica stays stale for up
    #: to one interval.
    hint_replay_interval_s: float = 3.0
    #: Replica crash injected into every measured run (relative to the
    #: run's start).
    fault_at_s: float = 0.5
    fault_duration_s: float = 1.5
    seed: int = 0


#: Fast settings for tests, CI smoke, and --quick campaigns: the one
#: calibrated load point where the ONE/QUORUM p95 gap brackets the SLO.
#: The replay interval is stretched half a second past the default so the
#: restarted replica's stale window (restart at t=2.0 until replay) is
#: wide enough that static ONE breaks the declared bound with margin —
#: the short quick runs leave only a handful of provably stale reads, and
#: the calibrated point must not sit within schedule-jitter of the bound.
QUICK_ADAPTIVE_SCALE = AdaptiveScale(targets=(1_200.0,),
                                     hint_replay_interval_s=3.5)


def adaptive_cells(policies: Sequence[str] = ADAPTIVE_POLICIES,
                   scale: Optional[AdaptiveScale] = None) -> list[CellSpec]:
    """One cell per policy; each runs the offered-load ramp at RF 3
    with the crash schedule armed and the consistency oracle recording."""
    scale = scale or AdaptiveScale()
    cells = []
    for policy in policies:
        if policy not in ADAPTIVE_POLICIES:
            raise ValueError(f"unknown adaptive policy {policy!r}; "
                             f"choose from {ADAPTIVE_POLICIES}")
        config = ExperimentConfig(
            db="cassandra",
            workload=STRESS_WORKLOADS["read_mostly"],
            record_count=scale.record_count,
            operation_count=int(scale.targets[0] * scale.duration_s),
            n_threads=scale.n_threads,
            target_throughput=scale.targets[0],
            n_nodes=scale.n_nodes,
            seed=scale.seed,
            # Micro storage tuning: disk-exposed reads (see class doc).
            storage=StorageSpec(memtable_flush_bytes=32 * 1024,
                                block_bytes=4 * 1024,
                                block_cache_bytes=64 * 1024,
                                compaction_min_batch=3,
                                compaction_max_batch=8),
            cassandra=CassandraConfig(
                read_cl=ConsistencyLevel.ONE,
                write_cl=ConsistencyLevel.ONE,
                read_repair_chance=0.0,
                blocking_read_repair=False,
                hint_replay_interval_s=scale.hint_replay_interval_s),
            adaptive=AdaptiveConfig(p95_ms=scale.p95_ms,
                                    staleness_s=scale.staleness_s,
                                    risk_rate=scale.risk_rate,
                                    window_s=scale.window_s,
                                    decay_windows=scale.decay_windows),
            faults=(FaultSpec(kind="crash", node_id=0,
                              at_s=scale.fault_at_s,
                              duration_s=scale.fault_duration_s),))
        cells.append(CellSpec(
            key=policy,
            label=f"adaptive/cassandra/{policy}",
            config=config,
            runs=tuple(RunSpec(workload="read_mostly",
                               operation_count=int(target * scale.duration_s),
                               target_throughput=target,
                               faults=True, check=True, adaptive=policy)
                       for target in scale.targets),
            warm=None))
    return cells


def adaptive_sweep(policies: Sequence[str] = ADAPTIVE_POLICIES,
                   scale: Optional[AdaptiveScale] = None,
                   runner: Optional[CellRunner] = None) -> dict:
    """Adaptive-consistency campaign: policy x offered-load ramp.

    Returns ``{policy: {target: summary}}`` where each summary is a
    :func:`~repro.core.experiment.summarize_run` dict carrying both the
    ``decisions`` log (per-window CL timeline, policy counters, digest)
    and the oracle's ``consistency`` report (violation counts and the
    worst provable staleness lag) — the two halves the SLO is judged
    against.
    """
    scale = scale or AdaptiveScale()
    cells = adaptive_cells(policies, scale)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        out[cell.key] = {target: summary
                         for target, summary in zip(scale.targets,
                                                    payload["runs"])}
    return out


# -- Geo-replication campaigns: CL mode x WAN scenario x client region ------

#: DC-aware consistency modes the geo campaign compares, as
#: ``mode -> (read_cl, write_cl)`` value strings.  EACH_QUORUM is a
#: write-only level (reading at it is a :class:`ValueError` by design),
#: so that mode pairs it with LOCAL_QUORUM reads — the deployment the
#: Cassandra docs actually recommend when writes must land in every
#: region.
GEO_CL_MODES = {
    "LOCAL_ONE": ("LOCAL_ONE", "LOCAL_ONE"),
    "LOCAL_QUORUM": ("LOCAL_QUORUM", "LOCAL_QUORUM"),
    "EACH_QUORUM": ("LOCAL_QUORUM", "EACH_QUORUM"),
    "QUORUM": ("QUORUM", "QUORUM"),
}

#: WAN scenarios: an untouched baseline, one region cut off (the
#: partition heals inside the run, so hinted handoff and convergence
#: are both exercised), and every cross-DC link stretched.
GEO_SCENARIOS = ("healthy", "dc_partition", "wan_degrade")


@dataclass(frozen=True)
class GeoScale:
    """Scale knobs for geo-replication campaigns.

    Like :class:`FailoverScale`, the run is throttled well below peak so
    availability loss is unambiguously the WAN fault's doing.  The fault
    window ends inside the measured run: the remaining tail is the
    healed period the convergence check judges.
    """

    record_count: int = 3_000
    operation_count: int = 6_000
    n_threads: int = 16
    servers_per_dc: int = 3
    replicas_per_dc: int = 3
    target_throughput: float = 1_200.0
    #: When the WAN fault fires, seconds after the measured run starts.
    fault_at_s: float = 1.0
    #: Partition / degradation window.
    fault_duration_s: float = 2.0
    #: wan_degrade: cross-DC latency + serialization multiplier.
    wan_factor: float = 6.0
    #: dc_partition: which region drops off the WAN.
    partition_dc: str = "ap-southeast"
    seed: int = 42


#: Fast settings for tests, the CI geo smoke, and --quick campaigns.
QUICK_GEO_SCALE = GeoScale(record_count=400, operation_count=800,
                           n_threads=6, servers_per_dc=2,
                           replicas_per_dc=2, target_throughput=600.0,
                           fault_at_s=0.4, fault_duration_s=0.8)


def _geo_fault(scenario: str, scale: GeoScale) -> tuple:
    if scenario == "healthy":
        return ()
    if scenario == "dc_partition":
        return (FaultSpec(kind="dc_partition",
                          datacenter=scale.partition_dc,
                          at_s=scale.fault_at_s,
                          duration_s=scale.fault_duration_s),)
    if scenario == "wan_degrade":
        return (FaultSpec(kind="wan_degrade",
                          at_s=scale.fault_at_s,
                          duration_s=scale.fault_duration_s,
                          severity=scale.wan_factor),)
    raise ValueError(f"unknown geo scenario {scenario!r}; "
                     f"choose from {GEO_SCENARIOS}")


def geo_cells(modes: Optional[Sequence[str]] = None,
              scenarios: Optional[Sequence[str]] = None,
              scale: Optional[GeoScale] = None) -> list[CellSpec]:
    """One cell per (CL mode, WAN scenario); each cell runs the same
    workload once per client region (the region's client node drives the
    load through its local coordinators)."""
    scale = scale or GeoScale()
    modes = tuple(modes or GEO_CL_MODES)
    scenarios = tuple(scenarios or GEO_SCENARIOS)
    cells = []
    for mode in modes:
        if mode not in GEO_CL_MODES:
            raise ValueError(f"unknown geo CL mode {mode!r}; "
                             f"choose from {tuple(GEO_CL_MODES)}")
        read_cl, write_cl = GEO_CL_MODES[mode]
        for scenario in scenarios:
            config = default_geo_config(
                servers_per_dc=scale.servers_per_dc,
                replicas_per_dc=scale.replicas_per_dc,
                record_count=scale.record_count,
                operation_count=scale.operation_count,
                n_threads=scale.n_threads,
                target_throughput=scale.target_throughput,
                seed=scale.seed,
                faults=_geo_fault(scenario, scale))
            regions = config.geo.client_datacenters
            cells.append(CellSpec(
                key=(mode, scenario),
                label=f"geo/cassandra/{mode}/{scenario}",
                config=config,
                runs=tuple(RunSpec(workload="read_update",
                                   target_throughput=scale.target_throughput,
                                   read_cl=read_cl, write_cl=write_cl,
                                   faults=scenario != "healthy",
                                   check=True, client_dc=region)
                           for region in regions),
                warm=None))
    return cells


def geo_sweep(modes: Optional[Sequence[str]] = None,
              scenarios: Optional[Sequence[str]] = None,
              scale: Optional[GeoScale] = None,
              runner: Optional[CellRunner] = None) -> dict:
    """Geo-replication campaign: CL mode x WAN scenario x client region.

    Returns ``{mode: {scenario: {region: summary}}}`` where each summary
    is a :func:`~repro.core.experiment.summarize_run` dict whose
    ``consistency`` entry carries the cross-DC oracle verdict (staleness
    lag, convergence after heal, which guarantees held) and — for the
    faulted scenarios — a ``failover`` availability report.
    """
    scale = scale or GeoScale()
    cells = geo_cells(modes, scenarios, scale)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        mode, scenario = cell.key
        regions = cell.config.geo.client_datacenters
        out.setdefault(mode, {})[scenario] = {
            region: summary
            for region, summary in zip(regions, payload["runs"])}
    return out


# -- Energy & cost campaigns: db x RF x CL x power mode ---------------------

#: Power-management contenders the energy campaign compares:
#: ``always_on`` (the historical baseline), ``race_to_sleep``
#: (unconditional parking after the idle thresholds) and
#: ``energy_aware`` (Cassandra only: the
#: :class:`~repro.adaptive.policy.EnergyAwarePolicy` routes CLs by the
#: staleness budget and parks replicas per monitoring window).
ENERGY_POWER_MODES = ("always_on", "race_to_sleep", "energy_aware")

#: Consistency rounds priced per database.  HBase has no per-request
#: CL; the adaptive contender routes CLs itself and is keyed
#: ``"adaptive"`` in the sweep.
ENERGY_CL_MODES = {
    "cassandra": ("ONE", "QUORUM"),
    "hbase": ("n/a",),
}


@dataclass(frozen=True)
class EnergyScale:
    """Scale knobs for the energy/cost campaign.

    The load is throttled well below peak on purpose: energy
    efficiency is about what the *idle* capacity costs, so the
    interesting regime is the one where power management has slack to
    harvest.  Storage runs at the micro tuning so reads reach the disk
    and the spindle term participates.  The parking thresholds are
    shrunk to the campaign's time scale (sub-second windows instead of
    a datacenter's seconds-to-minutes) so race-to-sleep visibly trades
    wake latency for joules within a four-second run.
    """

    record_count: int = 300
    #: Client threads.  Weak CLs sustain the offered target with room
    #: to spare; QUORUM's disk-exposed reads saturate the thread pool
    #: and stretch wall-clock — which is itself part of the energy
    #: story (a slower CL burns fleet idle watts for longer per op).
    n_threads: int = 16
    n_nodes: int = 6
    #: Replication factors swept (the paper-shape axis: more replicas,
    #: more fan-out work, more joules per op).
    rfs: tuple = (1, 3)
    #: 50/50 read/update: writes fan out RF-ways on both stores, so the
    #: replication axis moves the dynamic (CPU/disk/NIC) joules instead
    #: of drowning in idle draw the way a read-mostly mix would.
    workload: str = "read_update"
    #: Offered load, ops/s (closed-loop throttled).  Kept well under
    #: the knee on purpose: past it, RF 1's single-replica hotspots
    #: collapse throughput and the run measures queueing, not power.
    target: float = 600.0
    duration_s: float = 12.0
    #: SLO the energy-aware contender steers by.
    p95_ms: float = 50.0
    staleness_s: float = 0.25
    risk_rate: float = 0.002
    window_s: float = 0.5
    decay_windows: int = 3
    #: Power-state machine timing (see :class:`repro.energy.PowerSpec`).
    idle_after_s: float = 0.005
    sleep_after_s: float = 0.25
    pstate_wake_s: float = 0.002
    sleep_wake_s: float = 0.2
    #: Seed 3 + runs long enough that the replication-axis energy delta
    #: clears the closed-loop drain-tail jitter (the last op's latency
    #: times the fleet's idle watts, ~±15 J either way).
    seed: int = 3


#: Fast settings for tests, the CI energy smoke, and --quick campaigns.
QUICK_ENERGY_SCALE = EnergyScale(target=600.0, duration_s=6.0)


def energy_modes(db: str) -> list[tuple[str, str]]:
    """The (CL round, power mode) grid one database compares."""
    if db == "cassandra":
        return [("ONE", "always_on"), ("QUORUM", "always_on"),
                ("ONE", "race_to_sleep"), ("QUORUM", "race_to_sleep"),
                ("adaptive", "energy_aware")]
    return [("n/a", "always_on"), ("n/a", "race_to_sleep")]


def energy_cells(db: str,
                 scale: Optional[EnergyScale] = None) -> list[CellSpec]:
    """One cell per (RF, CL round, power mode), each a healthy
    oracle-checked run at the throttled target."""
    scale = scale or EnergyScale()
    cells = []
    ops = int(scale.target * scale.duration_s)
    for rf in scale.rfs:
        for cl, power in energy_modes(db):
            adaptive = "energy-aware" if power == "energy_aware" else None
            energy = EnergyConfig(
                power_mode=("policy" if power == "energy_aware"
                            else power),
                idle_after_s=scale.idle_after_s,
                sleep_after_s=scale.sleep_after_s,
                pstate_wake_s=scale.pstate_wake_s,
                sleep_wake_s=scale.sleep_wake_s)
            read_cl = write_cl = ConsistencyLevel.ONE
            if cl == "QUORUM":
                read_cl = write_cl = ConsistencyLevel.QUORUM
            config = ExperimentConfig(
                db=db,
                workload=STRESS_WORKLOADS[scale.workload],
                record_count=scale.record_count,
                operation_count=ops,
                n_threads=scale.n_threads,
                target_throughput=scale.target,
                n_nodes=scale.n_nodes,
                seed=scale.seed,
                # Disk-exposed reads (tiny block cache) but a gentler
                # flush threshold than the adaptive campaign's: a 50%
                # update mix at 32 KiB flushes leaves a compaction
                # backlog that drains for seconds after the load, all
                # billed at fleet idle watts — pure tail noise.
                storage=StorageSpec(memtable_flush_bytes=128 * 1024,
                                    block_bytes=4 * 1024,
                                    block_cache_bytes=64 * 1024,
                                    compaction_min_batch=3,
                                    compaction_max_batch=8),
                # Durable WAL: energy is priced on the durable path, so
                # every pipeline packet hits each replica's spindle and
                # the HDFS replication factor shows up in the joules
                # (foreground throughput still barely moves — the
                # paper's finding F2).
                hbase=HBaseConfig(replication=rf, regions_per_server=1,
                                  wal_sync=True),
                cassandra=CassandraConfig(
                    replication=rf,
                    read_cl=read_cl, write_cl=write_cl,
                    read_repair_chance=0.0,
                    blocking_read_repair=False),
                adaptive=AdaptiveConfig(p95_ms=scale.p95_ms,
                                        staleness_s=scale.staleness_s,
                                        risk_rate=scale.risk_rate,
                                        window_s=scale.window_s,
                                        decay_windows=scale.decay_windows),
                energy=energy)
            cells.append(CellSpec(
                key=(rf, cl, power),
                label=f"energy/{db}/rf={rf}/{cl}/{power}",
                config=config,
                runs=(RunSpec(workload=scale.workload,
                              operation_count=ops,
                              target_throughput=scale.target,
                              check=True, adaptive=adaptive),),
                warm=None))
    return cells


def energy_sweep(db: str, scale: Optional[EnergyScale] = None,
                 runner: Optional[CellRunner] = None) -> dict:
    """Energy/cost campaign: RF x CL round x power mode, one database.

    Returns ``{rf: {cl: {power: summary}}}`` where each summary is a
    :func:`~repro.core.experiment.summarize_run` dict carrying the
    ``energy``/``cost`` breakdowns, ``joules_per_op``/``usd_per_mops``,
    the oracle's ``consistency`` verdict, and — for the energy-aware
    contender — the ``decisions`` log with its park/unpark counters.
    """
    scale = scale or EnergyScale()
    cells = energy_cells(db, scale)
    out: dict = {}
    for cell, payload in zip(cells, _run(cells, runner)):
        rf, cl, power = cell.key
        out.setdefault(rf, {}).setdefault(cl, {})[power] = \
            payload["runs"][0]
    return out
