"""Experiment configuration: one object per benchmark cell."""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.cassandra.consistency import ConsistencyLevel
from repro.cluster.elasticity import ElasticityConfig, ScaleEventSpec
from repro.cluster.failure import FaultSpec
from repro.energy import POWER_MODES, CostSpec, PowerSpec
from repro.storage.lsm import StorageSpec
from repro.ycsb.workload import MICRO_WORKLOADS, STRESS_WORKLOADS, WorkloadSpec

__all__ = [
    "AdaptiveConfig",
    "ArrivalConfig",
    "CassandraConfig",
    "ClientTierConfig",
    "ElasticityConfig",
    "EnergyConfig",
    "ExperimentConfig",
    "GeoConfig",
    "HBaseConfig",
    "ScaleEventSpec",
    "TailDefenseConfig",
    "config_to_dict",
    "config_to_json",
    "default_check_config",
    "default_geo_config",
    "default_micro_config",
    "default_scale_config",
    "default_stress_config",
    "default_surge_config",
]


@dataclass(frozen=True)
class TailDefenseConfig:
    """Tail-latency defense knobs, shared by both database models.

    The all-defaults instance is a no-op (no deadline, no hedging,
    unbounded queues) — the pre-defense behaviour every other sweep runs
    with.
    """

    #: End-to-end per-operation budget in seconds (covers client
    #: retries); the absolute deadline rides every RPC so replica-side
    #: work is abandoned once the budget is spent.  ``None`` = off.
    deadline_s: Optional[float] = None
    #: Speculative retry (hedged reads): ``"NNms"`` fixed delay or
    #: ``"pNN"`` latency percentile.  ``None`` = off.
    hedge: Optional[str] = None
    #: Concurrent server-side handler executions per node; only enforced
    #: when ``max_handler_queue`` is set.
    handler_slots: int = 16
    #: Bounded server-side queue depth — beyond it requests are shed
    #: with an explicit ``Overloaded`` error.  ``None`` = unbounded.
    max_handler_queue: Optional[int] = None
    #: Coordinator admission control (Cassandra): max in-flight
    #: coordinated ops per node.  ``None`` = unlimited.
    max_inflight: Optional[int] = None


@dataclass(frozen=True)
class ClientTierConfig:
    """Resilient client-tier knobs (see :mod:`repro.clienttier`).

    The all-defaults instance is inert: no retries, no breaker, no rate
    limiter, no leveler, no cache — the raw driver behaviour every
    closed-loop sweep keeps.  Only consulted when a run goes through
    the open-loop client (:attr:`repro.core.runner.RunSpec.open_loop`).
    """

    #: Extra client-tier attempts per operation (0 = the tier's retry
    #: layer is off; the drivers' own internal retries still apply).
    retries: int = 0
    retry_backoff_s: float = 0.05
    retry_backoff_cap_s: float = 1.0
    #: Retry-budget earn ratio (Finagle-style): each first attempt earns
    #: this fraction of a retry token.  ``None`` = uncapped retries —
    #: the naive client whose amplification the surge campaign measures.
    retry_budget_ratio: Optional[float] = None
    retry_budget_min_per_s: float = 1.0
    retry_budget_burst: float = 20.0
    #: Circuit breaker trip threshold (failure fraction in the sliding
    #: window).  ``None`` = no breaker.
    breaker_failure_rate: Optional[float] = None
    breaker_window_s: float = 1.0
    breaker_min_volume: int = 10
    breaker_cooldown_s: float = 1.0
    breaker_half_open_probes: int = 3
    #: Per-tenant admission rate (requests/s).  ``None`` = no limiter.
    rate_limit_per_tenant: Optional[float] = None
    rate_limit_burst: float = 10.0
    #: Fixed worker-pool size for queue-based load leveling.  ``None`` =
    #: spawn one in-flight operation per arrival (unbounded concurrency).
    leveling_workers: Optional[int] = None
    leveling_queue: int = 64
    #: Cache-aside read-cache TTL (the declared staleness budget the
    #: oracle prices).  ``None`` = no cache.
    cache_ttl_s: Optional[float] = None
    cache_capacity: int = 1024
    #: Override the driver's per-operation timeout (both engines) so an
    #: overloaded store fails fast enough for client-side defenses to
    #: react within a short campaign.  ``None`` = driver defaults.
    op_timeout_s: Optional[float] = None


@dataclass(frozen=True)
class ArrivalConfig:
    """Open-loop arrival stream for one measured run
    (see :mod:`repro.ycsb.arrivals`)."""

    #: "poisson", "diurnal" or "flash_crowd".
    process: str = "poisson"
    #: Steady (base) arrival rate, requests/s.
    rate: float = 1_000.0
    #: How many arrivals one measured run dispatches.
    max_arrivals: int = 10_000
    #: Simulated-user population behind the arrivals (zipf-skewed).
    n_users: int = 100_000
    #: Tenants the users map onto (the rate limiter's metering unit).
    n_tenants: int = 8
    # Diurnal shape.
    period_s: float = 60.0
    peak_factor: float = 2.0
    # Flash-crowd shape.
    spike_at_s: float = 5.0
    spike_factor: float = 10.0
    spike_duration_s: float = 5.0

    def __post_init__(self) -> None:
        if self.process not in ("poisson", "diurnal", "flash_crowd"):
            raise ValueError(f"unknown arrival process {self.process!r}")
        if self.rate <= 0 or self.max_arrivals < 1:
            raise ValueError("rate must be positive, max_arrivals >= 1")


@dataclass(frozen=True)
class AdaptiveConfig:
    """The declared SLO an adaptive-consistency run steers by
    (see :mod:`repro.adaptive`): "p95 read latency <= ``p95_ms`` AND
    staleness <= ``staleness_s`` / exposed-read rate <= ``risk_rate``".

    Only consulted when a run asks for a policy
    (:attr:`repro.core.runner.RunSpec.adaptive`); otherwise inert.
    """

    #: Latency half of the SLO: per-window p95 read latency bound (ms).
    p95_ms: float = 10.0
    #: Staleness half: the declared freshness bound S (seconds) — keys
    #: written more recently than this are "at risk" for weak reads.
    staleness_s: float = 0.25
    #: Tolerated fraction of a window's reads that may be exposed to
    #: staleness risk (at-risk key served at a weak CL).
    risk_rate: float = 0.01
    #: Monitoring window length (simulated seconds).
    window_s: float = 0.5
    #: StepwisePolicy hysteresis: clean windows before decaying a level.
    decay_windows: int = 3
    #: Geo deployments: per-region staleness budgets as ``(datacenter,
    #: bound_s)`` pairs.  A run measured from a listed region steers by
    #: its own bound (a far region may tolerate more staleness than the
    #: write-home region); unlisted regions fall back to ``staleness_s``.
    staleness_by_region: tuple = ()


@dataclass(frozen=True)
class EnergyConfig:
    """Power/cost model for one cell (see :mod:`repro.energy`).

    The all-defaults instance is inert: every node stays always-on, no
    wake latency anywhere, and the meter prices exactly the historical
    utilization integral.  ``power_mode`` arms power management:

    - ``"race_to_sleep"`` — every server parks unconditionally after
      its idle threshold (DVFS P-state, then deep sleep), paying
      deterministic wake latency when work arrives;
    - ``"policy"`` — servers start always-on and an
      :class:`repro.adaptive.policy.EnergyAwarePolicy` parks/unparks
      them per monitoring window (requires ``RunSpec.adaptive =
      "energy-aware"``).
    """

    power_mode: str = "always_on"
    idle_w: float = 120.0
    cpu_w: float = 80.0
    disk_w: float = 10.0
    nic_w: float = 5.0
    pstate_idle_w: float = 70.0
    sleep_w: float = 12.0
    idle_after_s: float = 0.01
    sleep_after_s: float = 0.5
    pstate_wake_s: float = 0.002
    sleep_wake_s: float = 0.3
    usd_per_kwh: float = 0.12
    usd_per_node_hour: float = 0.10

    def __post_init__(self) -> None:
        if self.power_mode not in POWER_MODES + ("policy",):
            raise ValueError(
                f"unknown power mode {self.power_mode!r}; choose from "
                f"{POWER_MODES + ('policy',)}")

    def power_spec(self) -> PowerSpec:
        return PowerSpec(
            idle_w=self.idle_w, cpu_w=self.cpu_w, disk_w=self.disk_w,
            nic_w=self.nic_w, pstate_idle_w=self.pstate_idle_w,
            sleep_w=self.sleep_w, idle_after_s=self.idle_after_s,
            sleep_after_s=self.sleep_after_s,
            pstate_wake_s=self.pstate_wake_s,
            sleep_wake_s=self.sleep_wake_s)

    def cost_spec(self) -> CostSpec:
        return CostSpec(usd_per_kwh=self.usd_per_kwh,
                        usd_per_node_hour=self.usd_per_node_hour)


@dataclass(frozen=True)
class HBaseConfig:
    """HBase-side knobs (see :class:`repro.hbase.deployment.HBaseSpec`)."""

    replication: int = 3
    regions_per_server: int = 2
    wal_sync: bool = False
    failure_detection_s: float = 3.0
    region_recovery_s: float = 2.0
    region_move_s: float = 0.25


@dataclass(frozen=True)
class CassandraConfig:
    """Cassandra-side knobs (see :class:`repro.cassandra.deployment.CassandraSpec`)."""

    replication: int = 3
    read_cl: ConsistencyLevel = ConsistencyLevel.ONE
    write_cl: ConsistencyLevel = ConsistencyLevel.ONE
    read_repair_chance: float = 0.1
    blocking_read_repair: bool = True
    vnodes: int = 16
    #: How often each coordinator's hint replayer wakes (seconds).  A
    #: larger interval models throttled hinted handoff: a restarted
    #: replica stays stale for up to one interval, which is the window
    #: the adaptive-consistency campaigns study.
    hint_replay_interval_s: float = 1.0


@dataclass(frozen=True)
class GeoConfig:
    """Multi-datacenter deployment description for one cell.

    JSON-safe mirror of :class:`repro.cluster.geo.GeoSpec`: dict-like
    fields are ``(key, value)`` pair tuples and the WAN latency matrix
    is ``(dc_a, dc_b, one_way_s)`` triples, so the whole config hashes
    into the cell-cache fingerprint unchanged.  Cassandra-only — the
    geo campaign exercises per-DC replica placement and the DC-aware
    consistency levels, which are Cassandra concepts.
    """

    #: ``(datacenter, server_count)`` pairs, in node-id order.
    datacenters: tuple = (("eu-west", 3), ("us-west", 3),
                          ("ap-southeast", 3))
    #: Which datacenters host a client node (one per region, appended
    #: after the servers in this order); runs pick their region via
    #: ``RunSpec.client_dc``.
    client_datacenters: tuple = ("eu-west", "us-west", "ap-southeast")
    #: ``(datacenter, replicas)`` pairs (NetworkTopologyStrategy).
    replication_per_dc: tuple = (("eu-west", 3), ("us-west", 3),
                                 ("ap-southeast", 3))
    #: One-way cross-DC latencies as ``(dc_a, dc_b, seconds)`` triples
    #: (defaults mirror :data:`repro.cluster.geo.DEFAULT_REGION_RTTS`).
    region_rtt_s: tuple = (("eu-west", "us-west", 0.075),
                           ("eu-west", "ap-southeast", 0.090),
                           ("us-west", "ap-southeast", 0.085))
    #: Inter-DC usable bandwidth per flow (bytes/s).
    wan_bandwidth_bps: float = 30e6

    def __post_init__(self) -> None:
        names = [dc for dc, _ in self.datacenters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate datacenters in {names}")
        counts = dict(self.datacenters)
        for dc in self.client_datacenters:
            if dc not in counts:
                raise ValueError(f"client datacenter {dc!r} is not a "
                                 f"configured datacenter")
        for dc, rf in self.replication_per_dc:
            if dc not in counts:
                raise ValueError(f"replication configured for unknown "
                                 f"datacenter {dc!r}")
            if rf > counts[dc]:
                raise ValueError(f"datacenter {dc!r} has {counts[dc]} "
                                 f"servers but replication {rf} requested")
        covered = {frozenset({a, b}) for a, b, _ in self.region_rtt_s}
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if frozenset({a, b}) not in covered:
                    raise ValueError(f"no WAN latency configured between "
                                     f"{a!r} and {b!r}")

    @property
    def total_nodes(self) -> int:
        """Servers plus one client node per client datacenter."""
        return (sum(count for _, count in self.datacenters)
                + len(self.client_datacenters))


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one benchmark cell reproducibly."""

    #: "hbase" or "cassandra".
    db: str
    workload: WorkloadSpec
    record_count: int
    operation_count: int
    n_threads: int = 16
    #: Offered load cap, ops/s (None = full speed).
    target_throughput: Optional[float] = None
    warmup_fraction: float = 0.1
    #: Machines including the client node (paper: 16).
    n_nodes: int = 16
    seed: int = 42
    #: Simulated seconds to let background work settle after loading.
    settle_s: float = 5.0
    load_threads: int = 32
    hbase: HBaseConfig = field(default_factory=HBaseConfig)
    cassandra: CassandraConfig = field(default_factory=CassandraConfig)
    storage: StorageSpec = field(default_factory=StorageSpec)
    #: Tail-latency defenses (deadline propagation, hedged reads,
    #: bounded queues + shedding).  Defaults to all-off.
    tail: TailDefenseConfig = field(default_factory=TailDefenseConfig)
    #: Adaptive-consistency SLO (only consulted when a run names a
    #: policy via ``RunSpec.adaptive``).
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    #: Resilient client tier (breaker / retry budget / rate limiter /
    #: leveling / cache-aside); inert by default, consulted by open-loop
    #: runs (``RunSpec.open_loop``).
    clienttier: ClientTierConfig = field(default_factory=ClientTierConfig)
    #: Power/cost model (joules/op and $/Mops on every report);
    #: defaults to always-on with the standard testbed wattages.
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    #: Open-loop arrival stream for ``RunSpec.open_loop`` runs.  ``None``
    #: means the cell is closed-loop only.
    arrivals: Optional[ArrivalConfig] = None
    #: Declarative fault schedule for this cell (``at_s`` relative to the
    #: start of each measured run).  Only armed when the caller runs the
    #: cell with fault injection enabled, so the same config can serve
    #: both a healthy baseline and a chaos campaign.
    faults: tuple[FaultSpec, ...] = ()
    #: Multi-datacenter deployment (Cassandra only).  ``None`` = the
    #: usual single-rack cluster.  When set, ``n_nodes`` must equal
    #: ``geo.total_nodes`` so the cell fingerprint stays honest.
    geo: Optional[GeoConfig] = None
    #: Elasticity plan (``repro-bench scale``): provisions
    #: ``elasticity.spare_nodes`` trailing servers outside the serving
    #: set and describes how (if at all) a run scales the cluster.
    #: ``None`` = the usual fixed-size deployment.  Only armed when the
    #: caller runs the cell with scaling enabled, so one config serves
    #: both the static control and the elastic runs.
    elasticity: Optional[ElasticityConfig] = None

    def __post_init__(self) -> None:
        if self.db not in ("hbase", "cassandra"):
            raise ValueError(f"unknown db {self.db!r}")
        if self.record_count < 1 or self.operation_count < 1:
            raise ValueError("record_count and operation_count must be >= 1")
        if self.n_nodes < 2:
            raise ValueError("need at least one server node plus the client")
        if self.elasticity is not None:
            if self.geo is not None:
                raise ValueError("elasticity and geo are mutually "
                                 "exclusive (scaling is single-ring)")
            # n_nodes - 1 servers; spares must leave one in service.
            if self.elasticity.spare_nodes >= self.n_nodes - 1:
                raise ValueError(
                    f"elasticity.spare_nodes={self.elasticity.spare_nodes} "
                    f"must leave at least one in-service server "
                    f"(n_nodes={self.n_nodes} has {self.n_nodes - 1} servers)")
        if self.geo is not None:
            if self.db != "cassandra":
                raise ValueError("geo deployments support Cassandra only "
                                 "(per-DC placement and LOCAL_*/EACH_QUORUM "
                                 "are Cassandra concepts)")
            if self.n_nodes != self.geo.total_nodes:
                raise ValueError(
                    f"n_nodes={self.n_nodes} does not match the geo "
                    f"layout's {self.geo.total_nodes} nodes "
                    f"(servers + one client per client datacenter)")

    @property
    def replication(self) -> int:
        return (self.hbase.replication if self.db == "hbase"
                else self.cassandra.replication)

    def with_replication(self, replication: int) -> "ExperimentConfig":
        """A copy of this config at a different replication factor."""
        return replace(
            self,
            hbase=replace(self.hbase, replication=replication),
            cassandra=replace(self.cassandra, replication=replication))


def _jsonify(value):
    """Recursively reduce a config tree to JSON-safe primitives."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def config_to_dict(config: ExperimentConfig) -> dict:
    """A JSON-safe dict with every resolved knob of ``config``.

    Used by the cell cache (:mod:`repro.core.runner`) as the identity of
    a benchmark cell: two configs with equal dicts run identical
    simulations (given equal code).
    """
    return _jsonify(asdict(config))


def config_to_json(config: ExperimentConfig) -> str:
    """Canonical (sorted-key, compact) JSON form of ``config``."""
    return json.dumps(config_to_dict(config), sort_keys=True,
                      separators=(",", ":"))


def default_micro_config(db: str, micro_op: str = "read",
                         replication: int = 3,
                         seed: int = 42) -> ExperimentConfig:
    """The paper's micro benchmark, scaled down (tiny records, light load).

    The paper keeps the testbed "in unsaturated state by limiting the
    number of concurrent requests"; a small thread count with no target
    cap does the same here.
    """
    if micro_op not in MICRO_WORKLOADS:
        raise ValueError(f"unknown micro workload {micro_op!r}; "
                         f"choose from {sorted(MICRO_WORKLOADS)}")
    config = ExperimentConfig(
        db=db,
        workload=MICRO_WORKLOADS[micro_op],
        record_count=30_000,
        operation_count=4_000,
        n_threads=8,
        target_throughput=None,
        seed=seed,
        # Micro records are tiny; shrink the memory budgets with them so
        # reads still exercise the disk (the paper's fit-in-memory rule)
        # without making every access a worst-case seek.
        storage=StorageSpec(memtable_flush_bytes=32 * 1024,
                            block_bytes=4 * 1024,
                            block_cache_bytes=64 * 1024,
                            compaction_min_batch=3,
                            compaction_max_batch=8),
        hbase=HBaseConfig(regions_per_server=1),
    )
    return config.with_replication(replication)


def scaled_stress_storage(record_count: int, record_bytes: int,
                          n_servers: int,
                          cache_units: float = 3.2) -> StorageSpec:
    """Stress-test storage tuning scaled to the dataset.

    The paper chose 100 M x 1 KB records against 15 x 32 GB machines so
    that per-node data is cache-resident around RF = 3 and spills to disk
    beyond it.  This helper preserves that ratio at any scaled-down
    population: the block cache covers ``cache_units`` x one
    replication-unit of data per server (default ~3.2, putting the
    disk-spill knee just past RF = 3), and the memtable flushes at half a
    unit so SSTables exist from RF = 1 on.
    """
    unit = max(1, record_count * record_bytes // max(1, n_servers))
    return StorageSpec(
        memtable_flush_bytes=max(256 * 1024, unit // 2),
        block_bytes=8 * 1024,
        block_cache_bytes=max(1024 * 1024, int(unit * cache_units)),
    )


def default_check_config(db: str,
                         read_cl: ConsistencyLevel = ConsistencyLevel.QUORUM,
                         write_cl: ConsistencyLevel = ConsistencyLevel.QUORUM,
                         seed: int = 0,
                         no_repair: bool = False) -> ExperimentConfig:
    """One consistency-check cell (``repro-bench check``): a small
    read/update population under throttled load, sized so a 50-seed
    exploration matrix stays cheap while every key still sees enough
    operations for the per-key history checkers to bite.

    ``no_repair`` disables read repair entirely (zero chance, no
    blocking repair) so a weak CL's staleness window stays open for the
    session checkers to observe instead of being quietly closed by the
    anti-entropy path under test.
    """
    return ExperimentConfig(
        db=db,
        workload=STRESS_WORKLOADS["read_update"],
        record_count=300,
        operation_count=2_500,
        n_threads=8,
        target_throughput=1_200.0,
        n_nodes=6,
        seed=seed,
        storage=scaled_stress_storage(300, 1000, 5),
        cassandra=CassandraConfig(
            read_cl=read_cl, write_cl=write_cl,
            read_repair_chance=0.0 if no_repair else 0.1,
            blocking_read_repair=not no_repair),
    )


def default_geo_config(read_cl: ConsistencyLevel = ConsistencyLevel.LOCAL_QUORUM,
                       write_cl: ConsistencyLevel = ConsistencyLevel.LOCAL_QUORUM,
                       servers_per_dc: int = 3,
                       replicas_per_dc: int = 3,
                       record_count: int = 3_000,
                       operation_count: int = 6_000,
                       n_threads: int = 16,
                       target_throughput: Optional[float] = 1_200.0,
                       seed: int = 42,
                       no_repair: bool = False,
                       hint_replay_interval_s: float = 1.0,
                       faults: tuple = ()) -> ExperimentConfig:
    """One geo-replication cell: the default three regions (EU, US-West,
    Singapore), ``servers_per_dc`` Cassandra servers and one client node
    per region, NetworkTopologyStrategy with ``replicas_per_dc``.

    ``no_repair`` disables read repair (and is typically paired with a
    long ``hint_replay_interval_s``) so LOCAL_ONE's staleness window
    stays open for the oracle to observe.
    """
    regions = ("eu-west", "us-west", "ap-southeast")
    geo = GeoConfig(
        datacenters=tuple((dc, servers_per_dc) for dc in regions),
        client_datacenters=regions,
        replication_per_dc=tuple((dc, replicas_per_dc) for dc in regions))
    return ExperimentConfig(
        db="cassandra",
        workload=STRESS_WORKLOADS["read_update"],
        record_count=record_count,
        operation_count=operation_count,
        n_threads=n_threads,
        target_throughput=target_throughput,
        n_nodes=geo.total_nodes,
        seed=seed,
        storage=scaled_stress_storage(record_count, 1000,
                                      servers_per_dc * len(regions)),
        cassandra=CassandraConfig(
            read_cl=read_cl, write_cl=write_cl,
            read_repair_chance=0.0 if no_repair else 0.1,
            blocking_read_repair=not no_repair,
            hint_replay_interval_s=hint_replay_interval_s),
        geo=geo,
        faults=tuple(faults),
    )


def default_surge_config(db: str,
                         arrivals: Optional[ArrivalConfig] = None,
                         clienttier: Optional[ClientTierConfig] = None,
                         record_count: int = 4_000,
                         n_nodes: int = 8,
                         seed: int = 42) -> ExperimentConfig:
    """One flash-crowd survival cell (``repro-bench surge``).

    A read-mostly zipfian mix (the profile a cache-aside tier can help)
    on a small cluster, with the server block cache squeezed far below
    the tail campaign's: even much of the zipfian hot set misses to
    disk, so the cluster has a hard, low service ceiling for a flash
    crowd to collapse onto — and a client-side cache something real to
    absorb.  ``operation_count`` only sizes the closed-loop warm-up;
    measured runs draw their length from ``arrivals.max_arrivals``.
    """
    arrivals = arrivals or ArrivalConfig()
    data = record_count * 1000
    per_tree = data * 3 // max(1, n_nodes - 1)
    return ExperimentConfig(
        db=db,
        workload=STRESS_WORKLOADS["read_mostly"],
        record_count=record_count,
        operation_count=max(1_000, arrivals.max_arrivals // 4),
        n_threads=16,
        n_nodes=n_nodes,
        seed=seed,
        storage=StorageSpec(
            memtable_flush_bytes=max(32 * 1024, per_tree // 8),
            block_bytes=8 * 1024,
            block_cache_bytes=max(64 * 1024, int(per_tree * 0.10))),
        clienttier=clienttier or ClientTierConfig(),
        arrivals=arrivals,
    )


def default_scale_config(db: str,
                         elasticity: Optional[ElasticityConfig] = None,
                         arrivals: Optional[ArrivalConfig] = None,
                         record_count: int = 3_000,
                         n_nodes: int = 8,
                         seed: int = 42) -> ExperimentConfig:
    """One elasticity cell (``repro-bench scale``).

    A read-mostly open-loop cell on a small cluster whose *serving* set
    is ``n_nodes - 1 - spare_nodes`` servers: the spares sit provisioned
    but idle until a scale-out bootstraps (Cassandra) or activates
    (HBase) them.  Storage is sized to the serving set, so the initial
    members run close to their cache ceiling and added capacity is
    visible in the latency profile — which is what the autoscaler's
    breach/relax thresholds key on.
    """
    elasticity = elasticity or ElasticityConfig()
    arrivals = arrivals or ArrivalConfig(process="diurnal", rate=800.0,
                                         max_arrivals=8_000, period_s=20.0,
                                         peak_factor=3.0)
    serving = n_nodes - 1 - elasticity.spare_nodes
    if serving < 1:
        raise ValueError("spare_nodes must leave at least one server")
    data = record_count * 1000
    # Per-engine tree sizing (cf. the tail campaign): a Cassandra
    # member's single tree holds RF x (data / serving), an HBase
    # region's tree holds data / (serving x regions_per_server).
    if db == "cassandra":
        per_tree = data * 3 // max(1, serving)
    else:
        per_tree = data // max(1, serving * 2)
    return ExperimentConfig(
        db=db,
        workload=STRESS_WORKLOADS["read_mostly"],
        record_count=record_count,
        operation_count=max(1_000, arrivals.max_arrivals // 4),
        n_threads=16,
        n_nodes=n_nodes,
        seed=seed,
        # Cache ~60% of a serving member's tree: the knee sits just
        # past the base rate, so the peak of a diurnal cycle (or a
        # flash crowd) pushes the initial members over it while the
        # widened ring after a scale-out is comfortable again.
        storage=StorageSpec(
            memtable_flush_bytes=max(32 * 1024, per_tree // 8),
            block_bytes=8 * 1024,
            block_cache_bytes=max(64 * 1024, int(per_tree * 0.6))),
        arrivals=arrivals,
        elasticity=elasticity,
    )


def default_stress_config(db: str, workload_name: str = "read_mostly",
                          replication: int = 3,
                          target_throughput: Optional[float] = None,
                          seed: int = 42) -> ExperimentConfig:
    """The paper's stress benchmark, scaled down (1 KB records)."""
    if workload_name not in STRESS_WORKLOADS:
        raise ValueError(f"unknown stress workload {workload_name!r}; "
                         f"choose from {sorted(STRESS_WORKLOADS)}")
    config = ExperimentConfig(
        db=db,
        workload=STRESS_WORKLOADS[workload_name],
        record_count=40_000,
        operation_count=6_000,
        n_threads=48,
        target_throughput=target_throughput,
        seed=seed,
        storage=scaled_stress_storage(40_000, 1000, 15),
    )
    return config.with_replication(replication)
