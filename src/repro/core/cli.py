"""``repro-bench``: regenerate the paper's tables and figures from the CLI.

Examples::

    repro-bench table1
    repro-bench fig1 --db cassandra --quick
    repro-bench fig2 --quick
    repro-bench fig3
    repro-bench surge --quick --db cassandra

Subcommands register declaratively in :data:`CAMPAIGNS`: one
:class:`Campaign` entry names the handler, the shared option groups it
takes (``"quick"``, ``"jobs"``, ``"dbs"``, ...) and any campaign-specific
:class:`Arg` specs — :func:`build_parser` materialises the whole table,
and :func:`main` applies each campaign's post-parse defaults.  Adding a
campaign is one ``cmd_*`` function plus one table entry; no subparser
plumbing to copy.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cluster.failure import FAULT_KINDS
from repro.core.report import (
    render_adaptive_sweep,
    render_adaptive_timeline,
    render_check_report,
    render_consistency_sweep,
    render_energy_sweep,
    render_failover_sweep,
    render_failover_timeline,
    render_geo_sweep,
    render_micro_sweep,
    render_progress,
    render_scale_sweep,
    render_stress_sweep,
    render_surge_sweep,
    render_table,
    render_tail_sweep,
)
from repro.core.perf import (
    QUICK_PERF_SCALE,
    PerfScale,
    compare_to_baseline,
    profile_stress_cell,
    render_perf_report,
    run_perf_suite,
)
from repro.core.runner import CellRunner, default_cache_dir
from repro.core.sweep import (
    ADAPTIVE_POLICIES,
    CHECK_CL_MODES,
    ELASTIC_SCENARIOS,
    GEO_CL_MODES,
    GEO_SCENARIOS,
    QUICK_ADAPTIVE_SCALE,
    QUICK_CHECK_SCALE,
    QUICK_ELASTIC_SCALE,
    QUICK_ENERGY_SCALE,
    QUICK_FAILOVER_SCALE,
    QUICK_GEO_SCALE,
    QUICK_SCALE,
    QUICK_SURGE_SCALE,
    QUICK_TAIL_SCALE,
    SCALE_MODES,
    SURGE_MODES,
    SURGE_SCENARIOS,
    TAIL_MODES,
    TAIL_SCENARIOS,
    AdaptiveScale,
    CheckScale,
    ElasticScale,
    EnergyScale,
    FailoverScale,
    GeoScale,
    SurgeScale,
    SweepScale,
    TailScale,
    adaptive_sweep,
    check_sweep,
    consistency_stress_sweep,
    energy_sweep,
    failover_sweep,
    geo_sweep,
    replication_micro_sweep,
    replication_stress_sweep,
    scale_sweep,
    surge_sweep,
    tail_sweep,
)
from repro.ycsb.workload import STRESS_WORKLOADS

__all__ = ["main"]


def _scale(args) -> SweepScale:
    return QUICK_SCALE if args.quick else SweepScale()


def _rfs(args) -> list[int]:
    return list(range(1, args.max_rf + 1))


def _runner(args) -> CellRunner:
    """The figure commands' cell runner: ``--jobs``/``--no-cache`` wired
    to :class:`CellRunner`, progress lines on stderr as cells finish."""
    completed = [0]

    def progress(event) -> None:
        completed[0] += 1
        print(render_progress(event, completed[0]), file=sys.stderr,
              flush=True)

    return CellRunner(jobs=args.jobs, cache=not args.no_cache,
                      progress=progress)


def _write_report(args, payload: dict) -> None:
    """Write the machine-readable sweep next to the rendered table."""
    if getattr(args, "report", None):
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.report}", file=sys.stderr)


def cmd_table1(_args) -> int:
    rows = []
    for spec in STRESS_WORKLOADS.values():
        mix = []
        if spec.read_proportion:
            mix.append(f"read {spec.read_proportion:.0%}")
        if spec.update_proportion:
            mix.append(f"update {spec.update_proportion:.0%}")
        if spec.insert_proportion:
            mix.append(f"insert {spec.insert_proportion:.0%}")
        if spec.scan_proportion:
            mix.append(f"scan {spec.scan_proportion:.0%}")
        if spec.read_modify_write_proportion:
            mix.append(f"rmw {spec.read_modify_write_proportion:.0%}")
        rows.append([spec.name, spec.typical_usage, ", ".join(mix),
                     spec.request_distribution])
    print(render_table(
        ["Workload", "Typical usage", "Operations", "Distribution"], rows,
        title="Table 1: workloads of the stress benchmarks"))
    return 0


def cmd_fig1(args) -> int:
    for db in args.dbs:
        sweep = replication_micro_sweep(db, _rfs(args), _scale(args),
                                        runner=_runner(args))
        print(render_micro_sweep(db, sweep))
        print()
    return 0


def cmd_fig2(args) -> int:
    for db in args.dbs:
        sweep = replication_stress_sweep(db, _rfs(args), _scale(args),
                                         runner=_runner(args))
        print(render_stress_sweep(db, sweep))
        print()
    return 0


def cmd_fig3(args) -> int:
    sweep = consistency_stress_sweep(_scale(args), runner=_runner(args))
    print(render_consistency_sweep(sweep))
    return 0


def cmd_failover(args) -> int:
    scale = QUICK_FAILOVER_SCALE if args.quick else FailoverScale()
    for db in args.dbs:
        sweep = failover_sweep(db, args.faults, scale, runner=_runner(args))
        print(render_failover_sweep(db, sweep))
        if args.timeline:
            for kind in sweep:
                for mode, summary in sweep[kind].items():
                    print()
                    print(render_failover_timeline(
                        f"{db}/{kind}/cl={mode}", summary["failover"]))
        print()
    return 0


def cmd_tail(args) -> int:
    scale = QUICK_TAIL_SCALE if args.quick else TailScale()
    modes = args.modes or list(TAIL_MODES)
    scenarios = args.scenarios or list(TAIL_SCENARIOS)
    for db in args.dbs:
        sweep = tail_sweep(db, scale, modes=modes, scenarios=scenarios,
                           runner=_runner(args))
        print(render_tail_sweep(db, sweep))
        print()
    return 0


def cmd_check(args) -> int:
    """Consistency oracle: explore seeds, print the verdict, and fail
    the process (``--strict``) on any violation the configured
    guarantee does not permit."""
    scale = QUICK_CHECK_SCALE if args.quick else CheckScale()
    sweeps: dict = {}
    unexpected = 0
    for db in args.dbs:
        sweep = check_sweep(db, mode=args.cl, seeds=args.seeds,
                            fault=args.fault, no_repair=args.no_repair,
                            scale=scale, runner=_runner(args))
        sweeps[db] = sweep
        unexpected += sweep["unexpected_violations"]
        print(render_check_report(db, sweep))
        print()
    _write_report(args, sweeps)
    if args.strict and unexpected:
        print(f"FAIL: {unexpected} unexpected violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_adaptive(args) -> int:
    """Adaptive-consistency campaign: per-request CL policies vs static
    baselines under a latency/staleness SLO, with the decision digest
    printed so CI can assert bit-identity across ``--jobs`` settings."""
    scale = QUICK_ADAPTIVE_SCALE if args.quick else AdaptiveScale()
    policies = args.policies or list(ADAPTIVE_POLICIES)
    sweep = adaptive_sweep(policies, scale, runner=_runner(args))
    print(render_adaptive_sweep(sweep))
    if args.timeline:
        for policy in sweep:
            for target, summary in sweep[policy].items():
                print()
                print(render_adaptive_timeline(
                    f"adaptive/{policy}/target={target:g}",
                    summary["decisions"]))
    if args.digests:
        print()
        for policy in sweep:
            for target, summary in sweep[policy].items():
                print(f"digest {policy} target={target:g} "
                      f"{summary['decisions']['digest']}")
    _write_report(args, sweep)
    return 0


def cmd_geo(args) -> int:
    """Geo-replication campaign: DC-aware CLs x WAN faults x client
    regions, with the cross-DC oracle verdict per run.  ``--strict``
    fails the process on any violation the configured guarantee forbids
    — for LOCAL_* that means divergence surviving heal + hint replay."""
    from repro.consistency.oracle import unexpected_violations
    scale = QUICK_GEO_SCALE if args.quick else GeoScale()
    modes = args.modes or list(GEO_CL_MODES)
    scenarios = args.scenarios or list(GEO_SCENARIOS)
    sweep = geo_sweep(modes, scenarios, scale, runner=_runner(args))
    print(render_geo_sweep(sweep))
    unexpected = 0
    for mode in sweep:
        for scenario, regions in sweep[mode].items():
            for region, summary in regions.items():
                count = unexpected_violations(summary["consistency"])
                if count:
                    print(f"unexpected violations: {mode}/{scenario}"
                          f"/{region}: {count}", file=sys.stderr)
                unexpected += count
    _write_report(args, sweep)
    if args.strict and unexpected:
        print(f"FAIL: {unexpected} unexpected violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_surge(args) -> int:
    """Flash-crowd survival campaign: open-loop arrivals x client-tier
    defense stacks, composed with the PR-3 server-side tail defenses.
    Cassandra cells run with the consistency oracle recording outside
    the cache-aside tier; ``--strict`` fails the process if any cell
    shows violations the weak CL does not already permit (i.e.
    convergence gaps — staleness bounded by the cache TTL is the
    campaign's *measured* trade, not a failure)."""
    from repro.consistency.oracle import unexpected_violations
    scale = QUICK_SURGE_SCALE if args.quick else SurgeScale()
    modes = args.modes or list(SURGE_MODES)
    scenarios = args.scenarios or list(SURGE_SCENARIOS)
    sweeps: dict = {}
    unexpected = 0
    for db in args.dbs:
        sweep = surge_sweep(db, scale, modes=modes, scenarios=scenarios,
                            runner=_runner(args))
        sweeps[db] = sweep
        print(render_surge_sweep(db, sweep))
        print()
        for scenario in sweep:
            for mode, summary in sweep[scenario].items():
                cons = summary.get("consistency")
                if cons is None:
                    continue
                count = unexpected_violations(cons)
                if count:
                    print(f"unexpected violations: {db}/{scenario}"
                          f"/{mode}: {count}", file=sys.stderr)
                unexpected += count
    _write_report(args, sweeps)
    if args.strict and unexpected:
        print(f"FAIL: {unexpected} unexpected violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_scale(args) -> int:
    """Elasticity campaign: scale the cluster while it serves.  Every
    cell records a Jepsen-style history across the topology change;
    ``--strict`` fails the process if any cell shows a violation the
    cell's consistency level does not already permit (the elasticity
    safety contract: no acknowledged write lost to a bootstrap,
    decommission or rebalance)."""
    from repro.consistency.oracle import unexpected_violations
    scale = QUICK_ELASTIC_SCALE if args.quick else ElasticScale()
    modes = args.modes or list(SCALE_MODES)
    scenarios = args.scenarios or list(ELASTIC_SCENARIOS)
    sweeps: dict = {}
    unexpected = 0
    for db in args.dbs:
        sweep = scale_sweep(db, scale, modes=modes, scenarios=scenarios,
                            runner=_runner(args))
        sweeps[db] = sweep
        print(render_scale_sweep(db, sweep))
        print()
        for scenario in sweep:
            for mode, summary in sweep[scenario].items():
                cons = summary.get("consistency")
                if cons is None:
                    continue
                count = unexpected_violations(cons)
                if count:
                    print(f"unexpected violations: {db}/{scenario}"
                          f"/{mode}: {count}", file=sys.stderr)
                unexpected += count
    _write_report(args, sweeps)
    if args.strict and unexpected:
        print(f"FAIL: {unexpected} unexpected violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_energy(args) -> int:
    """Energy/cost campaign: RF x CL round x power-management mode with
    joules/op and $/Mops per cell, oracle-checked.  ``--strict`` fails
    the process on any violation the cell's consistency level does not
    already permit — a power mode that saved joules by serving staler
    reads than the guarantee allows is a bug, not a saving."""
    from repro.consistency.oracle import unexpected_violations
    scale = QUICK_ENERGY_SCALE if args.quick else EnergyScale()
    sweeps: dict = {}
    unexpected = 0
    for db in args.dbs:
        sweep = energy_sweep(db, scale, runner=_runner(args))
        sweeps[db] = sweep
        print(render_energy_sweep(db, sweep))
        print()
        for rf in sweep:
            for cl, by_power in sweep[rf].items():
                for power, summary in by_power.items():
                    count = unexpected_violations(summary["consistency"])
                    if count:
                        print(f"unexpected violations: {db}/rf={rf}"
                              f"/{cl}/{power}: {count}", file=sys.stderr)
                    unexpected += count
    _write_report(args, sweeps)
    if args.strict and unexpected:
        print(f"FAIL: {unexpected} unexpected violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_perf(args) -> int:
    """Kernel perf trajectory: run the microbenchmark suite + calibrated
    stress cell, write ``BENCH_perf.json``, and (optionally) gate
    against a committed baseline."""
    def progress(name: str, record: dict) -> None:
        print(f"perf: {name}: {record['per_s']:,.0f} {record['unit']}/s "
              f"({record['wall_s']:.3f}s)", file=sys.stderr, flush=True)

    report = run_perf_suite(quick=args.quick, progress=progress)
    print(render_perf_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.profile:
        scale = QUICK_PERF_SCALE if args.quick else PerfScale()
        print()
        print(profile_stress_cell(scale))
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = compare_to_baseline(baseline=baseline, current=report,
                                       max_regression=args.max_regression)
        skips = [p for p in problems if p.startswith("skip:")]
        failures = [p for p in problems if not p.startswith("skip:")]
        for line in skips:
            print(f"perf gate: {line}", file=sys.stderr)
        if failures:
            print(f"perf gate: FAIL vs {args.baseline}:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"perf gate: ok vs {args.baseline} "
              f"(threshold {args.max_regression:.0%})", file=sys.stderr)
    return 0


# -- campaign registry -------------------------------------------------------

@dataclass(frozen=True)
class Arg:
    """One ``add_argument`` call, declaratively."""

    flags: tuple
    kwargs: dict


def _opt(*flags: str, **kwargs) -> Arg:
    return Arg(flags, kwargs)


#: Option groups shared across campaigns, by name.  A campaign lists the
#: group names it takes; campaign-specific options go in ``extra``.
COMMON_OPTIONS: dict[str, Arg] = {
    "quick": _opt("--quick", action="store_true",
                  help="small scale for fast runs"),
    "jobs": _opt("--jobs", type=int, default=1, metavar="N",
                 help="run campaign cells across N worker processes "
                      "(0 = one per CPU core; default 1 = serial)"),
    "no_cache": _opt("--no-cache", action="store_true",
                     help="recompute every cell instead of reusing the "
                          f"cell cache ({default_cache_dir()})"),
    "dbs": _opt("--db", dest="dbs", action="append",
                choices=["hbase", "cassandra"],
                help="database(s) to run (default: both)"),
    "strict": _opt("--strict", action="store_true",
                   help="exit 1 on any violation the configured "
                        "guarantee does not permit"),
    "report": _opt("--report", metavar="PATH",
                   help="also write the full JSON sweep to PATH"),
}


@dataclass(frozen=True)
class Campaign:
    """One ``repro-bench`` subcommand, declaratively.

    ``options`` names entries of :data:`COMMON_OPTIONS`; ``extra`` holds
    campaign-specific :class:`Arg` specs; ``post_parse`` (if set) runs in
    :func:`main` after parsing to fill context-dependent defaults (e.g.
    "no ``--db`` means both databases").
    """

    name: str
    help: str
    func: Callable
    options: tuple = ()
    extra: tuple = ()
    post_parse: Optional[Callable] = None


def _default_dbs(args) -> None:
    if args.dbs is None:
        args.dbs = ["hbase", "cassandra"]


def _default_faults(args) -> None:
    _default_dbs(args)
    if args.faults is None:
        args.faults = ["crash"]


_FIG_OPTIONS = ("quick", "jobs", "no_cache")
_FIG_EXTRA = (_opt("--max-rf", type=int, default=6,
                   help="sweep replication factors 1..N (default 6)"),)

CAMPAIGNS: tuple[Campaign, ...] = (
    Campaign("table1", "print Table 1", cmd_table1),
    Campaign("fig1", "micro benchmark for replication", cmd_fig1,
             options=_FIG_OPTIONS + ("dbs",), extra=_FIG_EXTRA,
             post_parse=_default_dbs),
    Campaign("fig2", "stress benchmark for replication", cmd_fig2,
             options=_FIG_OPTIONS + ("dbs",), extra=_FIG_EXTRA,
             post_parse=_default_dbs),
    Campaign("fig3", "stress benchmark for consistency", cmd_fig3,
             options=_FIG_OPTIONS, extra=_FIG_EXTRA),
    Campaign("failover",
             "fault-injection campaign (availability report)",
             cmd_failover, options=("quick", "dbs", "jobs", "no_cache"),
             extra=(
                 _opt("--fault", dest="faults", action="append",
                      choices=list(FAULT_KINDS),
                      help="fault kind(s) to inject (default: crash)"),
                 _opt("--timeline", action="store_true",
                      help="print per-second timelines with injection "
                           "markers"),
             ),
             post_parse=_default_faults),
    Campaign("tail",
             "tail-latency defense campaign (deadlines, hedged reads, "
             "bounded queues)",
             cmd_tail, options=("quick", "dbs", "jobs", "no_cache"),
             extra=(
                 _opt("--mode", dest="modes", action="append",
                      choices=list(TAIL_MODES),
                      help="defense stack(s) to compare (default: all)"),
                 _opt("--scenario", dest="scenarios", action="append",
                      choices=list(TAIL_SCENARIOS) + ["healthy"],
                      help="stress scenario(s) to run (default: both "
                           "stress scenarios; 'healthy' adds the "
                           "fault-free control cell)"),
             ),
             post_parse=_default_dbs),
    Campaign("check",
             "consistency oracle: explore seeds x fault schedules and "
             "verify the configured guarantees",
             cmd_check,
             options=("quick", "dbs", "strict", "report", "jobs",
                      "no_cache"),
             extra=(
                 _opt("--cl", default="QUORUM",
                      choices=sorted(CHECK_CL_MODES),
                      help="Cassandra consistency round (default QUORUM; "
                           "ignored for HBase)"),
                 _opt("--seeds", type=int, default=25, metavar="N",
                      help="explore seeds 0..N-1 (default 25)"),
                 _opt("--fault", choices=list(FAULT_KINDS),
                      help="fault-schedule template to inject per seed "
                           "(default: healthy runs)"),
                 _opt("--no-repair", action="store_true",
                      help="disable read repair so weak-CL staleness "
                           "stays observable"),
             ),
             post_parse=_default_dbs),
    Campaign("adaptive",
             "adaptive-consistency campaign: per-request CL policies "
             "under a latency/staleness SLO",
             cmd_adaptive, options=("quick", "report", "jobs", "no_cache"),
             extra=(
                 _opt("--policy", dest="policies", action="append",
                      choices=list(ADAPTIVE_POLICIES),
                      help="policy/policies to run (default: all)"),
                 _opt("--timeline", action="store_true",
                      help="print per-window CL decision timelines next "
                           "to the latency windows"),
                 _opt("--digests", action="store_true",
                      help="print each run's decision-log digest (the "
                           "determinism witness)"),
             )),
    Campaign("geo",
             "geo-replication campaign: DC-aware consistency levels "
             "under WAN faults and DC partitions",
             cmd_geo, options=("quick", "strict", "report", "jobs",
                               "no_cache"),
             extra=(
                 _opt("--mode", dest="modes", action="append",
                      choices=sorted(GEO_CL_MODES),
                      help="consistency mode(s) to compare "
                           "(default: all)"),
                 _opt("--scenario", dest="scenarios", action="append",
                      choices=list(GEO_SCENARIOS),
                      help="WAN scenario(s) to run (default: all)"),
             )),
    Campaign("surge",
             "flash-crowd survival campaign: open-loop arrivals vs "
             "client-tier defense stacks",
             cmd_surge,
             options=("quick", "dbs", "strict", "report", "jobs",
                      "no_cache"),
             extra=(
                 _opt("--mode", dest="modes", action="append",
                      choices=list(SURGE_MODES),
                      help="defense stack(s) to compare (default: all)"),
                 _opt("--scenario", dest="scenarios", action="append",
                      choices=list(SURGE_SCENARIOS),
                      help="arrival scenario(s) to run (default: all)"),
             ),
             post_parse=_default_dbs),
    Campaign("scale",
             "elasticity campaign: live scale-out/in while serving, "
             "oracle-checked across every topology change",
             cmd_scale,
             options=("quick", "dbs", "strict", "report", "jobs",
                      "no_cache"),
             extra=(
                 _opt("--mode", dest="modes", action="append",
                      choices=list(SCALE_MODES),
                      help="scale mode(s) to compare: static control, "
                           "manual schedule, autoscaler (default: all)"),
                 _opt("--scenario", dest="scenarios", action="append",
                      choices=list(ELASTIC_SCENARIOS),
                      help="arrival shape(s) to run (default: all)"),
             ),
             post_parse=_default_dbs),
    Campaign("energy",
             "energy/cost campaign: joules per op and dollars per Mops "
             "across RF x CL x power-management modes",
             cmd_energy,
             options=("quick", "dbs", "strict", "report", "jobs",
                      "no_cache"),
             post_parse=_default_dbs),
    Campaign("perf",
             "kernel microbenchmarks + calibrated stress cell (the perf "
             "trajectory artifact)",
             cmd_perf, options=("quick",),
             extra=(
                 _opt("--out", metavar="PATH", default="BENCH_perf.json",
                      help="write the JSON report to PATH (default "
                           "BENCH_perf.json; '' disables)"),
                 _opt("--baseline", metavar="PATH",
                      help="compare against a baseline BENCH_perf.json "
                           "and exit 1 on regression"),
                 _opt("--max-regression", type=float, default=0.25,
                      metavar="FRAC",
                      help="tolerated fractional throughput drop vs the "
                           "baseline (default 0.25)"),
                 _opt("--profile", action="store_true",
                      help="also cProfile the stress cell and print the "
                           "hottest functions"),
             )),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures")
    sub = parser.add_subparsers(dest="command", required=True)
    for campaign in CAMPAIGNS:
        p = sub.add_parser(campaign.name, help=campaign.help)
        for option in campaign.options:
            spec = COMMON_OPTIONS[option]
            p.add_argument(*spec.flags, **spec.kwargs)
        for spec in campaign.extra:
            p.add_argument(*spec.flags, **spec.kwargs)
        p.set_defaults(func=campaign.func)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    for campaign in CAMPAIGNS:
        if campaign.name == args.command and campaign.post_parse is not None:
            campaign.post_parse(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
