"""``repro-bench``: regenerate the paper's tables and figures from the CLI.

Examples::

    repro-bench table1
    repro-bench fig1 --db cassandra --quick
    repro-bench fig2 --quick
    repro-bench fig3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.cluster.failure import FAULT_KINDS
from repro.core.report import (
    render_adaptive_sweep,
    render_adaptive_timeline,
    render_check_report,
    render_consistency_sweep,
    render_failover_sweep,
    render_failover_timeline,
    render_geo_sweep,
    render_micro_sweep,
    render_progress,
    render_stress_sweep,
    render_table,
    render_tail_sweep,
)
from repro.core.perf import (
    QUICK_PERF_SCALE,
    PerfScale,
    compare_to_baseline,
    profile_stress_cell,
    render_perf_report,
    run_perf_suite,
)
from repro.core.runner import CellRunner, default_cache_dir
from repro.core.sweep import (
    ADAPTIVE_POLICIES,
    CHECK_CL_MODES,
    GEO_CL_MODES,
    GEO_SCENARIOS,
    QUICK_ADAPTIVE_SCALE,
    QUICK_CHECK_SCALE,
    QUICK_FAILOVER_SCALE,
    QUICK_GEO_SCALE,
    QUICK_SCALE,
    QUICK_TAIL_SCALE,
    TAIL_MODES,
    TAIL_SCENARIOS,
    AdaptiveScale,
    CheckScale,
    FailoverScale,
    GeoScale,
    SweepScale,
    TailScale,
    adaptive_sweep,
    check_sweep,
    consistency_stress_sweep,
    failover_sweep,
    geo_sweep,
    replication_micro_sweep,
    replication_stress_sweep,
    tail_sweep,
)
from repro.ycsb.workload import STRESS_WORKLOADS

__all__ = ["main"]


def _scale(args) -> SweepScale:
    return QUICK_SCALE if args.quick else SweepScale()


def _rfs(args) -> list[int]:
    return list(range(1, args.max_rf + 1))


def _runner(args) -> CellRunner:
    """The figure commands' cell runner: ``--jobs``/``--no-cache`` wired
    to :class:`CellRunner`, progress lines on stderr as cells finish."""
    completed = [0]

    def progress(event) -> None:
        completed[0] += 1
        print(render_progress(event, completed[0]), file=sys.stderr,
              flush=True)

    return CellRunner(jobs=args.jobs, cache=not args.no_cache,
                      progress=progress)


def cmd_table1(_args) -> int:
    rows = []
    for spec in STRESS_WORKLOADS.values():
        mix = []
        if spec.read_proportion:
            mix.append(f"read {spec.read_proportion:.0%}")
        if spec.update_proportion:
            mix.append(f"update {spec.update_proportion:.0%}")
        if spec.insert_proportion:
            mix.append(f"insert {spec.insert_proportion:.0%}")
        if spec.scan_proportion:
            mix.append(f"scan {spec.scan_proportion:.0%}")
        if spec.read_modify_write_proportion:
            mix.append(f"rmw {spec.read_modify_write_proportion:.0%}")
        rows.append([spec.name, spec.typical_usage, ", ".join(mix),
                     spec.request_distribution])
    print(render_table(
        ["Workload", "Typical usage", "Operations", "Distribution"], rows,
        title="Table 1: workloads of the stress benchmarks"))
    return 0


def cmd_fig1(args) -> int:
    for db in args.dbs:
        sweep = replication_micro_sweep(db, _rfs(args), _scale(args),
                                        runner=_runner(args))
        print(render_micro_sweep(db, sweep))
        print()
    return 0


def cmd_fig2(args) -> int:
    for db in args.dbs:
        sweep = replication_stress_sweep(db, _rfs(args), _scale(args),
                                         runner=_runner(args))
        print(render_stress_sweep(db, sweep))
        print()
    return 0


def cmd_fig3(args) -> int:
    sweep = consistency_stress_sweep(_scale(args), runner=_runner(args))
    print(render_consistency_sweep(sweep))
    return 0


def cmd_failover(args) -> int:
    scale = QUICK_FAILOVER_SCALE if args.quick else FailoverScale()
    for db in args.dbs:
        sweep = failover_sweep(db, args.faults, scale, runner=_runner(args))
        print(render_failover_sweep(db, sweep))
        if args.timeline:
            for kind in sweep:
                for mode, summary in sweep[kind].items():
                    print()
                    print(render_failover_timeline(
                        f"{db}/{kind}/cl={mode}", summary["failover"]))
        print()
    return 0


def cmd_tail(args) -> int:
    scale = QUICK_TAIL_SCALE if args.quick else TailScale()
    modes = args.modes or list(TAIL_MODES)
    scenarios = args.scenarios or list(TAIL_SCENARIOS)
    for db in args.dbs:
        sweep = tail_sweep(db, scale, modes=modes, scenarios=scenarios,
                           runner=_runner(args))
        print(render_tail_sweep(db, sweep))
        print()
    return 0


def cmd_check(args) -> int:
    """Consistency oracle: explore seeds, print the verdict, and fail
    the process (``--strict``) on any violation the configured
    guarantee does not permit."""
    scale = QUICK_CHECK_SCALE if args.quick else CheckScale()
    sweeps: dict = {}
    unexpected = 0
    for db in args.dbs:
        sweep = check_sweep(db, mode=args.cl, seeds=args.seeds,
                            fault=args.fault, no_repair=args.no_repair,
                            scale=scale, runner=_runner(args))
        sweeps[db] = sweep
        unexpected += sweep["unexpected_violations"]
        print(render_check_report(db, sweep))
        print()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(sweeps, fh, indent=2, sort_keys=True)
        print(f"wrote {args.report}", file=sys.stderr)
    if args.strict and unexpected:
        print(f"FAIL: {unexpected} unexpected violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_adaptive(args) -> int:
    """Adaptive-consistency campaign: per-request CL policies vs static
    baselines under a latency/staleness SLO, with the decision digest
    printed so CI can assert bit-identity across ``--jobs`` settings."""
    scale = QUICK_ADAPTIVE_SCALE if args.quick else AdaptiveScale()
    policies = args.policies or list(ADAPTIVE_POLICIES)
    sweep = adaptive_sweep(policies, scale, runner=_runner(args))
    print(render_adaptive_sweep(sweep))
    if args.timeline:
        for policy in sweep:
            for target, summary in sweep[policy].items():
                print()
                print(render_adaptive_timeline(
                    f"adaptive/{policy}/target={target:g}",
                    summary["decisions"]))
    if args.digests:
        print()
        for policy in sweep:
            for target, summary in sweep[policy].items():
                print(f"digest {policy} target={target:g} "
                      f"{summary['decisions']['digest']}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(sweep, fh, indent=2, sort_keys=True)
        print(f"wrote {args.report}", file=sys.stderr)
    return 0


def cmd_geo(args) -> int:
    """Geo-replication campaign: DC-aware CLs x WAN faults x client
    regions, with the cross-DC oracle verdict per run.  ``--strict``
    fails the process on any violation the configured guarantee forbids
    — for LOCAL_* that means divergence surviving heal + hint replay."""
    from repro.consistency.oracle import unexpected_violations
    scale = QUICK_GEO_SCALE if args.quick else GeoScale()
    modes = args.modes or list(GEO_CL_MODES)
    scenarios = args.scenarios or list(GEO_SCENARIOS)
    sweep = geo_sweep(modes, scenarios, scale, runner=_runner(args))
    print(render_geo_sweep(sweep))
    unexpected = 0
    for mode in sweep:
        for scenario, regions in sweep[mode].items():
            for region, summary in regions.items():
                count = unexpected_violations(summary["consistency"])
                if count:
                    print(f"unexpected violations: {mode}/{scenario}"
                          f"/{region}: {count}", file=sys.stderr)
                unexpected += count
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(sweep, fh, indent=2, sort_keys=True)
        print(f"wrote {args.report}", file=sys.stderr)
    if args.strict and unexpected:
        print(f"FAIL: {unexpected} unexpected violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_perf(args) -> int:
    """Kernel perf trajectory: run the microbenchmark suite + calibrated
    stress cell, write ``BENCH_perf.json``, and (optionally) gate
    against a committed baseline."""
    def progress(name: str, record: dict) -> None:
        print(f"perf: {name}: {record['per_s']:,.0f} {record['unit']}/s "
              f"({record['wall_s']:.3f}s)", file=sys.stderr, flush=True)

    report = run_perf_suite(quick=args.quick, progress=progress)
    print(render_perf_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.profile:
        scale = QUICK_PERF_SCALE if args.quick else PerfScale()
        print()
        print(profile_stress_cell(scale))
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = compare_to_baseline(baseline=baseline, current=report,
                                       max_regression=args.max_regression)
        skips = [p for p in problems if p.startswith("skip:")]
        failures = [p for p in problems if not p.startswith("skip:")]
        for line in skips:
            print(f"perf gate: {line}", file=sys.stderr)
        if failures:
            print(f"perf gate: FAIL vs {args.baseline}:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"perf gate: ok vs {args.baseline} "
              f"(threshold {args.max_regression:.0%})", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures")
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="print Table 1")
    p_table1.set_defaults(func=cmd_table1)

    for name, func, help_text in [
        ("fig1", cmd_fig1, "micro benchmark for replication"),
        ("fig2", cmd_fig2, "stress benchmark for replication"),
        ("fig3", cmd_fig3, "stress benchmark for consistency"),
    ]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--quick", action="store_true",
                       help="small scale for fast runs")
        p.add_argument("--max-rf", type=int, default=6,
                       help="sweep replication factors 1..N (default 6)")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run sweep cells across N worker processes "
                            "(0 = one per CPU core; default 1 = serial)")
        p.add_argument("--no-cache", action="store_true",
                       help="recompute every cell instead of reusing the "
                            f"cell cache ({default_cache_dir()})")
        if name in ("fig1", "fig2"):
            p.add_argument("--db", dest="dbs", action="append",
                           choices=["hbase", "cassandra"],
                           help="database(s) to run (default: both)")
        p.set_defaults(func=func)

    p_failover = sub.add_parser(
        "failover", help="fault-injection campaign (availability report)")
    p_failover.add_argument("--quick", action="store_true",
                            help="small scale for fast runs")
    p_failover.add_argument("--db", dest="dbs", action="append",
                            choices=["hbase", "cassandra"],
                            help="database(s) to run (default: both)")
    p_failover.add_argument("--fault", dest="faults", action="append",
                            choices=list(FAULT_KINDS),
                            help="fault kind(s) to inject (default: crash)")
    p_failover.add_argument("--timeline", action="store_true",
                            help="print per-second timelines with "
                                 "injection markers")
    p_failover.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="run campaign cells across N worker "
                                 "processes (0 = one per CPU core)")
    p_failover.add_argument("--no-cache", action="store_true",
                            help="recompute every cell instead of reusing "
                                 f"the cell cache ({default_cache_dir()})")
    p_failover.set_defaults(func=cmd_failover)

    p_tail = sub.add_parser(
        "tail", help="tail-latency defense campaign (deadlines, hedged "
                     "reads, bounded queues)")
    p_tail.add_argument("--quick", action="store_true",
                        help="small scale for fast runs")
    p_tail.add_argument("--db", dest="dbs", action="append",
                        choices=["hbase", "cassandra"],
                        help="database(s) to run (default: both)")
    p_tail.add_argument("--mode", dest="modes", action="append",
                        choices=list(TAIL_MODES),
                        help="defense stack(s) to compare (default: all)")
    p_tail.add_argument("--scenario", dest="scenarios", action="append",
                        choices=list(TAIL_SCENARIOS) + ["healthy"],
                        help="stress scenario(s) to run (default: both "
                             "stress scenarios; 'healthy' adds the "
                             "fault-free control cell)")
    p_tail.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run campaign cells across N worker processes "
                             "(0 = one per CPU core)")
    p_tail.add_argument("--no-cache", action="store_true",
                        help="recompute every cell instead of reusing "
                             f"the cell cache ({default_cache_dir()})")
    p_tail.set_defaults(func=cmd_tail)

    p_check = sub.add_parser(
        "check", help="consistency oracle: explore seeds x fault "
                      "schedules and verify the configured guarantees")
    p_check.add_argument("--quick", action="store_true",
                         help="small scale for fast runs (CI smoke)")
    p_check.add_argument("--db", dest="dbs", action="append",
                         choices=["hbase", "cassandra"],
                         help="database(s) to check (default: both)")
    p_check.add_argument("--cl", default="QUORUM",
                         choices=sorted(CHECK_CL_MODES),
                         help="Cassandra consistency round (default QUORUM; "
                              "ignored for HBase)")
    p_check.add_argument("--seeds", type=int, default=25, metavar="N",
                         help="explore seeds 0..N-1 (default 25)")
    p_check.add_argument("--fault", choices=list(FAULT_KINDS),
                         help="fault-schedule template to inject per seed "
                              "(default: healthy runs)")
    p_check.add_argument("--no-repair", action="store_true",
                         help="disable read repair so weak-CL staleness "
                              "stays observable")
    p_check.add_argument("--strict", action="store_true",
                         help="exit 1 on any violation the configured "
                              "guarantee does not permit")
    p_check.add_argument("--report", metavar="PATH",
                         help="also write the full JSON verdict to PATH")
    p_check.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="run check cells across N worker processes "
                              "(0 = one per CPU core)")
    p_check.add_argument("--no-cache", action="store_true",
                         help="recompute every cell instead of reusing "
                              f"the cell cache ({default_cache_dir()})")
    p_check.set_defaults(func=cmd_check)

    p_adaptive = sub.add_parser(
        "adaptive", help="adaptive-consistency campaign: per-request CL "
                         "policies under a latency/staleness SLO")
    p_adaptive.add_argument("--quick", action="store_true",
                            help="single calibrated load point (CI smoke)")
    p_adaptive.add_argument("--policy", dest="policies", action="append",
                            choices=list(ADAPTIVE_POLICIES),
                            help="policy/policies to run (default: all)")
    p_adaptive.add_argument("--timeline", action="store_true",
                            help="print per-window CL decision timelines "
                                 "next to the latency windows")
    p_adaptive.add_argument("--digests", action="store_true",
                            help="print each run's decision-log digest "
                                 "(the determinism witness)")
    p_adaptive.add_argument("--report", metavar="PATH",
                            help="also write the full JSON sweep to PATH")
    p_adaptive.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="run campaign cells across N worker "
                                 "processes (0 = one per CPU core)")
    p_adaptive.add_argument("--no-cache", action="store_true",
                            help="recompute every cell instead of reusing "
                                 f"the cell cache ({default_cache_dir()})")
    p_adaptive.set_defaults(func=cmd_adaptive)

    p_geo = sub.add_parser(
        "geo", help="geo-replication campaign: DC-aware consistency "
                    "levels under WAN faults and DC partitions")
    p_geo.add_argument("--quick", action="store_true",
                       help="small scale for fast runs (CI smoke)")
    p_geo.add_argument("--mode", dest="modes", action="append",
                       choices=sorted(GEO_CL_MODES),
                       help="consistency mode(s) to compare (default: all)")
    p_geo.add_argument("--scenario", dest="scenarios", action="append",
                       choices=list(GEO_SCENARIOS),
                       help="WAN scenario(s) to run (default: all)")
    p_geo.add_argument("--strict", action="store_true",
                       help="exit 1 on any violation the configured "
                            "guarantee does not permit")
    p_geo.add_argument("--report", metavar="PATH",
                       help="also write the full JSON sweep to PATH")
    p_geo.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run campaign cells across N worker processes "
                            "(0 = one per CPU core)")
    p_geo.add_argument("--no-cache", action="store_true",
                       help="recompute every cell instead of reusing "
                            f"the cell cache ({default_cache_dir()})")
    p_geo.set_defaults(func=cmd_geo)

    p_perf = sub.add_parser(
        "perf", help="kernel microbenchmarks + calibrated stress cell "
                     "(the perf trajectory artifact)")
    p_perf.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke)")
    p_perf.add_argument("--out", metavar="PATH", default="BENCH_perf.json",
                        help="write the JSON report to PATH "
                             "(default BENCH_perf.json; '' disables)")
    p_perf.add_argument("--baseline", metavar="PATH",
                        help="compare against a baseline BENCH_perf.json "
                             "and exit 1 on regression")
    p_perf.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRAC",
                        help="tolerated fractional throughput drop vs the "
                             "baseline (default 0.25)")
    p_perf.add_argument("--profile", action="store_true",
                        help="also cProfile the stress cell and print the "
                             "hottest functions")
    p_perf.set_defaults(func=cmd_perf)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if (getattr(args, "dbs", None) is None
            and args.command in ("fig1", "fig2", "failover", "tail",
                                 "check")):
        args.dbs = ["hbase", "cassandra"]
    if getattr(args, "faults", None) is None and args.command == "failover":
        args.faults = ["crash"]
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
