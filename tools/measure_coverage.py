"""Measure line coverage of ``src/repro`` across the tier-1 suite.

A dependency-free stand-in for ``coverage.py``: a ``sys.settrace`` hook
records executed lines for files under ``src/repro`` only (frames from
other files are not line-traced), and executable lines come from the
compiled code objects' ``co_lines`` tables — the same definition
``coverage.py`` uses for statement coverage, minus its AST-level
exclusions, so this tool reports a slightly *lower* percentage than
``pytest-cov`` does on the same run.  CI runs the real ``pytest-cov``
(installed there); this script exists to measure the floor in
environments without it:

    python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro")

executed: dict[str, set[int]] = {}


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC):
        return None
    lines = executed.setdefault(filename, set())

    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    if event == "line":
        lines.add(frame.f_lineno)
    return local


def executable_lines(path: str) -> set[int]:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    lines: set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # A module's docstring/constant-fold line table includes line 1 even
    # when it is a docstring; keep it — the module body does execute it.
    return lines


def main() -> int:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    import pytest

    threading.settrace(_trace)
    sys.settrace(_trace)
    try:
        exit_code = pytest.main(["-q", *sys.argv[1:]])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage below is incomplete")

    total_executable = 0
    total_executed = 0
    rows = []
    for dirpath, _dirnames, filenames in os.walk(SRC):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            known = executable_lines(path)
            hit = executed.get(path, set()) & known
            total_executable += len(known)
            total_executed += len(hit)
            pct = 100.0 * len(hit) / len(known) if known else 100.0
            rows.append((pct, os.path.relpath(path, ROOT), len(hit),
                         len(known)))
    rows.sort()
    for pct, rel, hit, known in rows:
        print(f"{pct:6.1f}%  {hit:5d}/{known:<5d}  {rel}")
    overall = 100.0 * total_executed / max(total_executable, 1)
    print(f"TOTAL {overall:.2f}% ({total_executed}/{total_executable} lines)")
    return 0 if exit_code == 0 else int(exit_code)


if __name__ == "__main__":
    sys.exit(main())
