"""Ablation — read repair's contribution to Cassandra's read latency.

The paper attributes Cassandra's read-latency climb beyond RF = 3 to the
read-repair process (§4.1).  This ablation isolates that mechanism by
sweeping ``read_repair_chance`` on the same micro read test at a high
replication factor:

- ``0.0``  — repair disabled: reads touch exactly one replica;
- ``0.1``  — the Cassandra 2.0 default the paper cites;
- ``1.0``  — every read fans digests out to all replicas.

Each chance-triggered read adds RF-1 background digest reads (each a full
local read on another replica) plus reconciliation work, so mean read
latency must grow monotonically with the chance — and the growth *is*
the read-repair burden of finding F4.
"""

from dataclasses import replace

from conftest import run_once

from repro.core.config import default_micro_config
from repro.core.experiment import ExperimentSession
from repro.core.report import render_table
from repro.ycsb.workload import MICRO_WORKLOADS

RF = 5
CHANCES = (0.0, 0.1, 1.0)


def run_read_cell(bench_scale, chance):
    config = default_micro_config("cassandra", "read", replication=RF,
                                  seed=bench_scale.sweep.seed)
    config = replace(
        config,
        record_count=bench_scale.sweep.record_count,
        operation_count=bench_scale.sweep.operation_count,
        n_nodes=bench_scale.sweep.n_nodes,
        cassandra=replace(config.cassandra, read_repair_chance=chance))
    session = ExperimentSession(config)
    session.load()
    session.warm(operations=bench_scale.sweep.operation_count // 2,
                 workload=MICRO_WORKLOADS["read"])
    # Interleave updates so reads race replica propagation (repairs real).
    session.run_cell(workload=MICRO_WORKLOADS["update"],
                     operation_count=bench_scale.sweep.operation_count // 2)
    result = session.run_cell(workload=MICRO_WORKLOADS["read"])
    stats = session.db_stats()["cassandra"]
    return result.overall().mean_ms, stats


def test_ablation_read_repair(benchmark, bench_scale):
    def run_all():
        return {chance: run_read_cell(bench_scale, chance)
                for chance in CHANCES}

    results = run_once(benchmark, run_all)
    rows = [[f"chance {chance}", mean_ms, stats["read_repairs"],
             stats["repair_mutations"]]
            for chance, (mean_ms, stats) in results.items()]
    print()
    print(render_table(
        ["mode", "read mean ms", "repairs", "repair writes"], rows,
        title=f"Ablation: read repair at RF={RF}, consistency ONE"))

    off_ms = results[0.0][0]
    default_ms = results[0.1][0]
    always_ms = results[1.0][0]
    # Repair involvement of other replicas costs measurable latency, and
    # the cost grows with how often it fires.
    assert default_ms > off_ms * 1.02
    assert always_ms > default_ms
    # With repair off, the machinery must never have run.
    assert results[0.0][1]["read_repairs"] == 0
    assert results[0.0][1]["repair_mutations"] == 0
