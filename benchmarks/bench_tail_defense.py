"""Tail-latency defense campaign (this repo's addition, cf. EXPERIMENTS.md).

Latency distribution up to p99.9 per defense stack ({none, deadline,
hedge}) under one gray-failed replica and under uniform overload.

Shape assertions:

- Hedging collapses the gray-failure read p99 (>= 2x) at an untouched
  median — it routes around the one slow replica.
- Bounded queues turn overload into explicit ``Overloaded`` sheds
  instead of unbounded latency growth.
- HBase's single-owner regions leave hedging nothing to route around;
  its slow-disk tail is defended by deadlines, not speculation.
"""

import pytest
from conftest import run_once

from repro.core.report import render_tail_sweep
from repro.core.sweep import QUICK_TAIL_SCALE, TailScale, tail_sweep


def _tail_scale(bench_scale):
    return QUICK_TAIL_SCALE if bench_scale.name == "quick" else TailScale()


@pytest.fixture(scope="module")
def sweeps(bench_scale):
    return {}


def _run(db, bench_scale, bench_runner, benchmark, sweeps):
    result = run_once(benchmark, lambda: tail_sweep(
        db, _tail_scale(bench_scale), runner=bench_runner))
    sweeps[db] = result
    print()
    print(render_tail_sweep(db, result))
    return result


def test_tail_cassandra(benchmark, bench_scale, bench_runner, sweeps):
    sweep = _run("cassandra", bench_scale, bench_runner, benchmark, sweeps)
    slow = sweep["slow_replica"]
    # Hedging routes around the slow replica: p99 at most half the
    # undefended p99, median within 10%.
    assert slow["hedge"]["p99_ms"] <= 0.5 * slow["none"]["p99_ms"]
    assert slow["hedge"]["p50_ms"] < 1.10 * slow["none"]["p50_ms"]
    # Overload + bounded queues: explicit sheds, bounded p99.
    overload = sweep["overload"]
    assert overload["deadline"]["errors_by_type"].get("Overloaded", 0) > 0
    assert overload["deadline"]["p99_ms"] < overload["none"]["p99_ms"]


def test_tail_hbase(benchmark, bench_scale, bench_runner, sweeps):
    sweep = _run("hbase", bench_scale, bench_runner, benchmark, sweeps)
    slow = sweep["slow_replica"]
    # Deadlines cap the single-owner tail (no alternate replica to hedge
    # to): the defended p99 sits well under the undefended one, paid for
    # with explicit DeadlineExceeded errors.
    assert slow["deadline"]["p99_ms"] < 0.7 * slow["none"]["p99_ms"]
    assert slow["deadline"]["errors_by_type"].get("DeadlineExceeded", 0) > 0
