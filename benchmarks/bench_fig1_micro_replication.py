"""Figure 1 — micro benchmark for replication (paper §4.1).

Atomic update/read/insert/scan latency vs replication factor for HBase
and Cassandra, on an unsaturated testbed with tiny records.

Shape assertions (the paper's findings):

- F1  HBase read/scan latency is flat in RF.
- F2  HBase insert/update latency shows no dramatic change (in-memory
      pipeline replication).
- F3  Cassandra insert/update latency is flat in RF (consistency ONE).
- F4  Cassandra read/scan latency climbs steeply with RF (read-repair
      fan-out + per-node data growth).
"""

import pytest
from conftest import run_once

from repro.core.report import render_micro_sweep
from repro.core.sweep import replication_micro_sweep


def curve(sweep, op):
    return [sweep[rf][op]["mean_ms"] for rf in sorted(sweep)]


@pytest.fixture(scope="module")
def sweeps(bench_scale):
    return {}


def _run(db, bench_scale, bench_runner, benchmark, sweeps):
    result = run_once(benchmark, lambda: replication_micro_sweep(
        db, bench_scale.replication_factors, bench_scale.sweep,
        runner=bench_runner))
    sweeps[db] = result
    print()
    print(render_micro_sweep(db, result))
    return result


def test_fig1_hbase(benchmark, bench_scale, bench_runner, sweeps):
    sweep = _run("hbase", bench_scale, bench_runner, benchmark, sweeps)
    reads = curve(sweep, "read")
    scans = curve(sweep, "scan")
    updates = curve(sweep, "update")
    # F1: flat reads/scans — max within 60% of min (noise allowance).
    assert max(reads) < min(reads) * 1.6
    assert max(scans) < min(scans) * 1.6
    # F2: writes stay in-memory cheap; even at RF=max the added latency
    # is bounded by a few pipeline hops (< 1 ms), no knee anywhere.
    assert updates[-1] - updates[0] < 1.0


def test_fig1_cassandra(benchmark, bench_scale, bench_runner, sweeps):
    sweep = _run("cassandra", bench_scale, bench_runner, benchmark, sweeps)
    updates = curve(sweep, "update")
    inserts = curve(sweep, "insert")
    reads = curve(sweep, "read")
    # F3: flat writes at consistency ONE.
    assert max(updates) < min(updates) * 1.5
    assert max(inserts) < min(inserts) * 1.5
    # F4: reads climb steeply from RF=1 to RF=max.
    assert reads[-1] > reads[0] * 2.0


def test_fig1_cross_db_contrast(bench_scale, sweeps):
    """The headline contrast: Cassandra's read curve grows, HBase's does
    not (single-owner reads)."""
    if "hbase" not in sweeps or "cassandra" not in sweeps:
        pytest.skip("per-db sweeps did not run")
    hbase_growth = (curve(sweeps["hbase"], "read")[-1]
                    / curve(sweeps["hbase"], "read")[0])
    cassandra_growth = (curve(sweeps["cassandra"], "read")[-1]
                        / curve(sweeps["cassandra"], "read")[0])
    assert cassandra_growth > hbase_growth * 1.5
