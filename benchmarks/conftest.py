"""Shared scale handling for the benchmark harness.

Every bench honours ``REPRO_BENCH_SCALE``:

- ``quick``    — small clusters/populations; minutes for the whole suite;
  shapes still visible but noisy.
- ``standard`` (default) — the scaled-down defaults from DESIGN.md §6;
  replication sweeps cover RF {1, 2, 3, 6} (endpoints + the paper's knee).
- ``full``     — RF 1..6 and more offered-load points, like the paper's
  six rounds; expect a long run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.core.runner import CellRunner
from repro.core.sweep import QUICK_SCALE, SweepScale


@dataclass(frozen=True)
class BenchScale:
    sweep: SweepScale
    replication_factors: tuple
    name: str


_SCALES = {
    "quick": BenchScale(
        sweep=QUICK_SCALE,
        replication_factors=(1, 3, 6),
        name="quick"),
    "standard": BenchScale(
        sweep=SweepScale(record_count=12_000, operation_count=2_500,
                         n_threads=48, n_nodes=16,
                         targets=(3_000.0, 9_000.0, 16_000.0, None)),
        replication_factors=(1, 2, 3, 6),
        name="standard"),
    "full": BenchScale(
        sweep=SweepScale(record_count=30_000, operation_count=4_000,
                         n_threads=48, n_nodes=16,
                         targets=(2_000.0, 6_000.0, 12_000.0, 20_000.0, None)),
        replication_factors=(1, 2, 3, 4, 5, 6),
        name="full"),
}


@pytest.fixture(scope="session")
def bench_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "standard")
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return _SCALES[name]


@pytest.fixture(scope="session")
def bench_runner() -> CellRunner:
    """Cell runner for the figure sweeps, configured by environment:

    - ``REPRO_BENCH_JOBS``  — worker processes for sweep cells
      (``0`` = one per CPU core; default ``1`` = serial).
    - ``REPRO_BENCH_CACHE`` — ``1`` to reuse the on-disk cell cache
      (default off: a cached sweep is not a timing measurement).

    Results are bit-identical across all settings; only wall-clock
    changes, so shape assertions hold regardless.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = os.environ.get("REPRO_BENCH_CACHE", "").lower() in ("1", "true",
                                                                "yes")
    return CellRunner(jobs=jobs, cache=cache)


def run_once(benchmark, func):
    """Execute ``func`` exactly once under pytest-benchmark timing.

    The sweeps are deterministic simulations — repeating them only
    re-measures the host CPU — so one round is the honest measurement.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
