"""Table 1 — workloads of the stress benchmarks for replication/consistency.

Regenerates the paper's Table 1 from the workload definitions and
benchmarks the workload engine itself (key-choice throughput), since every
other benchmark's offered load rides on it.
"""

import random

from conftest import run_once

from repro.core.report import render_table
from repro.ycsb.workload import STRESS_WORKLOADS, Workload


def render_table1() -> str:
    rows = []
    for spec in STRESS_WORKLOADS.values():
        mix = []
        if spec.read_proportion:
            mix.append(f"read/update ratio: {spec.read_proportion:.0%}/"
                       f"{spec.update_proportion:.0%}"
                       if spec.update_proportion else
                       f"read {spec.read_proportion:.0%}")
        if spec.insert_proportion:
            mix.append(f"insert {spec.insert_proportion:.0%}")
        if spec.scan_proportion:
            mix.append(f"scan {spec.scan_proportion:.0%}")
        if spec.read_modify_write_proportion:
            mix.append(f"rmw {spec.read_modify_write_proportion:.0%}")
        rows.append([spec.name, spec.typical_usage, ", ".join(mix),
                     spec.request_distribution.capitalize()])
    return render_table(
        ["Workload", "Typical usage", "Operations", "Records distribution"],
        rows, title="Table 1: workloads of the stress benchmarks")


def test_table1_definitions(benchmark):
    table = run_once(benchmark, render_table1)
    print()
    print(table)
    # Pin the five rows and their distributions.
    assert "read_mostly" in table and "Zipfian" in table
    assert "read_latest" in table and "Latest" in table
    assert table.count("\n") == 7  # title + header + rule + 5 workloads


def test_workload_engine_throughput(benchmark):
    """Key-choice throughput of the workload engine (pure Python)."""
    workload = Workload(STRESS_WORKLOADS["read_mostly"], 100_000,
                        random.Random(1))

    def draw_many():
        for _ in range(10_000):
            workload.next_operation()
            workload.next_read_key()
        return True

    assert benchmark(draw_many)
