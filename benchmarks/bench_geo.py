"""Geo-distributed benchmark — the paper's §6 future-work testbed.

The paper closes by calling for a geo-distributed testbed for "geo-read
latency test, partition test and availability test".  This bench runs the
geo-read latency experiment as a regenerable table: a client in Western
Europe against a ring spanning three regions (NetworkTopologyStrategy
2+2+2), comparing datacenter-local and global consistency levels.

Shape assertions:

- LOCAL_QUORUM operations never pay WAN latency;
- QUORUM and ALL block on at least one trans-continental round trip;
- cutting off a remote datacenter leaves LOCAL_QUORUM available and
  makes ALL unavailable.
"""

from conftest import run_once

from repro.cassandra import (
    CassandraCluster,
    CassandraSession,
    CassandraSpec,
    ConsistencyLevel,
)
from repro.cassandra.consistency import UnavailableError
from repro.cluster.geo import GeoCluster, GeoSpec
from repro.core.report import render_table
from repro.keyspace import key_for_index
from repro.sim import Environment, RngRegistry

PROBES = 150


def build(seed):
    env = Environment()
    geo = GeoCluster(env, GeoSpec(
        datacenters={"eu-west": 5, "us-west": 5, "ap-southeast": 5},
        client_datacenter="eu-west"), RngRegistry(seed))
    cassandra = CassandraCluster(geo, CassandraSpec(
        replication=3,
        replication_per_dc={"eu-west": 2, "us-west": 2,
                            "ap-southeast": 2}))
    session = CassandraSession(cassandra, cassandra.client_node)
    return env, geo, session


def run_geo_latency(seed):
    env, geo, session = build(seed)

    def scenario():
        for i in range(1000):
            yield from session.insert(key_for_index(i), i, 500,
                                      cl=ConsistencyLevel.LOCAL_QUORUM)
        yield env.timeout(2)
        out = {}
        for cl in (ConsistencyLevel.LOCAL_ONE,
                   ConsistencyLevel.LOCAL_QUORUM,
                   ConsistencyLevel.QUORUM, ConsistencyLevel.ALL):
            write_lat, read_lat = [], []
            for i in range(PROBES):
                key = key_for_index(i % 1000)
                start = env.now
                yield from session.insert(key, i, 500, cl=cl)
                write_lat.append(env.now - start)
                start = env.now
                yield from session.read(key, 500, cl=cl)
                read_lat.append(env.now - start)
            out[cl.value] = (sum(write_lat) / PROBES * 1000,
                             sum(read_lat) / PROBES * 1000)
        # Partition probe.
        geo.partition_datacenter("ap-southeast")
        availability = {}
        for cl in (ConsistencyLevel.LOCAL_QUORUM, ConsistencyLevel.ALL):
            try:
                yield from session.insert(key_for_index(5), "x", 500, cl=cl)
                availability[cl.value] = "available"
            except UnavailableError:
                availability[cl.value] = "unavailable"
        return out, availability

    return env.run(until=env.process(scenario()))


def test_geo_read_latency(benchmark, bench_scale):
    latencies, availability = run_once(
        benchmark, lambda: run_geo_latency(bench_scale.sweep.seed))
    rows = [[cl, w, r] for cl, (w, r) in latencies.items()]
    print()
    print(render_table(
        ["consistency", "write ms", "read ms"], rows,
        title="Geo testbed (paper §6): client in eu-west, replicas 2+2+2 "
              "over eu-west/us-west/ap-southeast"))
    print(render_table(
        ["consistency", "during ap-southeast partition"],
        [[cl, outcome] for cl, outcome in availability.items()]))

    local_write, local_read = latencies["LOCAL_QUORUM"]
    global_write, global_read = latencies["ALL"]
    quorum_write, quorum_read = latencies["QUORUM"]
    # LOCAL_* stays in the rack (sub-ms); global levels cross an ocean.
    assert local_write < 5 and local_read < 5
    assert global_write > 50 and global_read > 50
    assert quorum_write > 50  # 4 of 6 needs a second datacenter
    # Availability under partition.
    assert availability["LOCAL_QUORUM"] == "available"
    assert availability["ALL"] == "unavailable"
