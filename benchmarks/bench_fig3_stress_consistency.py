"""Figure 3 — stress benchmark for consistency (paper §4.3).

Cassandra only, replication factor 3: runtime vs target throughput for
the three consistency rounds — ONE, QUORUM, and "write ALL" (write at
ALL, read at ONE) — across the five Table-1 workloads run in the paper's
order.

Shape assertions (paper findings F6):

- F6b in the *scan short ranges* test all three levels perform closely;
- F6c in the zipfian read/write workloads, consistency ONE performs best
      and the stricter rounds pay for their replica waits — the bigger
      the write proportion, the more visible the spread.

The paper additionally reports ONE losing the *read latest* workload to
QUORUM/ALL (F6a).  This reproduction recovers ONE < write-ALL only in
part (see EXPERIMENTS.md for the analysis), so the read-latest cell is
reported but the strict ordering is asserted only between write-ALL and
QUORUM-vs-ONE spreads.
"""

import pytest
from conftest import run_once

from repro.core.report import render_consistency_sweep
from repro.core.sweep import consistency_stress_sweep


@pytest.fixture(scope="module")
def sweep_result(bench_scale, benchmark_holder={}):
    return benchmark_holder


def peaks(sweep, workload):
    return {mode: sweep[mode][workload]["peak_throughput"] for mode in sweep}


def test_fig3_consistency_rounds(benchmark, bench_scale, bench_runner,
                                 sweep_result):
    sweep = run_once(benchmark,
                     lambda: consistency_stress_sweep(bench_scale.sweep,
                                                      runner=bench_runner))
    sweep_result["sweep"] = sweep
    print()
    print(render_consistency_sweep(sweep))

    # F6b: scan workload is insensitive to the consistency level.
    scan = peaks(sweep, "scan_short_ranges")
    assert max(scan.values()) < min(scan.values()) * 1.8

    # F6c: consistency ONE wins the zipfian read/write workloads.
    for workload in ("read_mostly", "read_update", "read_modify_write"):
        per_mode = peaks(sweep, workload)
        assert per_mode["ONE"] >= max(per_mode.values()) * 0.85, \
            (workload, per_mode)

    # F6c: the spread between ONE and the strictest round grows with the
    # write proportion (read & update 50 % writes vs read mostly 5 %).
    def spread(workload):
        per_mode = peaks(sweep, workload)
        strictest = min(per_mode["QUORUM"], per_mode["write ALL"])
        return per_mode["ONE"] / strictest

    assert spread("read_update") > spread("read_mostly") * 0.9


def test_fig3_runtime_capped_by_target(bench_scale, sweep_result):
    """Runtime throughput never meaningfully exceeds the offered target
    (the YCSB throttle is a cap, not a hint)."""
    sweep = sweep_result.get("sweep")
    if sweep is None:
        pytest.skip("consistency sweep did not run")
    for per_workload in sweep.values():
        for cell in per_workload.values():
            for target, runtime in cell["series"]:
                assert runtime <= target * 1.15
