"""Ablation — why HBase write latency ignores the replication factor.

The paper's finding F2 rests on the HDFS pipeline acknowledging from
memory (hflush) with asynchronous page-cache flush.  Force the pipeline
to ack from the platter instead (hsync semantics) and the write latency
is no longer flat — each replica adds a real disk write to the ack chain.

This regenerates the paper's §4.1 HBase analysis as a falsifiable claim:
flatness requires in-memory replication.
"""

from dataclasses import replace

from conftest import run_once

from repro.core.config import default_micro_config
from repro.core.experiment import ExperimentSession
from repro.core.report import render_table
from repro.ycsb.workload import MICRO_WORKLOADS


def insert_latency(bench_scale, rf, wal_sync):
    config = default_micro_config("hbase", "insert", replication=rf,
                                  seed=bench_scale.sweep.seed)
    config = replace(
        config,
        record_count=max(2_000, bench_scale.sweep.record_count // 4),
        operation_count=max(600, bench_scale.sweep.operation_count // 4),
        n_nodes=bench_scale.sweep.n_nodes,
        hbase=replace(config.hbase, wal_sync=wal_sync))
    session = ExperimentSession(config)
    session.load()
    result = session.run_cell(workload=MICRO_WORKLOADS["insert"])
    return result.overall().mean_ms


def test_ablation_wal_sync(benchmark, bench_scale):
    def run_all():
        out = {}
        for rf in (1, max(bench_scale.replication_factors)):
            out[rf] = {
                "hflush (memory ack)": insert_latency(bench_scale, rf, False),
                "hsync (disk ack)": insert_latency(bench_scale, rf, True),
            }
        return out

    results = run_once(benchmark, run_all)
    rows = []
    for rf, modes in results.items():
        for mode, mean_ms in modes.items():
            rows.append([rf, mode, mean_ms])
    print()
    print(render_table(["RF", "WAL ack mode", "insert mean ms"], rows,
                       title="Ablation: HBase WAL pipeline durability"))

    low_rf, high_rf = sorted(results)
    flush_growth = (results[high_rf]["hflush (memory ack)"]
                    - results[low_rf]["hflush (memory ack)"])
    sync_growth = (results[high_rf]["hsync (disk ack)"]
                   - results[low_rf]["hsync (disk ack)"])
    # Disk-acked pipelines pay far more per extra replica (F2 inverted).
    assert sync_growth > flush_growth * 2
    # And hsync is categorically slower at any RF.
    assert results[low_rf]["hsync (disk ack)"] > \
        results[low_rf]["hflush (memory ack)"] * 1.4
