"""Figure 2 — stress benchmark for replication (paper §4.2).

Peak runtime throughput and the corresponding latency vs replication
factor, for the five Table-1 workloads on both databases, obtained by
sweeping the offered target throughput with a constant thread count.

Shape assertions (the paper's findings):

- F5a runtime throughput is inversely related to latency (closed loop);
- F5b HBase peak throughput/latency change insignificantly with RF;
- F5c Cassandra latency rises / peak throughput falls as RF grows
      (every stress workload is >= 50 % reads).
"""

import statistics

import pytest
from conftest import run_once

from repro.core.report import render_stress_sweep
from repro.core.sweep import replication_stress_sweep


@pytest.fixture(scope="module")
def results(bench_scale):
    return {}


def _run(db, bench_scale, bench_runner, benchmark, results):
    sweep = run_once(benchmark, lambda: replication_stress_sweep(
        db, bench_scale.replication_factors, bench_scale.sweep,
        runner=bench_runner))
    results[db] = sweep
    print()
    print(render_stress_sweep(db, sweep))
    return sweep


def geometric_mean(values):
    return statistics.geometric_mean(values)


def peak_curve(sweep, workload):
    return [sweep[rf][workload]["peak_throughput"] for rf in sorted(sweep)]


def test_fig2_hbase(benchmark, bench_scale, bench_runner, results):
    sweep = _run("hbase", bench_scale, bench_runner, benchmark, results)
    # F5b: across workloads, the geometric-mean peak at RF=max stays
    # within 35 % of RF=1 (no systematic collapse).
    first_rf = min(sweep)
    last_rf = max(sweep)
    ratio = geometric_mean(
        [sweep[last_rf][w]["peak_throughput"]
         / sweep[first_rf][w]["peak_throughput"] for w in sweep[first_rf]])
    assert 0.65 < ratio < 1.5


def test_fig2_cassandra(benchmark, bench_scale, bench_runner, results):
    sweep = _run("cassandra", bench_scale, bench_runner, benchmark, results)
    first_rf = min(sweep)
    last_rf = max(sweep)
    # F5c: peaks fall noticeably with RF (geometric mean across workloads).
    ratio = geometric_mean(
        [sweep[last_rf][w]["peak_throughput"]
         / sweep[first_rf][w]["peak_throughput"] for w in sweep[first_rf]])
    assert ratio < 0.8
    # ...and latency at peak rises for the read-heavy zipfian workloads.
    assert (sweep[last_rf]["read_mostly"]["latency_ms"]
            > sweep[first_rf]["read_mostly"]["latency_ms"])


def test_fig2_closed_loop_inverse_relation(bench_scale, results):
    """F5a: the closed loop obeys Little's law — runtime throughput never
    exceeds threads/latency, and saturated points sit on that curve, so
    any latency increase directly caps the achievable throughput."""
    if not results:
        pytest.skip("per-db sweeps did not run")
    threads = bench_scale.sweep.n_threads
    checked = 0
    for sweep in results.values():
        for per_workload in sweep.values():
            for cell in per_workload.values():
                for target, runtime, mean_ms in cell["per_target"]:
                    if mean_ms <= 0:
                        continue
                    little_cap = threads / (mean_ms / 1000.0)
                    assert runtime <= little_cap * 1.25
                    if runtime < target * 0.9:  # saturated point
                        assert runtime > little_cap * 0.5
                        checked += 1
    assert checked > 0
