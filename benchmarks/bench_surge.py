"""Flash-crowd survival campaign (this repo's addition, cf. EXPERIMENTS.md).

Open-loop arrivals (steady / 10x flash crowd / flash crowd on a
gray-degraded replica) against the client-tier defense stacks, from the
naive retrying client ("undefended") to the full breaker + retry budget
+ rate limiter + load leveling + cache-aside composition.

Shape assertions:

- The steady control is clean in every mode: goodput tracks the offered
  rate and nothing is refused.
- The flash crowd collapses undefended goodput (retry amplification:
  retries rival the entire offered load) while the full stack sustains
  at least 2x the undefended goodput through the same spike.
- The full stack's refusals are explicit client-side decisions
  (LoadShed / RateLimited / BreakerOpen), and the cache-aside tier's
  staleness stays priced and bounded by the consistency oracle.
"""

import pytest
from conftest import run_once

from repro.consistency.oracle import unexpected_violations
from repro.core.report import render_surge_sweep
from repro.core.sweep import QUICK_SURGE_SCALE, SurgeScale, surge_sweep


def _surge_scale(bench_scale):
    return QUICK_SURGE_SCALE if bench_scale.name == "quick" else SurgeScale()


@pytest.fixture(scope="module")
def sweeps(bench_scale):
    return {}


def _run(db, bench_scale, bench_runner, benchmark, sweeps):
    result = run_once(benchmark, lambda: surge_sweep(
        db, _surge_scale(bench_scale), runner=bench_runner))
    sweeps[db] = result
    print()
    print(render_surge_sweep(db, result))
    return result


def test_surge_cassandra(benchmark, bench_scale, bench_runner, sweeps):
    sweep = _run("cassandra", bench_scale, bench_runner, benchmark, sweeps)
    for mode, summary in sweep["steady"].items():
        assert summary["errors"] == 0, mode
        assert summary["goodput"] > 0.95 * summary["offered_per_s"], mode
    crowd = sweep["flash_crowd"]
    assert crowd["undefended"]["goodput"] < \
        0.5 * crowd["undefended"]["offered_per_s"]
    assert crowd["full"]["goodput"] >= 2.0 * crowd["undefended"]["goodput"]
    assert set(crowd["full"]["errors_by_type"]) <= \
        {"LoadShed", "RateLimited", "BreakerOpen"}
    # The oracle records outside the cache: staleness is measured (and
    # TTL-bounded), convergence gaps are never tolerated.
    for scenario, modes in sweep.items():
        for mode, summary in modes.items():
            assert unexpected_violations(summary["consistency"]) == 0, \
                (scenario, mode)


def test_surge_hbase(benchmark, bench_scale, bench_runner, sweeps):
    sweep = _run("hbase", bench_scale, bench_runner, benchmark, sweeps)
    # A healthy HBase deployment rides out the plain spike (its driver
    # masks timeouts behind internal retries), so the defenses must not
    # cost goodput there.
    crowd = sweep["flash_crowd"]
    assert crowd["full"]["goodput"] >= 0.95 * crowd["undefended"]["goodput"]
    # The compound failure (spike + slow region server) is where the
    # stack earns its keep: the naive client's p99.9 runs away into
    # multi-second territory while the full stack bounds the tail and
    # sustains a multiple of the undefended goodput.
    compound = sweep["flash_crowd+slow_replica"]
    assert compound["full"]["goodput"] >= \
        1.3 * compound["undefended"]["goodput"]
    assert compound["full"]["p999_ms"] < \
        0.5 * compound["undefended"]["p999_ms"]
