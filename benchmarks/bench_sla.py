"""SLA-driven stress levels — the paper's §6 future work, implemented.

The paper proposes replacing raw target throughputs with a service-level
agreement ("at least p percent of requests get response within l latency
during a period of time t") so clusters can be compared at equal user
experience.  This bench finds, for each database, the highest offered
throughput whose run still satisfies an SLA, using the evaluator in
:mod:`repro.core.sla`.
"""

from dataclasses import replace

from conftest import run_once

from repro.core.config import default_stress_config
from repro.core.experiment import ExperimentSession
from repro.core.report import render_table
from repro.core.sla import Sla, evaluate_sla, max_throughput_under_sla
from repro.ycsb.workload import STRESS_WORKLOADS

SLA = Sla(percentile=0.95, latency_ms=10.0, window_s=2.0)


def best_target_for(db, bench_scale):
    config = default_stress_config(db, "read_mostly",
                                   seed=bench_scale.sweep.seed)
    config = replace(config,
                     record_count=bench_scale.sweep.record_count,
                     operation_count=bench_scale.sweep.operation_count,
                     n_threads=bench_scale.sweep.n_threads,
                     n_nodes=bench_scale.sweep.n_nodes)
    session = ExperimentSession(config)
    session.load()
    session.warm()

    def run_at(target):
        result = session.run_cell(workload=STRESS_WORKLOADS["read_mostly"],
                                  target_throughput=target)
        return result.measurements

    targets = [t for t in bench_scale.sweep.targets if t is not None]
    best, reports = max_throughput_under_sla(run_at, targets, SLA)
    return best, reports


def test_sla_search(benchmark, bench_scale):
    def run_all():
        return {db: best_target_for(db, bench_scale)
                for db in ("hbase", "cassandra")}

    results = run_once(benchmark, run_all)
    rows = []
    for db, (best, reports) in results.items():
        for target, report in reports:
            rows.append([db, target,
                         f"{report.compliant_windows}/{report.windows}",
                         f"{report.overall_fraction:.3f}",
                         "PASS" if report.satisfied else "FAIL"])
        rows.append([db, "-> best", best if best is not None else "none",
                     "", ""])
    print()
    print(render_table(
        ["db", "target ops/s", "ok windows", "within-SLA frac", "verdict"],
        rows,
        title=f"SLA search: {SLA.percentile:.0%} of requests <= "
              f"{SLA.latency_ms:.0f} ms per {SLA.window_s:.0f}s window "
              f"(read_mostly, RF=3)"))

    # Both systems must pass at the gentlest offered load...
    for db, (best, reports) in results.items():
        assert reports[0][1].windows > 0
        assert best is None or best >= reports[0][0] or not reports[0][1].satisfied
    # ...and the evaluator must return monotone verdicts (no pass after a
    # fail, by construction of the search).
    for db, (_, reports) in results.items():
        seen_fail = False
        for _, report in reports:
            if seen_fail:
                raise AssertionError("search continued past a failure")
            seen_fail = not report.satisfied
