"""Energy/cost campaign (this repo's addition, cf. EXPERIMENTS.md).

Joules/op and $/Mops across RF x CL x power-management mode, after
BigDataBench's energy extension of YCSB: per-node power ledgers
(CPU/disk/NIC busy-time plus the idle floor) with a power-state
machine (active / P-state / deep sleep, deterministic wake latencies),
priced at $/kWh plus instance-hours.

Shape assertions (the subsystem's contract):

- Stricter consistency burns more joules per op (Cassandra QUORUM vs
  ONE at RF 3 — mostly a utilization story: QUORUM saturates and each
  op carries a larger slice of the fleet's idle power).
- Higher replication burns more joules per op on both stores.
- The energy-aware policy beats the static QUORUM baseline on $/Mops
  and J/op while the oracle confirms it stayed inside the declared
  staleness bound.
"""

import pytest
from conftest import run_once

from repro.consistency.oracle import unexpected_violations
from repro.core.report import render_energy_sweep
from repro.core.sweep import (QUICK_ENERGY_SCALE, EnergyScale,
                              energy_sweep)


def _energy_scale(bench_scale):
    return (QUICK_ENERGY_SCALE if bench_scale.name == "quick"
            else EnergyScale())


@pytest.fixture(scope="module")
def sweeps():
    return {}


def _sweep(benchmark, bench_scale, bench_runner, sweeps, *dbs):
    """Run each store's campaign once per module; later tests time the
    cache hit.  One benchmark call covers every requested store."""
    scale = _energy_scale(bench_scale)

    def compute():
        for db in dbs:
            if db not in sweeps:
                sweeps[db] = energy_sweep(db, scale, runner=bench_runner)
                print()
                print(render_energy_sweep(db, sweeps[db]))
        return {db: sweeps[db] for db in dbs}

    return run_once(benchmark, compute), scale


def test_quorum_burns_more_joules_than_one(benchmark, bench_scale,
                                           bench_runner, sweeps):
    result, _ = _sweep(benchmark, bench_scale, bench_runner, sweeps,
                       "cassandra")
    by_cl = result["cassandra"][3]
    assert (by_cl["ONE"]["always_on"]["joules_per_op"]
            < by_cl["QUORUM"]["always_on"]["joules_per_op"])


def test_replication_burns_joules_on_both_stores(benchmark, bench_scale,
                                                 bench_runner, sweeps):
    result, _ = _sweep(benchmark, bench_scale, bench_runner, sweeps,
                       "cassandra", "hbase")
    for db, cl in (("cassandra", "ONE"), ("hbase", "n/a")):
        assert (result[db][1][cl]["always_on"]["joules_per_op"]
                < result[db][3][cl]["always_on"]["joules_per_op"]), db


def test_energy_aware_beats_static_quorum_on_cost(benchmark, bench_scale,
                                                  bench_runner, sweeps):
    sweep_out, scale = _sweep(benchmark, bench_scale, bench_runner, sweeps,
                              "cassandra")
    result = sweep_out["cassandra"]
    quorum = result[3]["QUORUM"]["always_on"]
    aware = result[3]["adaptive"]["energy_aware"]
    assert aware["usd_per_mops"] < quorum["usd_per_mops"]
    assert aware["joules_per_op"] < quorum["joules_per_op"]
    assert aware["consistency"]["max_staleness_lag_s"] <= scale.staleness_s
    assert unexpected_violations(aware["consistency"]) == 0
