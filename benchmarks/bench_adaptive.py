"""Adaptive-consistency campaign (this repo's addition, cf. EXPERIMENTS.md).

Per-request CL policies against the static §4.3 baselines under a
latency/staleness SLO: read-mostly at RF 3, a replica crash early in
each run, hinted handoff throttled so weak reads are provably stale.

Shape assertions (the subsystem's contract):

- StepwisePolicy's read p95 is strictly below static QUORUM's while its
  oracle-checked read-your-writes rate stays within the declared bound.
- Static ONE breaks the declared bound — its RYW rate exceeds the SLO's
  risk rate and its worst provable lag exceeds the staleness bound.
- StalenessBoundPolicy delivers zero staleness violations while still
  beating static QUORUM on p95 (only risk-free reads take the fast
  path).
"""

import pytest
from conftest import run_once

from repro.core.report import render_adaptive_sweep
from repro.core.sweep import (ADAPTIVE_POLICIES, QUICK_ADAPTIVE_SCALE,
                              AdaptiveScale, adaptive_sweep)


def _adaptive_scale(bench_scale):
    return (QUICK_ADAPTIVE_SCALE if bench_scale.name == "quick"
            else AdaptiveScale())


def _ryw_rate(summary):
    consistency = summary["consistency"]
    return (consistency["violations_by_kind"]["read_your_writes"]
            / max(1, consistency["reads"]))


@pytest.fixture(scope="module")
def sweeps():
    return {}


def _sweep(benchmark, bench_scale, bench_runner, sweeps):
    """Run the campaign once per module; later tests time the cache hit."""
    scale = _adaptive_scale(bench_scale)

    def compute():
        if "result" not in sweeps:
            sweeps["result"] = adaptive_sweep(ADAPTIVE_POLICIES, scale,
                                              runner=bench_runner)
            print()
            print(render_adaptive_sweep(sweeps["result"]))
        return sweeps["result"]

    return run_once(benchmark, compute), scale


def test_adaptive_policies_beat_static_quorum(benchmark, bench_scale,
                                              bench_runner, sweeps):
    result, scale = _sweep(benchmark, bench_scale, bench_runner, sweeps)
    target = scale.targets[0]  # the calibrated load point
    quorum_p95 = result["static-quorum"][target]["decisions"]["read_p95_ms"]
    for policy in ("stepwise", "staleness-bound"):
        summary = result[policy][target]
        assert summary["decisions"]["read_p95_ms"] < quorum_p95
        assert _ryw_rate(summary) <= scale.risk_rate


def test_static_one_breaks_the_declared_bound(benchmark, bench_scale,
                                              bench_runner, sweeps):
    result, scale = _sweep(benchmark, bench_scale, bench_runner, sweeps)
    target = scale.targets[0]
    static_one = result["static-one"][target]
    assert _ryw_rate(static_one) > scale.risk_rate
    assert static_one["consistency"]["max_staleness_lag_s"] \
        > scale.staleness_s


def test_staleness_bound_holds_its_contract(benchmark, bench_scale,
                                            bench_runner, sweeps):
    result, scale = _sweep(benchmark, bench_scale, bench_runner, sweeps)
    for target, summary in result["staleness-bound"].items():
        consistency = summary["consistency"]
        assert consistency["violations_by_kind"]["read_your_writes"] == 0
        assert consistency["violations_by_kind"]["stale_read"] == 0
        assert consistency["max_staleness_lag_s"] <= scale.staleness_s
