"""Unit tests for SSTables."""

import pytest

from repro.storage.sstable import SSTable


def build(n=100, size=100, block_bytes=1024, prefix="k"):
    entries = [(f"{prefix}{i:05d}", i, 1.0, size) for i in range(n)]
    return SSTable(entries, block_bytes=block_bytes)


class TestSSTable:
    def test_get_roundtrip(self):
        table = build(50)
        assert table.get("k00007") == (7, 1.0, 100)
        assert table.get("missing") is None

    def test_len_and_size(self):
        table = build(50, size=100)
        assert len(table) == 50
        assert table.size_bytes == 5000

    def test_key_range(self):
        table = build(10)
        assert table.key_range == ("k00000", "k00009")
        empty = SSTable([], block_bytes=1024)
        assert empty.key_range is None

    def test_unsorted_entries_rejected(self):
        with pytest.raises(ValueError):
            SSTable([("b", 1, 1.0, 10), ("a", 2, 1.0, 10)], block_bytes=1024)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            SSTable([("a", 1, 1.0, 10), ("a", 2, 2.0, 10)], block_bytes=1024)

    def test_block_layout_respects_block_size(self):
        table = build(100, size=100, block_bytes=1000)
        # 10 entries of 100 B per 1000 B block -> 10 blocks.
        assert table.n_blocks == 10
        assert table.block_of("k00000") == 0
        assert table.block_of("k00099") == 9

    def test_might_contain_range_prefilter(self):
        table = build(10)
        assert not table.might_contain("a-below-range")
        assert not table.might_contain("z-above-range")
        assert table.might_contain("k00005")

    def test_might_contain_no_false_negatives(self):
        table = build(200)
        assert all(table.might_contain(f"k{i:05d}") for i in range(200))

    def test_blocks_for_range_contiguous(self):
        table = build(100, size=100, block_bytes=1000)
        blocks, entries = table.blocks_for_range("k00015", 10)
        assert [k for k, *_ in entries] == [f"k{i:05d}" for i in range(15, 25)]
        assert blocks == [1, 2]

    def test_blocks_for_range_past_end(self):
        table = build(10)
        blocks, entries = table.blocks_for_range("k00009", 5)
        assert len(entries) == 1
        blocks, entries = table.blocks_for_range("z", 5)
        assert blocks == [] and entries == []

    def test_items_sorted_roundtrip(self):
        table = build(20)
        items = table.items_sorted()
        assert len(items) == 20
        assert items == sorted(items)

    def test_unique_ids(self):
        a, b = build(5), build(5)
        assert a.sstable_id != b.sstable_id
