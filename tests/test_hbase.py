"""Unit and integration tests for the HBase engine."""

import pytest

from repro.cluster.topology import Cluster, ClusterSpec
from repro.keyspace import KEY_DOMAIN, key_for_index, key_for_token, token_of
from repro.hbase.client import HBaseClient, backoff_delay
from repro.hbase.deployment import HBaseCluster, HBaseSpec
from repro.hbase.region import Region
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.storage.lsm import StorageSpec


def small_storage():
    return StorageSpec(memtable_flush_bytes=8192, block_bytes=1024,
                       block_cache_bytes=8192)


@pytest.fixture
def hbase():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(n_nodes=5), RngRegistry(13))
    deployment = HBaseCluster(cluster, HBaseSpec(
        replication=2, regions_per_server=2, storage=small_storage()))
    client = HBaseClient(deployment, deployment.master_node)
    return env, cluster, deployment, client


def drive(env, generator):
    return env.run(until=env.process(generator))


class TestRegion:
    def test_contains(self):
        region = Region(0, 100, 200)
        assert region.contains(100) and region.contains(199)
        assert not region.contains(99) and not region.contains(200)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 5, 5)


class TestDeployment:
    def test_presplit_covers_domain(self, hbase):
        _, _, deployment, _ = hbase
        regions = deployment.regions
        assert regions[0].start_token == 0
        assert regions[-1].end_token == KEY_DOMAIN
        for left, right in zip(regions, regions[1:]):
            assert left.end_token == right.start_token

    def test_every_region_assigned(self, hbase):
        _, _, deployment, _ = hbase
        assert set(deployment.master.assignment) == \
            {r.region_id for r in deployment.regions}

    def test_region_lookup_matches_ranges(self, hbase):
        _, _, deployment, _ = hbase
        for i in range(200):
            token = token_of(key_for_index(i))
            region = deployment.region_for_token(token)
            assert region.contains(token)

    def test_assignment_balanced(self, hbase):
        _, _, deployment, _ = hbase
        per_server = {}
        for node_id in deployment.master.assignment.values():
            per_server[node_id] = per_server.get(node_id, 0) + 1
        assert set(per_server.values()) == {2}

    def test_needs_two_nodes(self):
        env = Environment()
        cluster = Cluster(env, ClusterSpec(n_nodes=1), RngRegistry(1))
        with pytest.raises(ValueError):
            HBaseCluster(cluster, HBaseSpec())


class TestClientOperations:
    def test_put_get_roundtrip(self, hbase):
        env, _, _, client = hbase

        def scenario():
            yield from client.put(key_for_index(1), "value", 100)
            result = yield from client.get(key_for_index(1), 100)
            return result

        value, _ts = drive(env, scenario())
        assert value == "value"

    def test_get_missing_returns_none(self, hbase):
        env, _, _, client = hbase

        def scenario():
            result = yield from client.get(key_for_index(77), 100)
            return result

        assert drive(env, scenario()) is None

    def test_update_overwrites(self, hbase):
        env, _, _, client = hbase

        def scenario():
            yield from client.put(key_for_index(2), "v1", 100)
            yield from client.put(key_for_index(2), "v2", 100)
            result = yield from client.get(key_for_index(2), 100)
            return result

        assert drive(env, scenario())[0] == "v2"

    def test_scan_is_sorted_and_complete(self, hbase):
        env, _, _, client = hbase

        def scenario():
            for i in range(300):
                yield from client.put(key_for_index(i), i, 50)
            rows = yield from client.scan(key_for_index(5), 25, 50)
            return rows

        rows = drive(env, scenario())
        keys = [k for k, *_ in rows]
        assert len(rows) == 25
        assert keys == sorted(keys)
        assert keys[0] == key_for_index(5)

    def test_scan_crosses_region_boundaries(self, hbase):
        env, _, deployment, client = hbase

        def scenario():
            for i in range(400):
                yield from client.put(key_for_index(i), i, 50)
            # Start near the end of the first region.
            first_region = deployment.regions[0]
            start_key = key_for_token(first_region.end_token - 1000)
            rows = yield from client.scan(start_key, 10, 50)
            return rows

        rows = drive(env, scenario())
        assert len(rows) == 10
        tokens = [token_of(k) for k, *_ in rows]
        boundary = deployment.regions[0].end_token
        assert any(t >= boundary for t in tokens)

    def test_strong_consistency_read_your_writes(self, hbase):
        env, _, _, client = hbase

        def scenario():
            failures = []
            for i in range(100):
                yield from client.put(key_for_index(i), f"gen{i}", 50)
                result = yield from client.get(key_for_index(i), 50)
                if result is None or result[0] != f"gen{i}":
                    failures.append(i)
            return failures

        assert drive(env, scenario()) == []


class TestReplicationBehaviour:
    def _write_latency(self, rf):
        env = Environment()
        cluster = Cluster(env, ClusterSpec(n_nodes=6), RngRegistry(29))
        deployment = HBaseCluster(cluster, HBaseSpec(
            replication=rf, storage=small_storage()))
        client = HBaseClient(deployment, deployment.master_node)

        def scenario():
            latencies = []
            for i in range(300):
                start = env.now
                yield from client.put(key_for_index(i), i, 500)
                latencies.append(env.now - start)
            tail = latencies[100:]
            return sum(tail) / len(tail)

        return env.run(until=env.process(scenario()))

    def test_write_latency_grows_only_mildly_with_rf(self):
        lat1 = self._write_latency(1)
        lat5 = self._write_latency(5)
        assert lat5 > lat1  # extra pipeline hops are not free...
        assert lat5 < lat1 + 0.0012  # ...but stay in-memory cheap (F2)

    def _read_latency(self, rf):
        env = Environment()
        cluster = Cluster(env, ClusterSpec(n_nodes=6), RngRegistry(31))
        deployment = HBaseCluster(cluster, HBaseSpec(
            replication=rf, storage=small_storage()))
        client = HBaseClient(deployment, deployment.master_node)

        def scenario():
            for i in range(400):
                yield from client.put(key_for_index(i), i, 200)
            yield env.timeout(10)
            latencies = []
            for i in range(200):
                start = env.now
                yield from client.get(key_for_index(i % 400), 200)
                latencies.append(env.now - start)
            return sum(latencies) / len(latencies)

        return env.run(until=env.process(scenario()))

    def test_read_latency_independent_of_rf(self):
        lat1 = self._read_latency(1)
        lat4 = self._read_latency(4)
        assert lat4 < lat1 * 1.5 and lat1 < lat4 * 1.5  # F1: flat

    def test_wal_pipeline_replicates_to_rf_datanodes(self, hbase):
        env, cluster, deployment, client = hbase

        def scenario():
            for i in range(50):
                yield from client.put(key_for_index(i), i, 400)

        drive(env, scenario())
        dirty_nodes = sum(
            1 for node in cluster.nodes[:-1] if node.disk.dirty_bytes > 0)
        assert dirty_nodes >= 2  # rf=2 WAL replicas spread over servers


class TestFailover:
    def test_regions_move_after_crash(self):
        env = Environment()
        cluster = Cluster(env, ClusterSpec(n_nodes=5), RngRegistry(17))
        deployment = HBaseCluster(cluster, HBaseSpec(
            replication=2, storage=small_storage(),
            failure_detection_s=1.0, region_recovery_s=0.5))
        client = HBaseClient(deployment, deployment.master_node)
        victim = deployment.server_nodes[0].node_id

        def scenario():
            for i in range(100):
                yield from client.put(key_for_index(i), i, 100)
            cluster.kill(victim)
            yield env.timeout(5.0)  # detection + recovery
            hits = 0
            for i in range(100):
                result = yield from client.get(key_for_index(i), 100)
                if result is not None:
                    hits += 1
            return hits

        hits = drive(env, scenario())
        assert hits == 100  # every region is served again
        assert deployment.master.failovers
        assert all(node_id != victim
                   for node_id in deployment.master.assignment.values())

    def test_moved_region_loses_locality(self):
        env = Environment()
        cluster = Cluster(env, ClusterSpec(n_nodes=4), RngRegistry(19))
        deployment = HBaseCluster(cluster, HBaseSpec(
            replication=2, regions_per_server=1, storage=small_storage(),
            failure_detection_s=1.0, region_recovery_s=0.1))
        client = HBaseClient(deployment, deployment.master_node)
        victim = deployment.server_nodes[0].node_id

        def scenario():
            for i in range(300):
                yield from client.put(key_for_index(i), i, 300)
            yield env.timeout(5)
            cluster.kill(victim)
            yield env.timeout(3)
            before = cluster.rpc_count
            for i in range(50):
                yield from client.get(key_for_index(i), 300)
            return cluster.rpc_count - before

        rpcs = drive(env, scenario())
        # Remote HFile reads add dn.read RPCs beyond the client's own gets.
        assert rpcs > 50


class TestBackoffSchedule:
    def test_pure_exponential_schedule_is_pinned(self):
        # rng=None must give exactly the doubling schedule, capped.
        delays = [backoff_delay(0.5, attempt, 5.0)
                  for attempt in range(1, 7)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 5.0, 5.0]

    def test_cap_applies_before_jitter(self):
        rng = RngRegistry(13).stream("hbase.client.backoff")
        for attempt in range(1, 12):
            delay = backoff_delay(0.5, attempt, 5.0, rng)
            assert delay <= 5.0

    def test_jitter_is_equal_jitter_within_half_delay(self):
        rng = RngRegistry(13).stream("hbase.client.backoff")
        for attempt in range(1, 7):
            uncapped = min(5.0, 0.5 * 2 ** (attempt - 1))
            delay = backoff_delay(0.5, attempt, 5.0, rng)
            assert uncapped / 2 <= delay < uncapped

    def test_jitter_is_deterministic_per_seed(self):
        # Same named sim-RNG stream + seed -> identical backoff schedule,
        # which is what keeps retried runs bit-identical across jobs.
        first = [backoff_delay(0.5, a, 5.0,
                               RngRegistry(42).stream("hbase.client.backoff"))
                 for a in range(1, 6)]
        again = [backoff_delay(0.5, a, 5.0,
                               RngRegistry(42).stream("hbase.client.backoff"))
                 for a in range(1, 6)]
        assert first == again
        other = [backoff_delay(0.5, a, 5.0,
                               RngRegistry(43).stream("hbase.client.backoff"))
                 for a in range(1, 6)]
        assert first != other
