"""Integration tests for the Cassandra engine: CLs, repair, hints."""

import pytest

from repro.cassandra.client import CassandraSession
from repro.cassandra.consistency import ConsistencyLevel, UnavailableError
from repro.cassandra.deployment import CassandraCluster, CassandraSpec
from repro.cluster.topology import Cluster, ClusterSpec
from repro.keyspace import key_for_index
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.storage.lsm import StorageSpec


def build(n_nodes=6, replication=3, seed=23, **spec_kwargs):
    env = Environment()
    cluster = Cluster(env, ClusterSpec(n_nodes=n_nodes), RngRegistry(seed))
    spec_kwargs.setdefault("storage", StorageSpec(
        memtable_flush_bytes=8192, block_bytes=1024, block_cache_bytes=8192))
    cassandra = CassandraCluster(cluster, CassandraSpec(
        replication=replication, **spec_kwargs))
    session = CassandraSession(cassandra, cassandra.client_node)
    return env, cluster, cassandra, session


def drive(env, generator):
    return env.run(until=env.process(generator))


class TestBasicOperations:
    def test_insert_read_roundtrip(self):
        env, _, _, session = build()

        def scenario():
            yield from session.insert(key_for_index(1), "hello", 100)
            result = yield from session.read(key_for_index(1), 100)
            return result

        assert drive(env, scenario())[0] == "hello"

    def test_read_missing_returns_none(self):
        env, _, _, session = build()

        def scenario():
            result = yield from session.read(key_for_index(9), 100)
            return result

        assert drive(env, scenario()) is None

    def test_scan_returns_sorted_rows(self):
        env, _, _, session = build()

        def scenario():
            for i in range(200):
                yield from session.insert(key_for_index(i), i, 50)
            rows = yield from session.scan(key_for_index(3), 10, 50)
            return rows

        rows = drive(env, scenario())
        keys = [k for k, *_ in rows]
        assert len(rows) == 10
        assert keys == sorted(keys)

    def test_writes_reach_all_replicas_eventually(self):
        env, _, cassandra, session = build()

        def scenario():
            key = key_for_index(5)
            yield from session.insert(key, "v", 100)
            yield env.timeout(2)  # async mutations drain
            replicas = cassandra.replicas_of(key)
            present = [cassandra.nodes[r].newest_timestamp(key) is not None
                       for r in replicas]
            return present

        assert all(drive(env, scenario()))


class TestConsistencyLevels:
    def test_quorum_read_after_quorum_write_is_strong(self):
        env, _, _, session = build()
        session.read_cl = ConsistencyLevel.QUORUM
        session.write_cl = ConsistencyLevel.QUORUM

        def scenario():
            stale = 0
            for i in range(100):
                key = key_for_index(i % 20)
                yield from session.insert(key, f"gen{i}", 100)
                result = yield from session.read(key, 100)
                if result is None or result[0] != f"gen{i}":
                    stale += 1
            return stale

        assert drive(env, scenario()) == 0

    def test_write_all_read_one_is_strong(self):
        env, _, _, session = build()
        session.write_cl = ConsistencyLevel.ALL
        session.read_cl = ConsistencyLevel.ONE

        def scenario():
            stale = 0
            for i in range(100):
                key = key_for_index(i % 20)
                yield from session.insert(key, f"gen{i}", 100)
                result = yield from session.read(key, 100)
                if result is None or result[0] != f"gen{i}":
                    stale += 1
            return stale

        assert drive(env, scenario()) == 0

    def test_higher_write_cl_has_higher_latency(self):
        def write_latency(cl):
            env, _, _, session = build(seed=31)
            session.write_cl = cl

            def scenario():
                latencies = []
                for i in range(200):
                    start = env.now
                    yield from session.insert(key_for_index(i), i, 500)
                    latencies.append(env.now - start)
                tail = latencies[50:]
                return sum(tail) / len(tail)

            return env.run(until=env.process(scenario()))

        one = write_latency(ConsistencyLevel.ONE)
        all_ = write_latency(ConsistencyLevel.ALL)
        assert all_ > one

    def test_all_write_unavailable_when_replica_down(self):
        env, cluster, cassandra, session = build()
        session.write_cl = ConsistencyLevel.ALL

        def scenario():
            key = key_for_index(0)
            victim = cassandra.replicas_of(key)[1]
            cluster.kill(victim)
            try:
                yield from session.insert(key, "x", 100)
            except UnavailableError:
                return "unavailable"

        assert drive(env, scenario()) == "unavailable"

    def test_one_write_survives_replica_down(self):
        env, cluster, cassandra, session = build()

        def scenario():
            key = key_for_index(0)
            victim = cassandra.replicas_of(key)[1]
            cluster.kill(victim)
            result = yield from session.insert(key, "x", 100)
            return result

        assert drive(env, scenario()) is True

    def test_quorum_tolerates_one_of_three_down(self):
        env, cluster, cassandra, session = build()
        session.read_cl = ConsistencyLevel.QUORUM
        session.write_cl = ConsistencyLevel.QUORUM

        def scenario():
            key = key_for_index(0)
            victim = cassandra.replicas_of(key)[2]
            cluster.kill(victim)
            yield from session.insert(key, "survives", 100)
            result = yield from session.read(key, 100)
            return result

        assert drive(env, scenario())[0] == "survives"


class TestReadRepair:
    def test_blocking_repair_fixes_stale_replica(self):
        env, cluster, cassandra, session = build(read_repair_chance=1.0)

        def scenario():
            key = key_for_index(3)
            replicas = cassandra.replicas_of(key)
            yield from session.insert(key, "v1", 100)
            yield env.timeout(1)
            # Manufacture staleness: write v2 directly to the main replica
            # only (bypassing the coordinator).
            main = cassandra.nodes[replicas[0]]
            yield env.process(main.local_mutate(key, "v2", 100, env.now))
            # A read with repair chance 1.0 must detect and repair.
            result = yield from session.read(key, 100)
            yield env.timeout(1)
            timestamps = {cassandra.nodes[r].newest_timestamp(key)
                          for r in replicas}
            return result, timestamps

        result, timestamps = drive(env, scenario())
        assert result[0] == "v2"
        assert len(timestamps) == 1  # all replicas converged

    def test_repair_counters_increment(self):
        # At CL ONE the chance-triggered digests are beyond the CL, so
        # the mismatch repairs in the background (Cassandra 2.0: only a
        # CL-blocking digest mismatch reconciles in the foreground).
        env, cluster, cassandra, session = build(read_repair_chance=1.0)

        def scenario():
            key = key_for_index(4)
            replicas = cassandra.replicas_of(key)
            yield from session.insert(key, "v1", 100)
            yield env.timeout(1)
            main = cassandra.nodes[replicas[0]]
            yield env.process(main.local_mutate(key, "v2", 100, env.now))
            yield from session.read(key, 100)
            yield env.timeout(2)  # background reconcile completes

        drive(env, scenario())
        stats = cassandra.total_stats()
        assert stats["background_repairs"] >= 1
        assert stats["repair_mutations"] >= 1

    def test_foreground_repair_counter_at_quorum(self):
        # A mismatch within the CL-blocking digest set pays the
        # foreground reconcile — QUORUM's price for recent writes.
        env, cluster, cassandra, session = build(read_repair_chance=0.0)

        def scenario():
            key = key_for_index(4)
            replicas = cassandra.replicas_of(key)
            yield from session.insert(key, "v1", 100,
                                      cl=ConsistencyLevel.ALL)
            yield env.timeout(1)
            blocking = cassandra.nodes[replicas[1]]
            yield env.process(blocking.local_mutate(key, "v2", 100,
                                                    env.now))
            result = yield from session.read(key, 100,
                                             cl=ConsistencyLevel.QUORUM)
            return result

        result = drive(env, scenario())
        assert result[0] == "v2"
        stats = cassandra.total_stats()
        assert stats["read_repairs"] >= 1
        assert stats["repair_mutations"] >= 1

    def test_no_repair_when_chance_zero(self):
        env, _, cassandra, session = build(read_repair_chance=0.0)

        def scenario():
            for i in range(50):
                yield from session.insert(key_for_index(i), i, 100)
            for i in range(50):
                yield from session.read(key_for_index(i), 100)

        drive(env, scenario())
        assert cassandra.total_stats()["read_repairs"] == 0

    def test_async_mode_repairs_in_background(self):
        env, _, cassandra, session = build(read_repair_chance=1.0,
                                           blocking_read_repair=False)

        def scenario():
            key = key_for_index(6)
            replicas = cassandra.replicas_of(key)
            yield from session.insert(key, "v1", 100)
            yield env.timeout(1)
            main = cassandra.nodes[replicas[0]]
            yield env.process(main.local_mutate(key, "v2", 100, env.now))
            yield from session.read(key, 100)
            yield env.timeout(2)  # background reconcile completes
            return {cassandra.nodes[r].newest_timestamp(key)
                    for r in replicas}

        timestamps = drive(env, scenario())
        assert len(timestamps) == 1


class TestHintedHandoff:
    def test_hint_delivered_after_restart(self):
        env, cluster, cassandra, session = build()

        def scenario():
            key = key_for_index(2)
            replicas = cassandra.replicas_of(key)
            victim = replicas[-1]
            cluster.kill(victim)
            yield from session.insert(key, "hinted-value", 100)
            yield env.timeout(1)
            assert cassandra.nodes[victim].newest_timestamp(key) is None
            cluster.restart(victim)
            yield env.timeout(3)  # replay interval + delivery
            return cassandra.nodes[victim].newest_timestamp(key)

        assert drive(env, scenario()) is not None

    def test_hint_counters(self):
        env, cluster, cassandra, session = build()

        def scenario():
            key = key_for_index(2)
            victim = cassandra.replicas_of(key)[-1]
            cluster.kill(victim)
            yield from session.insert(key, "x", 100)

        drive(env, scenario())
        assert cassandra.total_stats()["hints_stored"] == 1


class TestEventualConsistency:
    def test_stale_reads_possible_then_converge(self):
        """R=W=ONE is not monotonic, but converges (the PACELC tradeoff
        the paper builds on)."""
        env, _, cassandra, session = build(seed=101)

        def scenario():
            key = key_for_index(11)
            # Burst of concurrent writers and readers on one hot key.
            def writer(n):
                for i in range(n):
                    yield from session.insert(key, f"w{i}", 100)

            def reader(out):
                for _ in range(30):
                    result = yield from session.read(key, 100)
                    out.append(result)

            outputs = []
            writer_proc = env.process(writer(30))
            reader_proc = env.process(reader(outputs))
            yield writer_proc & reader_proc
            yield env.timeout(2)
            replicas = cassandra.replicas_of(key)
            timestamps = {cassandra.nodes[r].newest_timestamp(key)
                          for r in replicas}
            return timestamps

        assert len(drive(env, scenario())) == 1  # converged
