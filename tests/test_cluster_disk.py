"""Unit tests for the hard-drive model."""

import random

import pytest

from repro.cluster.disk import BACKGROUND, FOREGROUND, Disk, DiskSpec
from repro.sim.kernel import Environment


def make_disk(env, jitter=0.0, flush_interval_s=1.0, **kwargs):
    return Disk(env, DiskSpec(jitter=jitter, **kwargs), random.Random(0),
                flush_interval_s=flush_interval_s)


class TestDiskSpec:
    def test_random_access_includes_seek_and_rotation(self):
        spec = DiskSpec(jitter=0.0)
        t = spec.random_access_time(0)
        assert t == pytest.approx(spec.avg_seek_s + spec.rotation_s / 2)

    def test_sequential_access_is_much_cheaper(self):
        spec = DiskSpec(jitter=0.0)
        size = 64 * 1024
        assert spec.sequential_access_time(size) < spec.random_access_time(size) / 3

    def test_transfer_scales_with_size(self):
        spec = DiskSpec(jitter=0.0)
        small = spec.sequential_access_time(1024)
        large = spec.sequential_access_time(1024 * 1024)
        assert large > small


class TestDisk:
    def test_random_read_takes_service_time(self, env):
        disk = make_disk(env)

        def proc(env):
            yield from disk.read(4096)
            return env.now

        elapsed = env.run(until=env.process(proc(env)))
        assert elapsed == pytest.approx(disk.spec.random_access_time(4096))

    def test_reads_queue_on_one_spindle(self, env):
        disk = make_disk(env)
        finish = []

        def proc(env):
            yield from disk.read(4096)
            finish.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        one = disk.spec.random_access_time(4096)
        assert finish == pytest.approx([one, 2 * one])

    def test_foreground_preempts_background_queue(self, env):
        disk = make_disk(env)
        order = []

        def background(env):
            yield from disk.read(4096, priority=BACKGROUND)
            order.append("background")

        def foreground(env):
            yield from disk.read(4096, priority=FOREGROUND)
            order.append("foreground")

        def occupy(env):
            yield from disk.read(4096)

        env.process(occupy(env))

        def submit(env):
            yield env.timeout(0.001)
            env.process(background(env))
            env.process(foreground(env))

        env.process(submit(env))
        env.run()
        assert order == ["foreground", "background"]

    def test_buffered_append_costs_no_time_now(self, env):
        disk = make_disk(env)
        disk.append_buffered(10_000)
        assert env.now == 0.0
        assert disk.dirty_bytes == 10_000

    def test_flusher_drains_dirty_bytes(self, env):
        disk = make_disk(env, flush_interval_s=1.0)
        disk.append_buffered(50_000)
        env.run(until=2.5)
        assert disk.dirty_bytes == 0
        assert disk.bytes_written == 50_000

    def test_flush_consumes_disk_bandwidth(self, env):
        disk = make_disk(env, flush_interval_s=0.5)
        disk.append_buffered(10 * 1024 * 1024)
        env.run(until=2.0)
        assert disk.busy_time > 0

    def test_utilization_tracks_busy_fraction(self, env):
        disk = make_disk(env)

        def proc(env):
            for _ in range(10):
                yield from disk.read(8192)

        env.process(proc(env))
        env.run()
        assert 0.9 < disk.utilization(env.now) <= 1.0

    def test_jitter_spreads_service_times(self):
        env = Environment()
        disk = Disk(env, DiskSpec(jitter=0.3), random.Random(1))
        times = []

        def proc(env):
            for _ in range(20):
                start = env.now
                yield from disk.read(4096)
                times.append(env.now - start)

        env.process(proc(env))
        env.run()
        assert len(set(round(t, 9) for t in times)) > 10

    def test_counters(self, env):
        disk = make_disk(env)

        def proc(env):
            yield from disk.read(1000)
            yield from disk.write(2000)

        env.process(proc(env))
        env.run()
        assert disk.bytes_read == 1000
        assert disk.bytes_written == 2000
