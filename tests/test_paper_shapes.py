"""Small-scale versions of the paper's findings F1–F6.

These are the repository's contract with the paper: each test runs a
miniature version of one experiment and asserts the qualitative shape.
The full-scale versions live in ``benchmarks/``; here the populations are
small enough for the unit-test budget, so tolerances are generous.
"""

import pytest

from repro.cassandra.consistency import ConsistencyLevel
from repro.core.sweep import (
    QUICK_FAILOVER_SCALE,
    SweepScale,
    consistency_stress_sweep,
    failover_sweep,
    replication_micro_sweep,
    replication_stress_sweep,
)

SCALE = SweepScale(record_count=6_000, operation_count=1_200,
                   n_threads=24, n_nodes=10,
                   targets=(3_000.0, None), seed=99)

#: The stress shapes need the population/memory ratio of the real
#: experiment (see ``scaled_stress_storage``), which the sweeps derive
#: automatically; a slightly larger population keeps it stable.
STRESS_SCALE = SweepScale(record_count=8_000, operation_count=1_500,
                          n_threads=32, n_nodes=12,
                          targets=(3_000.0, None), seed=99)


@pytest.fixture(scope="module")
def micro():
    return {db: replication_micro_sweep(db, (1, 5), SCALE)
            for db in ("hbase", "cassandra")}


class TestFig1Shapes:
    def test_f1_hbase_reads_flat(self, micro):
        sweep = micro["hbase"]
        assert sweep[5]["read"]["mean_ms"] < sweep[1]["read"]["mean_ms"] * 1.8
        assert sweep[5]["scan"]["mean_ms"] < sweep[1]["scan"]["mean_ms"] * 1.8

    def test_f2_hbase_writes_no_dramatic_change(self, micro):
        sweep = micro["hbase"]
        # Five extra in-memory pipeline hops stay under a millisecond.
        assert (sweep[5]["insert"]["mean_ms"]
                - sweep[1]["insert"]["mean_ms"]) < 1.0

    def test_f3_cassandra_writes_flat(self, micro):
        sweep = micro["cassandra"]
        assert sweep[5]["update"]["mean_ms"] < \
            sweep[1]["update"]["mean_ms"] * 1.6
        assert sweep[5]["insert"]["mean_ms"] < \
            sweep[1]["insert"]["mean_ms"] * 1.6

    def test_f4_cassandra_reads_climb(self, micro):
        sweep = micro["cassandra"]
        assert sweep[5]["read"]["mean_ms"] > \
            sweep[1]["read"]["mean_ms"] * 1.5

    def test_f4_contrast_between_systems(self, micro):
        hbase_growth = (micro["hbase"][5]["read"]["mean_ms"]
                        / micro["hbase"][1]["read"]["mean_ms"])
        cassandra_growth = (micro["cassandra"][5]["read"]["mean_ms"]
                            / micro["cassandra"][1]["read"]["mean_ms"])
        assert cassandra_growth > hbase_growth


class TestFig2Shapes:
    @pytest.fixture(scope="class")
    def stress(self):
        workloads = ("read_mostly", "read_update")
        return {db: replication_stress_sweep(db, (1, 6), STRESS_SCALE,
                                             workloads=workloads)
                for db in ("hbase", "cassandra")}

    def test_f5_cassandra_peak_falls_with_rf(self, stress):
        sweep = stress["cassandra"]
        assert sweep[6]["read_mostly"]["peak_throughput"] < \
            sweep[1]["read_mostly"]["peak_throughput"] * 0.8

    def test_f5_hbase_holds_up_better_than_cassandra(self, stress):
        def retention(sweep, workload):
            return (sweep[6][workload]["peak_throughput"]
                    / sweep[1][workload]["peak_throughput"])

        assert retention(stress["hbase"], "read_mostly") > \
            retention(stress["cassandra"], "read_mostly")

    def test_f5_closed_loop_littles_law(self, stress):
        for sweep in stress.values():
            for per_workload in sweep.values():
                for cell in per_workload.values():
                    for _target, runtime, mean_ms in cell["per_target"]:
                        if mean_ms > 0:
                            cap = STRESS_SCALE.n_threads / (mean_ms / 1000.0)
                            assert runtime <= cap * 1.3


class TestFig3Shapes:
    @pytest.fixture(scope="class")
    def consistency(self):
        return consistency_stress_sweep(
            STRESS_SCALE, workloads=("read_latest", "scan_short_ranges",
                                     "read_update"))

    def test_f6b_scan_insensitive_to_cl(self, consistency):
        peaks = [consistency[mode]["scan_short_ranges"]["peak_throughput"]
                 for mode in consistency]
        assert max(peaks) < min(peaks) * 2.0

    def test_f6c_one_wins_write_heavy(self, consistency):
        peaks = {mode: consistency[mode]["read_update"]["peak_throughput"]
                 for mode in consistency}
        assert peaks["ONE"] >= max(peaks.values()) * 0.8

    def test_f6c_write_all_pays_for_stragglers(self, consistency):
        peaks = {mode: consistency[mode]["read_update"]["peak_throughput"]
                 for mode in consistency}
        assert peaks["write ALL"] < peaks["ONE"]


class TestConsistencyCorrectness:
    def test_modes_cover_paper_rounds(self):
        from repro.core.sweep import CONSISTENCY_MODES
        assert set(CONSISTENCY_MODES) == {"ONE", "QUORUM", "write ALL"}
        read_cl, write_cl = CONSISTENCY_MODES["write ALL"]
        assert read_cl is ConsistencyLevel.ONE
        assert write_cl is ConsistencyLevel.ALL


class TestFailoverShapes:
    """The availability story (Pokluda et al., the paper's §5 citation):
    Cassandra's hinted handoff rides out a crash at weak consistency;
    HBase blocks the dead server's regions until the HMaster reassigns
    them."""

    @pytest.fixture(scope="class")
    def cassandra_crash(self):
        sweep = failover_sweep("cassandra", ("crash",),
                               QUICK_FAILOVER_SCALE, modes={
                                   "ONE": (ConsistencyLevel.ONE,
                                           ConsistencyLevel.ONE)})
        return sweep["crash"]["ONE"]

    @pytest.fixture(scope="class")
    def hbase_crash(self):
        sweep = failover_sweep("hbase", ("crash",), QUICK_FAILOVER_SCALE)
        return sweep["crash"]["n/a"]

    def test_cassandra_one_rides_out_crash_without_errors(
            self, cassandra_crash):
        report = cassandra_crash["failover"]
        assert cassandra_crash["errors"] == 0
        assert report["errors_by_type"] == {}
        # No throughput dip either: the ring keeps serving.
        assert report["time_to_recovery_s"] == 0.0

    def test_cassandra_crash_stores_and_replays_hints(self):
        # The mechanism behind the ride-through: writes to the dead
        # replica become hints and land after restart.
        from dataclasses import replace as dc_replace

        from repro.cluster.failure import FaultSpec
        from repro.core import ExperimentSession, default_stress_config

        config = default_stress_config("cassandra", "read_update",
                                       replication=3,
                                       target_throughput=1_000.0, seed=7)
        config = dc_replace(config, record_count=3_000,
                            operation_count=8_000, n_threads=16, n_nodes=8,
                            faults=(FaultSpec(kind="crash", node_id=0,
                                              at_s=2.0, duration_s=3.0),))
        session = ExperimentSession(config)
        session.load()
        session.run_cell(inject_faults=True)
        stats = session.cassandra.total_stats()
        assert stats["hints_stored"] > 0
        delivered = sum(n.hints.delivered
                        for n in session.cassandra.nodes.values())
        assert delivered > 0
        outstanding = sum(len(n.hints)
                          for n in session.cassandra.nodes.values())
        assert outstanding == 0

    def test_hbase_crash_shows_recovery_window(self, hbase_crash):
        report = hbase_crash["failover"]
        # Clients stall on the dead server's regions until the HMaster
        # notices (detection tick) and moves them: a measurable window...
        assert report["time_to_detection_s"] is not None
        assert report["time_to_recovery_s"] > 1.0
        # ...but bounded: well before the node's restart, reassignment
        # has already restored service.
        assert report["time_to_recovery_s"] < \
            QUICK_FAILOVER_SCALE.fault_duration_s + 3.0

    def test_hbase_recovers_before_run_ends(self, hbase_crash):
        report = hbase_crash["failover"]
        timeline = report["timeline"]
        expected = (QUICK_FAILOVER_SCALE.target_throughput
                    * report["bucket_s"])
        recovered = [ops for start, ops, _, _ in timeline
                     if start >= (report["fault_at_s"]
                                  + report["time_to_recovery_s"])]
        # Post-recovery buckets run at the offered load again.
        assert any(ops > 0.9 * expected for ops in recovered)


class TestTailDefenseShapes:
    """The tail-latency defense story: one degraded disk dominates the
    undefended read p99 at RF=3/CL=ONE; hedged reads route around it
    without hurting the median.  Uniform overload is a different beast —
    there only bounded queues help, and they must fail loudly (explicit
    ``Overloaded`` sheds), not by silent timeout."""

    @pytest.fixture(scope="class")
    def slow_replica(self):
        from repro.core.sweep import QUICK_TAIL_SCALE, tail_sweep
        sweep = tail_sweep("cassandra", QUICK_TAIL_SCALE,
                           modes=("none", "hedge"),
                           scenarios=("slow_replica",))
        return sweep["slow_replica"]

    @pytest.fixture(scope="class")
    def healthy(self):
        from repro.core.sweep import QUICK_TAIL_SCALE, tail_sweep
        sweep = tail_sweep("cassandra", QUICK_TAIL_SCALE, modes=("none",),
                           scenarios=("healthy",))
        return sweep["healthy"]

    @pytest.fixture(scope="class")
    def overload(self):
        from repro.core.sweep import QUICK_TAIL_SCALE, tail_sweep
        sweep = tail_sweep("cassandra", QUICK_TAIL_SCALE,
                           modes=("deadline",), scenarios=("overload",))
        return sweep["overload"]

    def test_hedging_collapses_slow_replica_p99(self, slow_replica):
        # The issue's acceptance bar: hedged p99 at most half the
        # undefended p99 under one 8x-slow disk.
        assert slow_replica["hedge"]["p99_ms"] <= \
            0.5 * slow_replica["none"]["p99_ms"]

    def test_hedging_leaves_median_intact(self, slow_replica, healthy):
        # Speculation is a tail tool; the common case must not pay for
        # it (< 10% median regression).  The reference is the fault-free
        # cell, not the undefended fault cell: with no defense the
        # closed-loop threads park on the gray replica, the achieved
        # load collapses, and the surviving ops see an artificially
        # *deflated* median — hedging sustains the offered load, so
        # comparing against that collapse would punish the defense for
        # working.
        assert slow_replica["hedge"]["p50_ms"] < \
            1.10 * healthy["none"]["p50_ms"]

    def test_overload_sheds_are_explicit(self, overload):
        errors = overload["deadline"]["errors_by_type"]
        assert errors.get("Overloaded", 0) > 0


class TestGeoShapes:
    """The geo-replication robustness story (§6 future work, built out):
    during a remote-DC partition LOCAL_QUORUM keeps serving at local
    latency, EACH_QUORUM refuses honestly, and once the partition heals
    hinted handoff leaves zero acknowledged writes behind."""

    @pytest.fixture(scope="class")
    def geo(self):
        from repro.core.sweep import QUICK_GEO_SCALE, geo_sweep
        return geo_sweep(scenarios=("dc_partition",),
                         scale=QUICK_GEO_SCALE)

    def test_local_quorum_remote_regions_ride_out_dc_partition(self, geo):
        # The partition takes out ap-southeast; the other two regions
        # never notice: full throughput, local-quorum latency, no errors.
        for region in ("eu-west", "us-west"):
            summary = geo["LOCAL_QUORUM"]["dc_partition"][region]
            assert summary["errors"] == 0
            assert summary["p99_ms"] < 50.0
            assert summary["throughput"] > 0.9 * summary["target"]

    def test_local_quorum_partitioned_region_fails_honestly(self, geo):
        # The dead region's own client gets refused (no live local
        # coordinator and no remote DC can stand in for a LOCAL_QUORUM)
        # rather than silently served stale data from another DC.
        summary = geo["LOCAL_QUORUM"]["dc_partition"]["ap-southeast"]
        assert summary["errors"] > 0
        cons = summary["consistency"]
        assert cons["violations_by_kind"]["stale_read"] == 0
        assert cons["violations_by_kind"]["linearizability"] == 0

    def test_each_quorum_errors_honestly_not_timeouts(self, geo):
        # A write that cannot reach the partitioned DC's quorum is
        # refused up front with UnavailableError — never a timeout and
        # never a silent success.
        refused = 0
        for region in ("eu-west", "us-west"):
            summary = geo["EACH_QUORUM"]["dc_partition"][region]
            by_type = summary["errors_by_type"]
            assert set(by_type) <= {"UnavailableError"}
            refused += by_type.get("UnavailableError", 0)
        assert refused > 0

    def test_quorum_pays_the_wan_where_local_quorum_does_not(self, geo):
        lq = geo["LOCAL_QUORUM"]["dc_partition"]["eu-west"]
        q = geo["QUORUM"]["dc_partition"]["eu-west"]
        # Global quorum spans an ocean; local quorum stays in-region.
        assert q["p95_ms"] > 20 * lq["p95_ms"]

    def test_no_acked_write_lost_after_heal(self, geo):
        # The convergence check runs after quiescence + hint drain: any
        # acknowledged write still missing from a healed replica counts.
        for mode, scenarios in geo.items():
            for region, summary in scenarios["dc_partition"].items():
                cons = summary["consistency"]
                assert cons["violations_by_kind"]["convergence"] == 0, \
                    (mode, region)


class TestGeoStalenessShapes:
    """LOCAL_ONE with read repair off keeps its staleness window open —
    and the oracle's findings replay bit-identically."""

    def _run_cell(self, no_repair):
        # A full geo cell: one persistent database, one recorded run
        # per client region (the sweep's shape).  The partitioned
        # region's own run is where staleness shows: once its DC dies,
        # LOCAL_ONE falls back over the WAN to replicas that never saw
        # its locally-acknowledged writes.
        from repro.core.config import default_geo_config
        from repro.core.experiment import ExperimentSession
        from repro.cluster.failure import FaultSpec
        config = default_geo_config(
            read_cl=ConsistencyLevel.LOCAL_ONE,
            write_cl=ConsistencyLevel.LOCAL_ONE,
            servers_per_dc=2, replicas_per_dc=2,
            record_count=400, operation_count=800, n_threads=6,
            target_throughput=600.0, seed=42, no_repair=no_repair,
            faults=(FaultSpec(kind="dc_partition",
                              datacenter="ap-southeast",
                              at_s=0.4, duration_s=0.8),))
        session = ExperimentSession(config)
        session.load()
        reports = {}
        for region in config.geo.client_datacenters:
            result = session.run_cell(inject_faults=True,
                                      check_consistency=True,
                                      client_dc=region)
            reports[region] = result.consistency
        return reports

    def test_local_one_no_repair_staleness_observable(self):
        reports = self._run_cell(no_repair=True)
        stale = reports["ap-southeast"]
        assert stale["strong"] is False
        assert stale["violations_by_kind"]["stale_read"] > 0
        assert stale["max_staleness_lag_s"] > 0.0
        # The weak config is *honestly* weak, not broken: no acked
        # write is lost once the partition heals.
        for region, cons in reports.items():
            assert cons["violations_by_kind"]["convergence"] == 0, region

    def test_read_repair_closes_the_staleness_window(self):
        # Same seed, same fault schedule — only read repair differs.
        repaired = self._run_cell(no_repair=False)["ap-southeast"]
        assert repaired["violations_by_kind"]["stale_read"] == 0
        assert repaired["max_staleness_lag_s"] == 0.0

    def test_staleness_findings_reproduce_bit_identically(self):
        first = self._run_cell(no_repair=True)
        second = self._run_cell(no_repair=True)
        # A violating run is a repeatable test case, not a flake.
        assert first == second


class TestFlashCrowdShapes:
    """The flash-crowd survival story: an open-loop 10x spike turns the
    naive retrying client into its own worst enemy (retry amplification
    collapses goodput), while the full defense stack — breaker, retry
    budget, rate limiter, load leveling, cache-aside — sheds loudly at
    the client and sustains a multiple of the undefended goodput, with
    the cache's staleness priced (and bounded) by the oracle."""

    @pytest.fixture(scope="class")
    def surge(self):
        from repro.core.sweep import QUICK_SURGE_SCALE, surge_sweep
        return surge_sweep("cassandra", QUICK_SURGE_SCALE,
                           modes=("undefended", "full"),
                           scenarios=("steady", "flash_crowd"))

    def test_steady_control_is_clean(self, surge):
        # At the base rate both stacks are invisible: every arrival is
        # served, goodput tracks the offered rate, nothing is shed.
        for mode in ("undefended", "full"):
            summary = surge["steady"][mode]
            assert summary["errors"] == 0, mode
            assert summary["goodput"] > 0.95 * summary["offered_per_s"], mode

    def test_flash_crowd_collapses_undefended_goodput(self, surge):
        # The spike drives queueing delay past the op timeout; timed-out
        # work still burns server capacity, so goodput lands far below
        # the offered rate — the metastable-failure signature.
        summary = surge["flash_crowd"]["undefended"]
        assert summary["goodput"] < 0.5 * summary["offered_per_s"]

    def test_undefended_client_retry_storm(self, surge):
        # Retry amplification: the naive client issues nearly as many
        # (or more) retries than the entire offered load, while the
        # budgeted stack holds retries to a small fraction of it.
        undefended = surge["flash_crowd"]["undefended"]
        full = surge["flash_crowd"]["full"]
        assert undefended["clienttier"]["retry"]["retried"] > \
            0.8 * undefended["offered"]
        assert full["clienttier"]["retry"]["retried"] < \
            0.1 * undefended["clienttier"]["retry"]["retried"]

    def test_full_stack_sustains_twice_undefended_goodput(self, surge):
        # The issue's acceptance bar: the composed defenses keep at
        # least 2x the undefended goodput through the same spike.
        assert surge["flash_crowd"]["full"]["goodput"] >= \
            2.0 * surge["flash_crowd"]["undefended"]["goodput"]

    def test_full_stack_fails_loudly_at_the_client(self, surge):
        # Every refused request is an explicit client-side decision
        # (shed at the leveling queue, clipped by a tenant bucket, or
        # failed fast by the breaker) — no store-side timeouts at all.
        by_type = surge["flash_crowd"]["full"]["errors_by_type"]
        client_side = {"LoadShed", "RateLimited", "BreakerOpen"}
        assert by_type.get("LoadShed", 0) > 0
        assert set(by_type) <= client_side, by_type

    def test_cache_staleness_priced_and_bounded(self, surge):
        # The oracle records *outside* the cache-aside tier, so stale
        # cache serves are real findings — expected at CL ONE, bounded
        # by the TTL (plus the replication staleness CL ONE always
        # allows), and never accompanied by lost acknowledged writes.
        from repro.consistency.oracle import unexpected_violations
        from repro.core.sweep import QUICK_SURGE_SCALE
        for scenario, modes in surge.items():
            for mode, summary in modes.items():
                cons = summary["consistency"]
                assert unexpected_violations(cons) == 0, (scenario, mode)
                assert cons["violations_by_kind"]["convergence"] == 0, \
                    (scenario, mode)
        full = surge["flash_crowd"]["full"]["consistency"]
        assert full["max_staleness_lag_s"] <= \
            QUICK_SURGE_SCALE.cache_ttl_s + 0.5


class TestElasticityShapes:
    """The elasticity story: scaling while serving is *safe* (the
    oracle certifies no acknowledged write is lost to a bootstrap,
    decommission or region split) and *useful* (under a diurnal ramp
    that breaches the static cluster's p95, an elastic cluster restores
    goodput).  Cells run without a warm phase so the static/elastic
    contrast stays sharp at unit-test scale."""

    @staticmethod
    def _session(db, mode, events=None):
        from repro.core.config import default_scale_config
        from repro.core.experiment import ExperimentSession
        from repro.core.sweep import (QUICK_ELASTIC_SCALE, elastic_arrivals,
                                      elasticity_for_mode)
        from repro.cluster.elasticity import ElasticityConfig
        scale = QUICK_ELASTIC_SCALE
        elasticity = elasticity_for_mode(mode, scale)
        if events is not None:
            elasticity = ElasticityConfig(mode="manual",
                                          spare_nodes=scale.spare_nodes,
                                          events=events)
        config = default_scale_config(
            db, elasticity=elasticity,
            arrivals=elastic_arrivals("diurnal", scale),
            record_count=scale.record_count, n_nodes=scale.n_nodes,
            seed=scale.seed)
        session = ExperimentSession(config)
        session.load()
        return session

    @classmethod
    def _run(cls, db, mode, events=None):
        from repro.core.experiment import summarize_run
        session = cls._session(db, mode, events=events)
        kwargs = {}
        if db == "cassandra":
            kwargs = dict(read_cl=session.config.cassandra.read_cl,
                          write_cl=session.config.cassandra.write_cl)
        result = session.run_cell(open_loop=True, scale=True,
                                  check_consistency=True, **kwargs)
        return session, summarize_run(result)

    @pytest.fixture(scope="class")
    def diurnal(self):
        return {(db, mode): self._run(db, mode)[1]
                for db in ("hbase", "cassandra")
                for mode in ("static", "manual", "auto")}

    def test_static_diurnal_breaches_where_elastic_does_not(self, diurnal):
        from repro.core.sweep import QUICK_ELASTIC_SCALE
        static = diurnal[("hbase", "static")]
        manual = diurnal[("hbase", "manual")]
        # The ramp saturates the static cluster far past the breach bar.
        assert static["p95_ms"] > QUICK_ELASTIC_SCALE.p95_breach_ms
        assert manual["p95_ms"] < static["p95_ms"]

    def test_elastic_restores_goodput(self, diurnal):
        static = diurnal[("hbase", "static")]
        for mode in ("manual", "auto"):
            elastic = diurnal[("hbase", mode)]
            assert elastic["scale"]["actions"] >= 1, mode
            assert elastic["throughput"] > 1.05 * static["throughput"], mode

    def test_autoscaler_decides_from_breach(self, diurnal):
        # The autoscaler fires the same scale-out the operator scheduled
        # manually — but from observed p95, not a clock.
        events = [e for _, e, _ in diurnal[("hbase", "auto")]
                  ["scale"]["events"]]
        assert events == ["out_start", "out_done"]

    def test_cassandra_bootstrap_streams_and_serves(self, diurnal):
        manual = diurnal[("cassandra", "manual")]
        report = manual["scale"]
        assert report["actions"] == 1
        assert report["streamed_bytes"] > 0
        before = report["phases"]["before"]
        after = report["phases"]["after"]
        # The joiner pulled its ranges and then *served* them: latency
        # past the swap beats latency before it.
        assert after["ops"] > 0
        assert after["p95_ms"] < before["p95_ms"]

    def test_no_acked_write_lost_across_topology_changes(self, diurnal):
        from repro.consistency.oracle import unexpected_violations
        for (db, mode), summary in diurnal.items():
            assert unexpected_violations(summary["consistency"]) == 0, \
                (db, mode)

    def test_decommission_under_load_is_safe(self):
        """Scale-in mid-run: the leaver streams its ranges to the
        gainers before leaving the ring; QUORUM holds throughout."""
        from repro.cluster.elasticity import ScaleEventSpec
        from repro.consistency.oracle import unexpected_violations
        session, summary = self._run(
            "cassandra", "manual",
            events=(ScaleEventSpec(action="in", at_s=4.0),))
        report = summary["scale"]
        assert [e for _, e, _ in report["events"]] == \
            ["in_start", "in_done"]
        assert report["streamed_bytes"] > 0
        assert unexpected_violations(summary["consistency"]) == 0

    def test_split_under_load_is_safe(self):
        """A region split mid-run (both halves pay the close/reopen
        window) loses nothing: HBase's single-master model keeps every
        acknowledged write readable through the cutover."""
        from repro.consistency.oracle import unexpected_violations
        from repro.core.experiment import summarize_run
        session = self._session("hbase", "static")
        deployment = session.hbase

        def splitter():
            yield session.env.timeout(4.0)
            region = max(deployment.regions,
                         key=lambda r: r.end_token - r.start_token)
            deployment.split_region(region)

        session.env.process(splitter(), name="mid-run-split")
        result = session.run_cell(open_loop=True, scale=True,
                                  check_consistency=True)
        summary = summarize_run(result)
        assert summary["scale"]["splits"] == 1
        assert unexpected_violations(summary["consistency"]) == 0
