"""Unit tests for failure injection."""

from repro.cluster.failure import CrashEvent, FailureInjector


class TestFailureInjector:
    def test_crash_at_scheduled_time(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(CrashEvent(node_id=2, at_s=5.0))
        env.run(until=4.9)
        assert small_cluster.node(2).alive
        env.run(until=5.1)
        assert not small_cluster.node(2).alive
        assert injector.log == [(5.0, 2, "crash")]

    def test_restart_after_downtime(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(CrashEvent(node_id=1, at_s=2.0, down_s=3.0))
        env.run(until=4.0)
        assert not small_cluster.node(1).alive
        env.run(until=6.0)
        assert small_cluster.node(1).alive
        assert injector.log == [(2.0, 1, "crash"), (5.0, 1, "restart")]

    def test_permanent_crash_never_restarts(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(CrashEvent(node_id=0, at_s=1.0, down_s=None))
        env.run(until=100.0)
        assert not small_cluster.node(0).alive

    def test_schedule_all(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule_all([CrashEvent(0, 1.0, 1.0),
                               CrashEvent(1, 2.0, 1.0)])
        env.run(until=10.0)
        assert len(injector.log) == 4
