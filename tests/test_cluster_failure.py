"""Unit tests for failure injection."""

import pytest

from repro.cluster.failure import (CrashEvent, CrashFault, DiskDegradeFault,
                                   FailureInjector, FaultSchedule, FaultSpec,
                                   FlapFault, NicDegradeFault, PartitionFault,
                                   UnknownFaultTargetError)


class TestFailureInjector:
    def test_crash_at_scheduled_time(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(CrashEvent(node_id=2, at_s=5.0))
        env.run(until=4.9)
        assert small_cluster.node(2).alive
        env.run(until=5.1)
        assert not small_cluster.node(2).alive
        assert injector.log == [(5.0, 2, "crash")]

    def test_restart_after_downtime(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(CrashEvent(node_id=1, at_s=2.0, down_s=3.0))
        env.run(until=4.0)
        assert not small_cluster.node(1).alive
        env.run(until=6.0)
        assert small_cluster.node(1).alive
        assert injector.log == [(2.0, 1, "crash"), (5.0, 1, "restart")]

    def test_permanent_crash_never_restarts(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(CrashEvent(node_id=0, at_s=1.0, down_s=None))
        env.run(until=100.0)
        assert not small_cluster.node(0).alive

    def test_schedule_all(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule_all([CrashEvent(0, 1.0, 1.0),
                               CrashEvent(1, 2.0, 1.0)])
        env.run(until=10.0)
        assert len(injector.log) == 4

    def test_double_kill_is_noop_and_logged(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        small_cluster.kill(2)  # already dead when the fault fires
        injector.schedule(CrashEvent(node_id=2, at_s=1.0, down_s=2.0))
        env.run(until=5.0)
        assert injector.log == [(1.0, 2, "crash-noop"), (3.0, 2, "restart")]

    def test_unknown_node_rejected_before_arming(self, small_cluster):
        injector = FailureInjector(small_cluster)
        with pytest.raises(ValueError, match="unknown node"):
            injector.schedule(CrashEvent(node_id=99, at_s=1.0))
        assert injector.log == []

    def test_overlapping_faults_on_one_node_rejected(self, small_cluster):
        injector = FailureInjector(small_cluster)
        with pytest.raises(ValueError, match="overlapping"):
            injector.schedule_all([CrashEvent(1, 1.0, 5.0),
                                   CrashEvent(1, 3.0, 1.0)])

    def test_sequential_faults_on_one_node_allowed(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule_all([CrashEvent(1, 1.0, 1.0),
                               CrashEvent(1, 3.0, 1.0)])
        env.run(until=10.0)
        assert len(injector.log) == 4


class TestFaultTypes:
    def test_flap_cycles(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(FlapFault(node_id=1, at_s=1.0, cycles=3,
                                    down_s=0.5, up_s=0.5))
        env.run(until=2.2)  # mid second downtime
        assert not small_cluster.node(1).alive
        env.run(until=10.0)
        assert small_cluster.node(1).alive
        actions = [a for _, _, a in injector.log]
        assert actions == ["crash", "restart"] * 3

    def test_partition_cuts_and_heals_the_span(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(PartitionFault(node_ids=(0, 1), at_s=1.0,
                                         duration_s=2.0))
        env.run(until=2.0)
        assert not small_cluster.node(0).alive
        assert not small_cluster.node(1).alive
        assert small_cluster.node(2).alive
        env.run(until=4.0)
        assert small_cluster.node(0).alive
        assert small_cluster.node(1).alive
        actions = [a for _, _, a in injector.log]
        assert actions == ["partition", "partition", "heal", "heal"]

    def test_nic_degrade_sets_and_restores_slowdown(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(NicDegradeFault(node_id=1, at_s=1.0,
                                          duration_s=2.0, slowdown=4.0))
        env.run(until=2.0)
        assert small_cluster.node(1).nic.slowdown == 4.0
        assert small_cluster.node(1).alive  # gray failure: still up
        env.run(until=4.0)
        assert small_cluster.node(1).nic.slowdown == 1.0

    def test_disk_degrade_sets_and_restores_slowdown(self, small_cluster):
        env = small_cluster.env
        injector = FailureInjector(small_cluster)
        injector.schedule(DiskDegradeFault(node_id=3, at_s=1.0,
                                           duration_s=2.0, slowdown=8.0))
        env.run(until=2.0)
        assert small_cluster.node(3).disk.slowdown == 8.0
        env.run(until=4.0)
        assert small_cluster.node(3).disk.slowdown == 1.0

    def test_degrade_slowdown_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            NicDegradeFault(node_id=0, at_s=0.0, slowdown=0.5)
        with pytest.raises(ValueError):
            DiskDegradeFault(node_id=0, at_s=0.0, slowdown=0.5)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_resolve_offsets_relative_time(self):
        fault = FaultSpec(kind="crash", node_id=2, at_s=4.0,
                          duration_s=10.0).resolve(base_s=100.0)
        assert isinstance(fault, CrashFault)
        assert fault.at_s == 104.0
        assert fault.down_s == 10.0

    def test_resolve_each_kind(self):
        resolved = {kind: FaultSpec(kind=kind, node_id=1).resolve()
                    for kind in ("crash", "flap", "partition",
                                 "slow_nic", "slow_disk")}
        assert isinstance(resolved["crash"], CrashFault)
        assert isinstance(resolved["flap"], FlapFault)
        assert isinstance(resolved["partition"], PartitionFault)
        assert resolved["partition"].node_ids == (1, 2)  # span=2 default
        assert isinstance(resolved["slow_nic"], NicDegradeFault)
        assert isinstance(resolved["slow_disk"], DiskDegradeFault)

    def test_schedule_from_specs_validates(self, small_cluster):
        schedule = FaultSchedule.from_specs(
            (FaultSpec(kind="partition", node_id=3, span=2, at_s=1.0),),
            base_s=0.0)
        with pytest.raises(ValueError, match="unknown node"):
            schedule.validate(len(small_cluster.nodes))  # 4 nodes: 3,4 bad


class TestDcFaultValidation:
    """Datacenter-scoped faults are rejected at construction / arm time
    when they name targets the cluster does not have."""

    def _geo_cluster(self):
        from repro.cluster.geo import GeoCluster, GeoSpec
        from repro.sim.kernel import Environment
        from repro.sim.rng import RngRegistry
        env = Environment()
        return GeoCluster(env, GeoSpec(datacenters={"eu-west": 2,
                                                    "us-west": 2},
                                       client_datacenter="eu-west"),
                          RngRegistry(3))

    def test_dc_fault_spec_requires_a_datacenter(self):
        with pytest.raises(ValueError, match="needs a datacenter"):
            FaultSpec(kind="dc_partition")
        with pytest.raises(ValueError, match="needs a datacenter"):
            FaultSpec(kind="dc_slow_nic")

    def test_dc_fault_on_single_rack_cluster_rejected(self, small_cluster):
        injector = FailureInjector(small_cluster)
        schedule = FaultSchedule.from_specs(
            (FaultSpec(kind="dc_partition", datacenter="eu-west",
                       at_s=1.0),))
        with pytest.raises(UnknownFaultTargetError,
                           match="no datacenters"):
            injector.inject(schedule)
        assert injector.log == []

    def test_wan_fault_on_single_rack_cluster_rejected(self, small_cluster):
        injector = FailureInjector(small_cluster)
        schedule = FaultSchedule.from_specs(
            (FaultSpec(kind="wan_degrade", at_s=1.0, severity=4.0),))
        with pytest.raises(UnknownFaultTargetError,
                           match="no datacenters"):
            injector.inject(schedule)

    def test_unknown_datacenter_rejected(self):
        geo = self._geo_cluster()
        injector = FailureInjector(geo)
        schedule = FaultSchedule.from_specs(
            (FaultSpec(kind="dc_partition", datacenter="mars-north",
                       at_s=1.0),))
        with pytest.raises(UnknownFaultTargetError,
                           match="unknown datacenter 'mars-north'"):
            injector.inject(schedule)
        assert injector.log == []

    def test_known_datacenter_accepted_and_fires(self):
        geo = self._geo_cluster()
        injector = FailureInjector(geo)
        injector.inject(FaultSchedule.from_specs(
            (FaultSpec(kind="dc_partition", datacenter="us-west",
                       at_s=1.0, duration_s=2.0),)))
        geo.env.run(until=2.0)
        assert all(not geo.node(n).alive for n in geo.servers_in("us-west"))
        assert all(geo.node(n).alive for n in geo.servers_in("eu-west"))
        geo.env.run(until=4.0)
        assert all(geo.node(n).alive for n in geo.servers_in("us-west"))

    def test_unknown_node_rejected_with_named_error(self, small_cluster):
        schedule = FaultSchedule.from_specs(
            (FaultSpec(kind="crash", node_id=99, at_s=1.0),))
        with pytest.raises(UnknownFaultTargetError, match="unknown node 99"):
            schedule.validate(len(small_cluster.nodes))

    def test_overlapping_dc_faults_rejected(self):
        geo = self._geo_cluster()
        injector = FailureInjector(geo)
        schedule = FaultSchedule.from_specs(
            (FaultSpec(kind="dc_partition", datacenter="us-west",
                       at_s=1.0, duration_s=5.0),
             FaultSpec(kind="dc_slow_nic", datacenter="us-west",
                       at_s=3.0, duration_s=1.0)))
        with pytest.raises(ValueError, match="overlapping"):
            injector.inject(schedule)
