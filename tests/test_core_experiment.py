"""Integration tests for experiment sessions and sweeps."""

from dataclasses import replace

import pytest

from repro.cassandra.consistency import ConsistencyLevel
from repro.core.config import default_micro_config, default_stress_config
from repro.core.experiment import ExperimentSession, run_experiment
from repro.core.sweep import SweepScale, replication_micro_sweep
from repro.storage.lsm import StorageSpec
from repro.ycsb.workload import MICRO_WORKLOADS, STRESS_WORKLOADS


def tiny_micro(db, rf=2, seed=42):
    config = default_micro_config(db, "read", replication=rf, seed=seed)
    return replace(config, record_count=1500, operation_count=300,
                   n_nodes=5, n_threads=4, settle_s=1.0, load_threads=8)


def tiny_stress(db, rf=2, seed=42):
    config = default_stress_config(db, "read_update", replication=rf,
                                   seed=seed)
    return replace(config, record_count=1500, operation_count=300,
                   n_nodes=5, n_threads=8, settle_s=1.0, load_threads=8,
                   storage=StorageSpec(memtable_flush_bytes=32 * 1024,
                                       block_bytes=4096,
                                       block_cache_bytes=64 * 1024))


class TestRunExperiment:
    @pytest.mark.parametrize("db", ["hbase", "cassandra"])
    def test_end_to_end(self, db):
        result = run_experiment(tiny_micro(db))
        assert result.load.records == 1500
        assert result.run.operations > 0
        assert result.run.throughput > 0
        assert result.run.overall().mean > 0
        assert result.db_stats["rpc_count"] > 0

    def test_deterministic_same_seed(self):
        a = run_experiment(tiny_micro("cassandra", seed=77))
        b = run_experiment(tiny_micro("cassandra", seed=77))
        assert a.run.throughput == pytest.approx(b.run.throughput)
        assert a.run.overall().mean == pytest.approx(b.run.overall().mean)

    def test_different_seeds_differ(self):
        a = run_experiment(tiny_micro("cassandra", seed=1))
        b = run_experiment(tiny_micro("cassandra", seed=2))
        assert a.run.overall().mean != b.run.overall().mean


class TestExperimentSession:
    def test_multiple_cells_share_loaded_data(self):
        session = ExperimentSession(tiny_stress("hbase"))
        session.load()
        first = session.run_cell(workload=STRESS_WORKLOADS["read_mostly"])
        second = session.run_cell(workload=STRESS_WORKLOADS["read_update"])
        assert first.workload == "read_mostly"
        assert second.workload == "read_update"
        # Reads hit loaded data: overwhelming majority found.
        assert first.not_found < first.operations * 0.05

    def test_load_twice_rejected(self):
        session = ExperimentSession(tiny_micro("hbase"))
        session.load()
        with pytest.raises(RuntimeError):
            session.load()

    def test_run_before_load_rejected(self):
        session = ExperimentSession(tiny_micro("hbase"))
        with pytest.raises(RuntimeError):
            session.run_cell()

    def test_cl_override_only_for_cassandra(self):
        session = ExperimentSession(tiny_stress("hbase"))
        session.load()
        with pytest.raises(ValueError):
            session.run_cell(read_cl=ConsistencyLevel.QUORUM)

    def test_cassandra_cl_override_applies(self):
        session = ExperimentSession(tiny_stress("cassandra"))
        session.load()
        session.run_cell(read_cl=ConsistencyLevel.QUORUM,
                         write_cl=ConsistencyLevel.QUORUM)
        assert session._session.read_cl is ConsistencyLevel.QUORUM

    def test_target_override(self):
        session = ExperimentSession(tiny_stress("hbase"))
        session.load()
        result = session.run_cell(target_throughput=200.0)
        assert result.throughput <= 260

    def test_db_stats_shape(self):
        session = ExperimentSession(tiny_stress("cassandra"))
        session.load()
        session.run_cell()
        stats = session.db_stats()
        assert "cassandra" in stats
        assert stats["cassandra"]["writes"] > 0
        assert "cache_hit_rate" in stats


class TestSweepPlumbing:
    def test_micro_sweep_structure(self):
        scale = SweepScale(record_count=1200, operation_count=250,
                           n_threads=4, n_nodes=5, seed=3)
        sweep = replication_micro_sweep("hbase", [1, 2], scale)
        assert set(sweep) == {1, 2}
        for per_op in sweep.values():
            assert set(per_op) == {"update", "read", "insert", "scan"}
            for cell in per_op.values():
                assert cell["mean_ms"] > 0
                assert cell["ops"] > 0
