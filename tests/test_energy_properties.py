"""Property-based tests (hypothesis) for the power-state machine.

The :class:`~repro.energy.power.PowerManager` is a lazy piecewise
integrator: it only materialises state-time when someone accounts, and
its correctness contract is that no matter how wake/busy/settle calls
interleave, the awake/pstate/sleep ledger always sums to exactly the
accounted span and every transition is charged exactly once.  Those
are the invariants this file drives with generated schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import EnergyMeter, EnergyReport, PowerSpec
from repro.energy.power import PowerManager

#: Inter-arrival gaps: from sub-threshold busy bursts to deep-sleep
#: stretches, all well-behaved floats.
gaps = st.floats(min_value=0.0, max_value=5.0,
                 allow_nan=False, allow_infinity=False)
work = st.floats(min_value=0.0, max_value=0.1,
                 allow_nan=False, allow_infinity=False)


def _drive(manager: PowerManager, schedule) -> float:
    """Replay (gap, work) pairs as a wake/busy history; returns the
    clock after the last charged interval."""
    now = 0.0
    for gap, duration in schedule:
        now += gap
        start = manager.wake_for_work(now)
        end = start + duration
        manager.note_busy(end)
        now = end
    return now


class TestPowerLedgerProperties:
    @given(st.lists(st.tuples(gaps, work), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_ledger_sums_to_accounted_span(self, schedule):
        manager = PowerManager(PowerSpec(), mode="race_to_sleep")
        now = _drive(manager, schedule)
        settle_at = now + 2.0
        manager.settle(settle_at)
        total = manager.awake_s + manager.pstate_s + manager.sleep_s
        assert abs(total - settle_at) < 1e-6

    @given(st.lists(st.tuples(gaps, work), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_always_on_is_all_awake(self, schedule):
        manager = PowerManager(PowerSpec(), mode="always_on")
        now = _drive(manager, schedule)
        manager.settle(now + 1.0)
        assert abs(manager.awake_s - (now + 1.0)) < 1e-6
        assert manager.pstate_s == 0.0
        assert manager.sleep_s == 0.0
        assert manager.wakes == 0

    @given(st.lists(st.tuples(gaps, work), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_settle_is_idempotent(self, schedule):
        manager = PowerManager(PowerSpec(), mode="race_to_sleep")
        now = _drive(manager, schedule)
        manager.settle(now + 3.0)
        ledger = (manager.awake_s, manager.pstate_s, manager.sleep_s,
                  manager.wakes, manager.wake_latency_s)
        manager.settle(now + 3.0)
        manager.settle(now + 1.0)  # older settles must be no-ops too
        assert (manager.awake_s, manager.pstate_s, manager.sleep_s,
                manager.wakes, manager.wake_latency_s) == ledger

    @given(st.lists(st.tuples(gaps, work), min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_never_double_charges_a_transition(self, schedule):
        # Every wake penalty corresponds to one state transition out of
        # pstate/sleep: the count of charged wakes can never exceed the
        # number of gaps long enough to leave the awake state, and a
        # second wake at the same timestamp must be free.
        spec = PowerSpec()
        manager = PowerManager(spec, mode="race_to_sleep")
        eligible = sum(1 for gap, _ in schedule if gap >= spec.idle_after_s)
        now = _drive(manager, schedule)
        assert manager.wakes <= eligible
        before = (manager.wakes, manager.wake_latency_s)
        resumed = manager.wake_for_work(now)
        assert resumed == now  # busy_until == now: machine is awake
        assert (manager.wakes, manager.wake_latency_s) == before

    @given(st.lists(st.tuples(gaps, work), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_wake_latency_matches_transition_kinds(self, schedule):
        # Total wake latency decomposes exactly into the two penalty
        # tariffs — there is no third, unpriced way to wake up.
        spec = PowerSpec()
        manager = PowerManager(spec, mode="race_to_sleep")
        pstate_wakes = sleep_wakes = 0
        now = 0.0
        for gap, duration in schedule:
            now += gap
            state = manager.state(now)
            start = manager.wake_for_work(now)
            if state == "pstate":
                pstate_wakes += 1
            elif state == "sleep":
                sleep_wakes += 1
            else:
                assert start == now
            end = start + duration
            manager.note_busy(end)
            now = end
        assert manager.wakes == pstate_wakes + sleep_wakes
        expected = (pstate_wakes * spec.pstate_wake_s
                    + sleep_wakes * spec.sleep_wake_s)
        assert abs(manager.wake_latency_s - expected) < 1e-9


class TestEnergyReportProperties:
    joules = st.floats(min_value=0.0, max_value=1e6,
                       allow_nan=False, allow_infinity=False)

    @given(joules, joules, joules, joules, joules)
    @settings(max_examples=100, deadline=None)
    def test_total_is_the_decomposition(self, idle, cpu, disk, nic, sleep):
        report = EnergyReport(duration_s=1.0, idle_j=idle, cpu_j=cpu,
                              disk_j=disk, nic_j=nic, sleep_j=sleep)
        assert report.total_j == idle + cpu + disk + nic + sleep
        assert report.to_dict()["total_j"] == report.total_j

    @given(st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
           st.floats(min_value=1.1, max_value=10.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_duration(self, duration, factor):
        """A longer idle window can only cost more joules."""

        def bill(seconds: float) -> float:
            spec = PowerSpec()
            manager = PowerManager(spec, mode="race_to_sleep")
            manager.settle(seconds)
            return (spec.idle_w * manager.awake_s
                    + spec.pstate_idle_w * manager.pstate_s
                    + spec.sleep_w * manager.sleep_s)

        assert bill(duration * factor) >= bill(duration) - 1e-9

    @given(st.lists(st.tuples(gaps, work), max_size=30),
           st.integers(min_value=0, max_value=29))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_utilization(self, schedule, index):
        """Extending one busy burst never lowers the awake share."""
        if index >= len(schedule):
            index = 0
        busier = list(schedule)
        if busier:
            gap, duration = busier[index]
            busier[index] = (gap, duration + 0.05)

        def awake_after(sched) -> tuple:
            manager = PowerManager(PowerSpec(), mode="race_to_sleep")
            now = _drive(manager, sched)
            manager.settle(now + 2.0)
            return manager.awake_s, now

        base_awake, _ = awake_after(schedule)
        more_awake, _ = awake_after(busier)
        assert more_awake >= base_awake - 1e-9
